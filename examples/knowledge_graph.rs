//! Knowledge-graph exploration on the Freebase-like catalog: the paper's
//! Q3 (co-star cast extraction) and Q7 (Oscar winners of the 90s),
//! including the §3.6 distributed semijoin plan for comparison.
//!
//! ```text
//! cargo run --release --example knowledge_graph
//! ```

use parjoin::engine::semijoin::run_semijoin_plan;
use parjoin::prelude::*;

fn report(name: &str, r: &RunResult) {
    println!(
        "  {:<6} wall {:>9.2?}  cpu {:>9.2?}  shuffled {:>9}  results {}",
        name, r.wall, r.total_cpu, r.tuples_shuffled, r.output_tuples
    );
}

fn main() {
    let db = Scale::small().freebase_db(11);
    println!("Freebase-like catalog:");
    for (name, rel) in db.iter() {
        println!("  {:<14} {:>8} tuples", name, rel.len());
    }
    let cluster = Cluster::new(64);
    let opts = PlanOptions {
        collect_output: true,
        distinct_output: true,
        ..Default::default()
    };

    for spec in [
        parjoin::datagen::workloads::q3(),
        parjoin::datagen::workloads::q7(),
    ] {
        println!(
            "\n{} ({}):\n  {}",
            spec.name,
            if spec.cyclic { "cyclic" } else { "acyclic" },
            spec.query
        );
        let rs = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Tributary,
            &opts,
        )
        .expect("RS_TJ");
        let hc = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &opts,
        )
        .expect("HC_TJ");
        report("RS_TJ", &rs);
        report("HC_TJ", &hc);

        // Acyclic queries also admit the full Yannakakis/GYM semijoin
        // reduction (§3.6).
        let sj = run_semijoin_plan(&spec.query, &db, &cluster, &opts).expect("acyclic");
        report("SJ_HJ", &sj.run);
        println!(
            "         semijoin detail: {} key tuples + {} input tuples reshuffled",
            sj.projected_tuples_shuffled, sj.input_tuples_shuffled
        );

        let distinct = rs.output.as_ref().map(|o| o.len()).unwrap_or(0);
        println!("  distinct answers: {distinct}");
        assert_eq!(
            rs.output.as_ref().map(|o| o.len()),
            hc.output.as_ref().map(|o| o.len()),
            "plans agree"
        );
    }
}
