//! A miniature CLI: evaluate any Datalog conjunctive query over TSV
//! relations with a chosen shuffle×join configuration.
//!
//! ```text
//! cargo run --release --example run_datalog -- \
//!     'Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)' /path/to/data HC_TJ
//! ```
//!
//! Each relation `E` is loaded from `<data-dir>/E.tsv` (one tuple per
//! line, tab- or comma-separated unsigned integers). With no arguments, a
//! demo dataset is written to a temp dir and queried.

use parjoin::prelude::*;
use std::path::Path;

fn load_relation(dir: &Path, name: &str, arity: usize) -> Relation {
    let path = dir.join(format!("{name}.tsv"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut rel = Relation::new(arity);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let vals: Vec<u64> = line
            .split(['\t', ','])
            .map(|t| {
                t.trim().parse().unwrap_or_else(|e| {
                    panic!("{}:{}: bad value `{t}`: {e}", path.display(), lineno + 1)
                })
            })
            .collect();
        assert_eq!(
            vals.len(),
            arity,
            "{}:{}: expected {arity} values",
            path.display(),
            lineno + 1
        );
        rel.push_row(&vals);
    }
    rel.distinct()
}

fn parse_config(name: &str) -> (ShuffleAlg, JoinAlg) {
    match name {
        "RS_HJ" => (ShuffleAlg::Regular, JoinAlg::Hash),
        "RS_TJ" => (ShuffleAlg::Regular, JoinAlg::Tributary),
        "BR_HJ" => (ShuffleAlg::Broadcast, JoinAlg::Hash),
        "BR_TJ" => (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        "HC_HJ" => (ShuffleAlg::HyperCube, JoinAlg::Hash),
        "HC_TJ" => (ShuffleAlg::HyperCube, JoinAlg::Tributary),
        other => panic!("unknown configuration `{other}` (use e.g. HC_TJ)"),
    }
}

fn demo_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("parjoin_datalog_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // A small directed graph with triangles.
    let mut edges = String::from("# demo edge list\n");
    for i in 0..30u64 {
        edges.push_str(&format!("{}\t{}\n", i, (i + 1) % 30));
        edges.push_str(&format!("{}\t{}\n", (i + 2) % 30, i));
    }
    std::fs::write(dir.join("E.tsv"), edges).expect("write demo data");
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (query_text, dir, config) = if args.len() >= 3 {
        (
            args[1].clone(),
            std::path::PathBuf::from(&args[2]),
            args.get(3).cloned().unwrap_or_else(|| "HC_TJ".into()),
        )
    } else {
        println!("(no arguments: running the built-in demo)\n");
        (
            "Tri(x, y, z) :- E(x, y), E(y, z), E(z, x)".to_string(),
            demo_dir(),
            "HC_TJ".into(),
        )
    };

    let query =
        parjoin::query::parser::parse(&query_text).unwrap_or_else(|e| panic!("bad query: {e}"));
    println!("query:  {query}");
    println!("config: {config}");

    // Load every distinct relation at the arity its atom demands.
    let mut db = Database::new();
    for atom in &query.atoms {
        if db.get(&atom.relation).is_none() {
            let rel = load_relation(&dir, &atom.relation, atom.terms.len());
            println!("loaded {}: {} tuples", atom.relation, rel.len());
            db.insert(atom.relation.clone(), rel);
        }
    }

    let (s, j) = parse_config(&config);
    let cluster = Cluster::new(16);
    let opts = PlanOptions {
        collect_output: true,
        distinct_output: true,
        ..Default::default()
    };
    let result = run_config(&query, &db, &cluster, s, j, &opts)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));

    let out = result.output.expect("collected");
    println!(
        "\n{} distinct results ({} before dedup); {} tuples shuffled; wall {:?}",
        out.len(),
        result.output_tuples,
        result.tuples_shuffled,
        result.wall
    );
    for (i, row) in out.rows().enumerate() {
        if i >= 20 {
            println!("… {} more rows", out.len() - 20);
            break;
        }
        println!("  {row:?}");
    }
}
