//! Graphlet census — the paper's §1 motivation: "the structure of a
//! complex network can be characterized by counting various patterns in
//! the graph … most graphlets have cycles, and involve 5–10 self-joins".
//!
//! Counts four graphlets (triangle, rectangle, two-rings, 4-clique) on a
//! power-law graph and reports, for each, how the HyperCube+Tributary
//! configuration compares with the traditional plan.
//!
//! ```text
//! cargo run --release --example graphlet_census [nodes]
//! ```

use parjoin::prelude::*;
use std::time::Duration;

fn fmt_dur(d: Duration) -> String {
    format!("{:8.2?}", d)
}

fn main() {
    let nodes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let scale = Scale {
        twitter_nodes: nodes,
        twitter_m: 4,
        freebase_performances: 1_000,
    };
    let db = scale.twitter_db(7);
    println!(
        "graph: {} nodes, {} edges (power-law)\n",
        nodes,
        db.expect("Twitter").len()
    );

    let cluster = Cluster::new(64);
    let specs = [
        parjoin::datagen::workloads::q1(), // triangle
        parjoin::datagen::workloads::q5(), // rectangle
        parjoin::datagen::workloads::q6(), // two rings
        parjoin::datagen::workloads::q2(), // 4-clique
    ];

    println!(
        "{:<10} {:>12} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "graphlet", "count", "HC_TJ wall", "shuffled", "RS_HJ wall", "shuffled", "speedup"
    );
    for spec in specs {
        let hc = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &PlanOptions::default(),
        )
        .expect("HC_TJ");
        let rs = run_config(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &PlanOptions::default(),
        )
        .expect("RS_HJ");
        assert_eq!(hc.output_tuples, rs.output_tuples, "plans must agree");
        let speedup = rs.wall.as_secs_f64() / hc.wall.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>12} | {} {:>10} | {} {:>10} | {:>7.1}x",
            spec.query.name,
            hc.output_tuples,
            fmt_dur(hc.wall),
            hc.tuples_shuffled,
            fmt_dur(rs.wall),
            rs.tuples_shuffled,
            speedup,
        );
    }
    println!("\n(counts are labelled subgraph embeddings, one per variable assignment)");
}
