//! Quickstart: parse a Datalog query, run it under the paper's best
//! configuration (HyperCube shuffle + Tributary join), and inspect the
//! execution metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parjoin::prelude::*;

fn main() {
    // The triangle query of §3.1, in the paper's own Datalog notation.
    let query = parjoin::query::parser::parse(
        "Triangle(x, y, z) :- Twitter(x, y), Twitter(y, z), Twitter(z, x)",
    )
    .expect("valid datalog");
    println!("query: {query}");

    // A Twitter-like power-law graph (seeded, reproducible).
    let db = Scale::small().twitter_db(42);
    println!("edges: {}", db.expect("Twitter").len());

    // A 64-worker shared-nothing cluster.
    let cluster = Cluster::new(64);

    // HyperCube shuffle + Tributary join: one communication round, then a
    // worst-case-optimal local join on every worker.
    let result = run_config(
        &query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &PlanOptions::default(),
    )
    .expect("plan runs");

    println!("hypercube config:   {}", result.hc_config.as_ref().unwrap());
    println!("triangles found:    {}", result.output_tuples);
    println!("tuples shuffled:    {}", result.tuples_shuffled);
    println!("simulated wall:     {:?}", result.wall);
    println!("total worker CPU:   {:?}", result.total_cpu);
    println!("  of which sorting: {:?}", result.sort_cpu());

    // Compare against the traditional plan: regular shuffle + hash joins.
    let traditional = run_config(
        &query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .expect("plan runs");
    println!("\ntraditional RS_HJ for comparison:");
    println!("tuples shuffled:    {}", traditional.tuples_shuffled);
    println!("simulated wall:     {:?}", traditional.wall);
    assert_eq!(traditional.output_tuples, result.output_tuples);
    println!(
        "\nHyperCube+Tributary shuffled {:.1}x less data",
        traditional.tuples_shuffled as f64 / result.tuples_shuffled as f64
    );
}
