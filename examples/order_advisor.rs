//! Variable-order advisor — the §5 cost model in action.
//!
//! For the Q8 (actor–director) query, ranks sampled global variable
//! orders by estimated cost, then actually runs the Tributary join under
//! the best and worst sampled orders to show the gap the optimizer closes
//! (the paper's Table 7 shows up to 100x).
//!
//! ```text
//! cargo run --release --example order_advisor
//! ```

use parjoin::prelude::*;
use parjoin::query::resolve_atoms;
use std::time::Instant;

fn main() {
    let spec = parjoin::datagen::workloads::q8();
    let db = Scale::small().freebase_db(5);
    println!("query: {}\n", spec.query);

    // Resolve atoms (selection pushdown) and build the cost model from
    // exact distinct-prefix statistics.
    let (atoms, filters) = resolve_atoms(&spec.query, &db).expect("resolves");
    let model_atoms: Vec<(&Relation, Vec<VarId>)> = atoms
        .iter()
        .map(|a| (a.rel.as_ref(), a.vars.clone()))
        .collect();
    let model = OrderCostModel::from_atoms(&model_atoms);

    // Rank 20 random orders (the paper's Figure 12 protocol) plus the
    // exhaustive optimum.
    let vars = spec.query.all_vars();
    let sampled = parjoin::core::order::sample_orders(&vars, 20, 99);
    let mut ranked: Vec<(Vec<VarId>, f64)> =
        sampled.iter().map(|o| (o.clone(), model.cost(o))).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let (best, best_cost) = best_order(&model, &vars);

    let fmt_order = |o: &[VarId]| {
        o.iter()
            .map(|v| spec.query.var_name(*v))
            .collect::<Vec<_>>()
            .join(" ≺ ")
    };
    println!(
        "exhaustive optimum: {}   (estimated cost {:.3e})",
        fmt_order(&best),
        best_cost
    );
    println!("\nsampled orders, best to worst:");
    for (o, c) in ranked.iter().take(3) {
        println!("  {:<40} {:.3e}", fmt_order(o), c);
    }
    println!("  …");
    for (o, c) in ranked
        .iter()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("  {:<40} {:.3e}", fmt_order(o), c);
    }

    // Measure the real Tributary join under the best vs the worst
    // sampled order — capped, as the paper capped runs at 1000 s.
    let cap = std::time::Duration::from_secs(10);
    let run = |order: &[VarId]| -> (u64, std::time::Duration, bool) {
        let prepared: Vec<SortedAtom> = atoms
            .iter()
            .map(|a| SortedAtom::prepare(&a.rel, &a.vars, order))
            .collect();
        let tj = Tributary::new(&prepared, order, &filters, spec.query.num_vars());
        let t0 = Instant::now();
        let (n, completed) = tj.run_guarded(|_| true, || t0.elapsed() < cap);
        (n, t0.elapsed(), !completed)
    };
    let worst = &ranked.last().unwrap().0;
    let (n_best, t_best, to_best) = run(&best);
    let (n_worst, t_worst, to_worst) = run(worst);
    assert!(!to_best, "the optimized order finishes comfortably");
    if !to_worst {
        assert_eq!(n_best, n_worst, "order never changes the answer");
    }
    println!("\nsingle-machine Tributary join, {} results:", n_best);
    println!("  best order:  {:?}", t_best);
    println!(
        "  worst order: {:?}{}",
        t_worst,
        if to_worst {
            " (terminated at cap, like the paper's 1000 s cutoff)"
        } else {
            ""
        }
    );
    println!(
        "  cost-model optimization buys {}{:.1}x",
        if to_worst { "≥ " } else { "" },
        t_worst.as_secs_f64() / t_best.as_secs_f64().max(1e-9)
    );
}
