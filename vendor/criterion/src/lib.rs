#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A minimal, dependency-free, offline stand-in for the `criterion`
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the slice of the criterion 0.5 API the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical machinery it times `sample_size`
//! iterations with [`std::time::Instant`] and prints mean wall-clock per
//! iteration — enough to compare configurations by eye, which is what
//! the paper-reproduction benches are for.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmark body.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (tuples, rows) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Ends the group (kept for API parity; the plain-text report needs
    /// no finalization).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        eprintln!("  {}/{id}: {:.3} ms/iter{rate}", self.name, mean * 1e3);
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name (both the list and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Runs this criterion benchmark group."]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Runs this criterion benchmark group."]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    criterion_group!(benches_list, sample_bench);

    #[test]
    fn groups_run() {
        benches();
        benches_list();
    }
}
