#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A minimal, dependency-free, offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the slice of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro, the [`Strategy`] trait
//! with [`prop_map`](Strategy::prop_map) /
//! [`prop_flat_map`](Strategy::prop_flat_map), range and tuple
//! strategies, [`collection::vec`], [`prelude::any`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: failing cases are *not* shrunk (the
//! failing inputs are reported as generated), and case generation uses a
//! deterministic per-test SplitMix64 stream, so runs are reproducible.

use std::ops::{Range, RangeInclusive};

/// Deterministic random source driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6a09_e667_f3bc_c908,
        }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        self.next_u64() % n
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no shrinking; a strategy is just a
/// sampling function.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
}

/// Types with a canonical full-range strategy (real proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a value over the type's natural range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`prelude::any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these suites run whole join
        // pipelines per case, so keep the default moderate.
        ProptestConfig { cases: 64 }
    }
}

/// Runs `body` for each of `config.cases` deterministic seeds, giving it
/// a fresh [`TestRng`]. Used by the [`proptest!`] macro expansion.
pub fn run_cases(name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    // FNV-1a over the test name decorrelates the streams of different
    // tests that share a case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::new(h ^ (u64::from(case)).wrapping_mul(0x2545_f491_4f6c_dd1d));
        body(&mut rng);
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, …)`
/// item becomes a regular `#[test]` that samples its arguments for a
/// configurable number of cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |prop_rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), prop_rng);)+
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u64..10, 0u64..10), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u64..100, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(x in any::<u64>()) {
            // Just exercise the configured path.
            prop_assert_eq!(x, x);
        }
    }
}
