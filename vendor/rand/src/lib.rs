#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A minimal, dependency-free, offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the slice of the `rand 0.8` API that the
//! workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator core is SplitMix64 — statistically solid for test-data
//! generation and fully deterministic from the seed, which is all the
//! workloads need (they always seed explicitly for reproducibility).
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`, so
//! generated datasets are deterministic but not bit-identical to ones
//! produced with the real crate.

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)` using `bits` as the entropy source.
    fn sample_from(lo: Self, hi: Self, bits: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(lo: Self, hi: Self, bits: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let off = (bits as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from(lo: Self, hi: Self, bits: u64) -> Self {
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a supported type over its natural range
    /// (`[0, 1)` for `f64`, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_from(range.start, range.end, self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

/// Types sampleable over their natural range by [`Rng::gen`].
pub trait Standard: Sized {
    /// Builds a sample from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Seedable generators (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator, standing in for `rand`'s
    /// `StdRng`. Same-seed runs produce identical streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x51a5_c06f_30f4_55c7,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 1000 uniforms should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
