#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin
//!
//! Efficient join query evaluation in a (simulated) parallel database
//! system — a from-scratch Rust reproduction of Chu, Balazinska & Suciu,
//! *From Theory to Practice: Efficient Join Query Evaluation in a
//! Parallel Database System*, SIGMOD 2015.
//!
//! The facade re-exports the whole workspace:
//!
//! * [`query`] — conjunctive queries, the Datalog parser, hypergraph
//!   analysis;
//! * [`core`] — HyperCube share optimization (Algorithm 1), the Tributary
//!   join (a Leapfrog-Triejoin over sorted arrays), and the §5
//!   variable-order cost model;
//! * [`engine`] — a shared-nothing cluster simulator with the paper's six
//!   shuffle×join plan configurations and the §3.6 semijoin plans;
//! * [`runtime`] — the message-passing worker runtime the engine's
//!   shuffles execute on, with pluggable transports (in-memory,
//!   in-process channels, loopback TCP behind `transport-tcp`);
//! * [`datagen`] — seeded Twitter-like and Freebase-like datasets and the
//!   Q1–Q8 workloads;
//! * [`lp`] — the small simplex solver behind the fractional share LP.
//!
//! ## Quickstart
//!
//! ```
//! use parjoin::prelude::*;
//!
//! // All directed triangles, straight from the paper's §3.1.
//! let q = parjoin::query::parser::parse(
//!     "Triangle(x,y,z) :- Twitter(x,y), Twitter(y,z), Twitter(z,x)",
//! ).unwrap();
//!
//! let db = Scale::tiny().twitter_db(42);
//! let cluster = Cluster::new(8);
//! let result = run_config(
//!     &q, &db, &cluster,
//!     ShuffleAlg::HyperCube, JoinAlg::Tributary,
//!     &PlanOptions::default(),
//! ).unwrap();
//! assert!(result.output_tuples > 0);
//! ```

pub use parjoin_common as common;
pub use parjoin_core as core;
pub use parjoin_datagen as datagen;
pub use parjoin_dist as dist;
pub use parjoin_engine as engine;
pub use parjoin_lp as lp;
pub use parjoin_obs as obs;
pub use parjoin_query as query;
pub use parjoin_runtime as runtime;
pub use parjoin_serve as serve;

/// The names most programs need.
pub mod prelude {
    pub use parjoin_common::{Database, Relation, WireFormat};
    pub use parjoin_core::hypercube::{HcConfig, ShareProblem};
    pub use parjoin_core::order::{best_order, OrderCostModel};
    pub use parjoin_core::tributary::{
        BTreeAtom, ColumnarAtom, ColumnarTrie, SortedAtom, Tributary, TrieAtom, TrieCursor,
    };
    pub use parjoin_datagen::{all_queries, DatasetKind, QuerySpec, Scale};
    pub use parjoin_engine::{
        metric_names, run_config, Cluster, EngineError, JoinAlg, MorselSched, PlanOptions,
        RunResult, ShuffleAlg, TransportKind, TrieCache, TrieLayout,
    };
    pub use parjoin_query::{ConjunctiveQuery, QueryBuilder, VarId};
    pub use parjoin_serve::{Server, ServerConfig, SessionConfig};
}
