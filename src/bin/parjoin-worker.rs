//! `parjoin-worker` — one rank of a multi-process parjoin cluster.
//!
//! Binds a control listener (for the coordinator) and a data-plane mesh
//! listener (for peer workers) on the same interface, prints
//! `listening <control-addr>` on stdout, then serves exactly one
//! coordinator session: execute shipped plan fragments, stream results
//! back, exit cleanly on `Shutdown`.
//!
//! ```text
//! parjoin-worker [--listen ADDR] [--idle-timeout-secs N]
//!
//!   --listen ADDR           control address to bind (default 127.0.0.1:0,
//!                           an ephemeral loopback port)
//!   --idle-timeout-secs N   give up if the coordinator goes silent for
//!                           N seconds between frames (default: wait
//!                           forever; a closed connection always
//!                           surfaces immediately)
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: parjoin-worker [--listen ADDR] [--idle-timeout-secs N]";

fn run() -> Result<(), String> {
    let mut listen = String::from("127.0.0.1:0");
    let mut idle_timeout: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = args.next().ok_or("--listen needs an address")?,
            "--idle-timeout-secs" => {
                let v = args.next().ok_or("--idle-timeout-secs needs a number")?;
                idle_timeout = Some(
                    v.parse()
                        .map_err(|e| format!("bad --idle-timeout-secs {v}: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }

    let mut server = parjoin_dist::WorkerServer::bind(&listen).map_err(|e| e.to_string())?;
    if let Some(secs) = idle_timeout {
        server.idle_timeout = Some(Duration::from_secs(secs));
    }
    let addr = server.control_addr().map_err(|e| e.to_string())?;
    // The coordinator's --spawn-workers mode reads this exact line.
    println!("listening {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.serve().map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("parjoin-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
