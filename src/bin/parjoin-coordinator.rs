//! `parjoin-coordinator` — plan paper queries, ship per-rank fragments
//! to a mesh of `parjoin-worker` processes, collect and check results.
//!
//! The coordinator owns every global plan decision (join order, shares,
//! variable orders, seeds); workers only execute the fragment they are
//! shipped. With `--check-local` each remote run is re-executed on the
//! in-process `Transport::Local` engine with the same cluster shape and
//! the collected outputs are compared byte-for-byte — the multi-process
//! path must be indistinguishable from the sequential one.
//!
//! ```text
//! parjoin-coordinator (--hosts A,B,C | --spawn-workers N) [options]
//!
//!   --hosts A,B,C        comma-separated worker control addresses
//!                        (hosts[r] becomes rank r)
//!   --spawn-workers N    spawn N parjoin-worker processes on loopback
//!                        (the binary is found next to this one)
//!   --queries Q1,..|all  paper queries to run (default all)
//!   --configs CS,..|all  shuffle×join configs, e.g. RS_HJ,HC_TJ
//!                        (default all six)
//!   --scale tiny|small|medium   dataset scale (default tiny)
//!   --twitter-nodes N    override the Twitter graph's node count
//!   --twitter-m N        override edges-per-node
//!   --freebase N         override Freebase performance count
//!   --db-seed N          dataset generator seed (default 7)
//!   --seed N             cluster hash seed (default 11)
//!   --batch-tuples N     exchange batch size (default 512)
//!   --connect-timeout-secs N    worker dial deadline (default 30)
//!   --check-local        also run each config on the Local transport
//!                        and fail unless outputs are byte-identical
//!   --distinct           deduplicate projected outputs (set semantics)
//! ```

use parjoin_datagen::Scale;
use parjoin_dist::RemoteCluster;
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};
use std::io::BufRead;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

const USAGE: &str = "usage: parjoin-coordinator (--hosts A,B,C | --spawn-workers N) \
                     [--queries Q1,..|all] [--configs RS_HJ,..|all] [--scale tiny|small|medium] \
                     [--twitter-nodes N] [--twitter-m N] [--freebase N] [--db-seed N] [--seed N] \
                     [--batch-tuples N] [--connect-timeout-secs N] [--check-local] [--distinct]";

const ALL_CONFIGS: [(&str, ShuffleAlg, JoinAlg); 6] = [
    ("RS_HJ", ShuffleAlg::Regular, JoinAlg::Hash),
    ("RS_TJ", ShuffleAlg::Regular, JoinAlg::Tributary),
    ("BR_HJ", ShuffleAlg::Broadcast, JoinAlg::Hash),
    ("BR_TJ", ShuffleAlg::Broadcast, JoinAlg::Tributary),
    ("HC_HJ", ShuffleAlg::HyperCube, JoinAlg::Hash),
    ("HC_TJ", ShuffleAlg::HyperCube, JoinAlg::Tributary),
];

struct Opts {
    hosts: Vec<String>,
    spawn_workers: usize,
    queries: Vec<String>,
    configs: Vec<(&'static str, ShuffleAlg, JoinAlg)>,
    scale: Scale,
    db_seed: u64,
    seed: u64,
    batch_tuples: usize,
    connect_timeout: Duration,
    check_local: bool,
    distinct: bool,
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|e| format!("bad {flag} {v}: {e}"))
}

fn parse_opts() -> Result<Option<Opts>, String> {
    let mut o = Opts {
        hosts: Vec::new(),
        spawn_workers: 0,
        queries: vec!["all".to_string()],
        configs: ALL_CONFIGS.to_vec(),
        scale: Scale::tiny(),
        db_seed: 7,
        seed: 11,
        batch_tuples: 512,
        connect_timeout: Duration::from_secs(30),
        check_local: false,
        distinct: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hosts" => {
                let v = args.next().ok_or("--hosts needs a list")?;
                o.hosts = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--spawn-workers" => o.spawn_workers = parse_num("--spawn-workers", args.next())?,
            "--queries" => {
                let v = args.next().ok_or("--queries needs a list")?;
                o.queries = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--configs" => {
                let v = args.next().ok_or("--configs needs a list")?;
                if v != "all" {
                    o.configs = Vec::new();
                    for name in v.split(',') {
                        let name = name.trim();
                        let found = ALL_CONFIGS
                            .iter()
                            .find(|(tag, _, _)| *tag == name)
                            .ok_or_else(|| format!("unknown config {name} (e.g. HC_TJ)"))?;
                        o.configs.push(*found);
                    }
                }
            }
            "--scale" => {
                o.scale = match args.next().as_deref() {
                    Some("tiny") => Scale::tiny(),
                    Some("small") => Scale::small(),
                    Some("medium") => Scale::medium(),
                    other => return Err(format!("bad --scale {other:?}")),
                };
            }
            "--twitter-nodes" => o.scale.twitter_nodes = parse_num("--twitter-nodes", args.next())?,
            "--twitter-m" => o.scale.twitter_m = parse_num("--twitter-m", args.next())?,
            "--freebase" => o.scale.freebase_performances = parse_num("--freebase", args.next())?,
            "--db-seed" => o.db_seed = parse_num("--db-seed", args.next())?,
            "--seed" => o.seed = parse_num("--seed", args.next())?,
            "--batch-tuples" => o.batch_tuples = parse_num("--batch-tuples", args.next())?,
            "--connect-timeout-secs" => {
                o.connect_timeout =
                    Duration::from_secs(parse_num("--connect-timeout-secs", args.next())?);
            }
            "--check-local" => o.check_local = true,
            "--distinct" => o.distinct = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if o.hosts.is_empty() == (o.spawn_workers == 0) {
        return Err(format!(
            "pass exactly one of --hosts or --spawn-workers\n{USAGE}"
        ));
    }
    if o.queries.iter().any(|q| q == "all") {
        o.queries = parjoin_datagen::all_queries()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
    }
    Ok(Some(o))
}

/// Spawned worker children, killed on drop so a coordinator failure
/// never strands processes.
struct LocalWorkers {
    children: Vec<Child>,
}

impl Drop for LocalWorkers {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

impl LocalWorkers {
    /// Launches `n` `parjoin-worker` processes (the binary next to this
    /// one) on ephemeral loopback ports and collects their announced
    /// control addresses.
    fn launch(n: usize) -> Result<(LocalWorkers, Vec<String>), String> {
        let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let worker = me
            .parent()
            .map(|d| d.join("parjoin-worker"))
            .ok_or("cannot locate the parjoin-worker binary")?;
        let mut workers = LocalWorkers {
            children: Vec::with_capacity(n),
        };
        let mut hosts = Vec::with_capacity(n);
        for i in 0..n {
            let mut child = Command::new(&worker)
                .arg("--listen")
                .arg("127.0.0.1:0")
                .stdout(Stdio::piped())
                // Children are reaped by LocalWorkers::drop (kill +
                // wait) or by the clean join() below. xtask: allow(spawn)
                .spawn()
                .map_err(|e| format!("launch {}: {e}", worker.display()))?;
            let stdout = child.stdout.take().ok_or("worker stdout not piped")?;
            workers.children.push(child);
            let mut line = String::new();
            std::io::BufReader::new(stdout)
                .read_line(&mut line)
                .map_err(|e| format!("read worker {i} announcement: {e}"))?;
            let addr = line
                .strip_prefix("listening ")
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .ok_or_else(|| {
                    format!("worker {i} announced {line:?}, expected `listening ADDR`")
                })?;
            hosts.push(addr.to_string());
        }
        Ok((workers, hosts))
    }

    /// Waits for every child to exit cleanly (after the coordinator's
    /// `Shutdown`), failing on a nonzero worker exit.
    fn join(mut self) -> Result<(), String> {
        let children = std::mem::take(&mut self.children);
        for (i, mut c) in children.into_iter().enumerate() {
            let status = c.wait().map_err(|e| format!("wait worker {i}: {e}"))?;
            if !status.success() {
                return Err(format!("worker {i} exited with {status}"));
            }
        }
        Ok(())
    }
}

fn run() -> Result<(), String> {
    let Some(opts) = parse_opts()? else {
        return Ok(());
    };

    let (spawned, hosts) = if opts.spawn_workers > 0 {
        let (w, hosts) = LocalWorkers::launch(opts.spawn_workers)?;
        (Some(w), hosts)
    } else {
        (None, opts.hosts.clone())
    };

    let mut remote = RemoteCluster::connect(&hosts, opts.connect_timeout)
        .map_err(|e| format!("connecting the worker mesh: {e}"))?;
    let workers = remote.workers();
    println!("mesh up: {workers} workers");
    let cluster = Cluster::new(workers)
        .with_seed(opts.seed)
        .with_batch_tuples(opts.batch_tuples);
    let plan_opts = PlanOptions {
        collect_output: true,
        distinct_output: opts.distinct,
        ..Default::default()
    };

    let mut failures = 0usize;
    for qname in &opts.queries {
        let spec = parjoin_datagen::workloads::spec_for(qname)
            .ok_or_else(|| format!("unknown query {qname} (Q1..Q8)"))?;
        let db = opts.scale.db_for(spec.dataset, opts.db_seed);
        for &(tag, s, j) in &opts.configs {
            let run = remote
                .run(&spec.query, &db, &cluster, s, j, &plan_opts)
                .map_err(|e| format!("{qname} {tag}: {e}"))?;
            run.reconcile().map_err(|e| format!("{qname} {tag}: {e}"))?;
            let shuffled: u64 = run.workers.iter().map(|w| w.tuples_sent).sum();
            let rounds = run.workers.first().map_or(0, |w| w.rounds);
            println!(
                "{qname} {tag}: {} tuples, {shuffled} shuffled, {rounds} rounds, \
                 tx/rx reconciled",
                run.output_tuples
            );
            if opts.check_local {
                let local = run_config(&spec.query, &db, &cluster, s, j, &plan_opts)
                    .map_err(|e| format!("{qname} {tag} local check: {e}"))?;
                let identical = local.output.as_ref().is_some_and(|l| {
                    l.arity() == run.output.arity() && l.raw() == run.output.raw()
                });
                if identical {
                    println!("{qname} {tag}: byte-identical to Local");
                } else {
                    eprintln!("{qname} {tag}: MISMATCH against Local transport");
                    failures += 1;
                }
            }
        }
    }

    remote.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    if let Some(w) = spawned {
        w.join()?;
    }
    if failures > 0 {
        return Err(format!(
            "{failures} config(s) diverged from the Local transport"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("parjoin-coordinator: {e}");
            ExitCode::FAILURE
        }
    }
}
