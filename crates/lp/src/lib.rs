#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-lp
//!
//! A small, dense, two-phase simplex solver — the stand-in for GLPK, which
//! the paper uses to compute the optimal fractional HyperCube shares
//! ("we first compute the optimal workload using the linear programming
//! solver GLPK and the problem formulation proposed in prior work \[8\]",
//! §4). The share LP has one variable per join variable plus one bound
//! variable, and one constraint per atom — at most a dozen of each — so an
//! exact textbook simplex with Bland's anti-cycling rule is entirely
//! adequate and keeps the workspace dependency-free.
//!
//! The API is deliberately tiny: build an [`LpProblem`], add constraints,
//! call [`LpProblem::solve`].

pub mod simplex;

pub use simplex::{Cmp, LpError, LpProblem, LpSolution};
