//! Dense two-phase simplex.
//!
//! Solves `min/max cᵀx  s.t.  Aᵢx {≤,≥,=} bᵢ`, with each variable either
//! non-negative or free. Free variables are split `x = u − v`; phase 1
//! minimizes the sum of artificial variables to find a basic feasible
//! point, phase 2 optimizes the real objective. Bland's rule guarantees
//! termination on degenerate problems.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// Solver failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("LP is infeasible"),
            LpError::Unbounded => f.write_str("LP is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal assignment, indexed like the problem's variables.
    pub x: Vec<f64>,
    /// Optimal objective value (in the user's min/max sense).
    pub objective: f64,
}

struct Constraint {
    coeffs: Vec<f64>,
    cmp: Cmp,
    rhs: f64,
}

/// A linear program under construction.
///
/// ```
/// use parjoin_lp::{Cmp, LpProblem};
///
/// // max 3x + 2y  s.t.  x + y ≤ 4,  x + 3y ≤ 6,  x,y ≥ 0.
/// let mut p = LpProblem::maximize(2);
/// p.objective(&[3.0, 2.0])
///     .constraint(&[1.0, 1.0], Cmp::Le, 4.0)
///     .constraint(&[1.0, 3.0], Cmp::Le, 6.0);
/// let sol = p.solve().unwrap();
/// assert!((sol.objective - 12.0).abs() < 1e-6);
/// ```
pub struct LpProblem {
    n: usize,
    minimize: bool,
    objective: Vec<f64>,
    free: Vec<bool>,
    constraints: Vec<Constraint>,
}

const EPS: f64 = 1e-9;

impl LpProblem {
    /// A minimization problem over `n` non-negative variables.
    pub fn minimize(n: usize) -> Self {
        LpProblem {
            n,
            minimize: true,
            objective: vec![0.0; n],
            free: vec![false; n],
            constraints: Vec::new(),
        }
    }

    /// A maximization problem over `n` non-negative variables.
    pub fn maximize(n: usize) -> Self {
        LpProblem {
            minimize: false,
            ..LpProblem::minimize(n)
        }
    }

    /// Sets the objective coefficients.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != n`.
    pub fn objective(&mut self, coeffs: &[f64]) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "objective length mismatch");
        self.objective.copy_from_slice(coeffs);
        self
    }

    /// Marks variable `i` as free (unbounded below).
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn set_free(&mut self, i: usize) -> &mut Self {
        self.free[i] = true;
        self
    }

    /// Adds the constraint `coeffs · x  cmp  rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != n`.
    pub fn constraint(&mut self, coeffs: &[f64], cmp: Cmp, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "constraint length mismatch");
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            cmp,
            rhs,
        });
        self
    }

    /// Solves the program.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        // --- Build the standard form. -----------------------------------
        // Column layout: for each variable, one column (non-negative) or
        // two (free, split u − v); then one slack/surplus column per
        // inequality; artificials appended during phase 1.
        let mut col_of_var: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.n);
        let mut ncols = 0usize;
        #[allow(clippy::needless_range_loop)] // parallel indexing into two layouts
        for i in 0..self.n {
            if self.free[i] {
                col_of_var.push((ncols, Some(ncols + 1)));
                ncols += 2;
            } else {
                col_of_var.push((ncols, None));
                ncols += 1;
            }
        }
        let slack_start = ncols;
        let num_slacks = self.constraints.iter().filter(|c| c.cmp != Cmp::Eq).count();
        ncols += num_slacks;

        let m = self.constraints.len();
        // rows[r] has length ncols (+ artificials later); rhs[r] >= 0.
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0; ncols]; m];
        let mut rhs: Vec<f64> = vec![0.0; m];
        let mut slack_idx = slack_start;
        for (r, c) in self.constraints.iter().enumerate() {
            let mut sign = 1.0;
            if c.rhs < 0.0 {
                sign = -1.0;
            }
            for (i, &a) in c.coeffs.iter().enumerate() {
                let (u, v) = col_of_var[i];
                rows[r][u] += sign * a;
                if let Some(v) = v {
                    rows[r][v] -= sign * a;
                }
            }
            rhs[r] = sign * c.rhs;
            let eff_cmp = match (c.cmp, sign < 0.0) {
                (Cmp::Le, false) | (Cmp::Ge, true) => Some(1.0),
                (Cmp::Ge, false) | (Cmp::Le, true) => Some(-1.0),
                (Cmp::Eq, _) => None,
            };
            if let Some(s) = eff_cmp {
                rows[r][slack_idx] = s;
                slack_idx += 1;
            }
        }

        // Objective in min form over the expanded columns.
        let obj_sign = if self.minimize { 1.0 } else { -1.0 };
        let mut cost = vec![0.0; ncols];
        for (&(u, v), &obj) in col_of_var.iter().zip(&self.objective) {
            cost[u] = obj_sign * obj;
            if let Some(v) = v {
                cost[v] = -obj_sign * obj;
            }
        }

        // --- Phase 1: artificials for every row. -------------------------
        let art_start = ncols;
        for (r, row) in rows.iter_mut().enumerate() {
            row.resize(ncols + m, 0.0);
            row[art_start + r] = 1.0;
        }
        let total_cols = ncols + m;
        let mut basis: Vec<usize> = (0..m).map(|r| art_start + r).collect();

        let mut phase1_cost = vec![0.0; total_cols];
        for pc in phase1_cost.iter_mut().skip(art_start) {
            *pc = 1.0;
        }
        let p1 = simplex_core(&mut rows, &mut rhs, &mut basis, &phase1_cost, total_cols)?;
        if p1 > EPS {
            return Err(LpError::Infeasible);
        }

        // Drive any artificial still in the basis out (degenerate rows).
        for r in 0..m {
            if basis[r] >= art_start {
                if let Some(c) = (0..ncols).find(|&c| rows[r][c].abs() > EPS) {
                    pivot(&mut rows, &mut rhs, r, c);
                    basis[r] = c;
                }
                // Otherwise: the row is all-zero over real columns —
                // a redundant constraint; the artificial stays at 0.
            }
        }

        // --- Phase 2 over real columns only. ------------------------------
        for row in rows.iter_mut() {
            row.truncate(ncols);
        }
        let mut cost2 = cost;
        cost2.resize(ncols, 0.0);
        // Rows whose basis is still an artificial are redundant; give the
        // phantom column index ncols (never chosen as entering).
        let _obj = simplex_core(&mut rows, &mut rhs, &mut basis, &cost2, ncols)?;

        // Read out the solution.
        let mut xs = vec![0.0; ncols];
        for (r, &b) in basis.iter().enumerate() {
            if b < ncols {
                xs[b] = rhs[r];
            }
        }
        let mut x = vec![0.0; self.n];
        for i in 0..self.n {
            let (u, v) = col_of_var[i];
            x[i] = xs[u] - v.map_or(0.0, |v| xs[v]);
        }
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
        Ok(LpSolution { x, objective })
    }
}

/// Runs simplex with Bland's rule on the tableau; returns the optimal
/// phase objective (in min form).
fn simplex_core(
    rows: &mut [Vec<f64>],
    rhs: &mut [f64],
    basis: &mut [usize],
    cost: &[f64],
    ncols: usize,
) -> Result<f64, LpError> {
    let m = rows.len();
    loop {
        // Reduced costs: c_j − c_B · B⁻¹A_j. With an explicit tableau the
        // rows already are B⁻¹A, so compute z_j = Σ_r cost[basis[r]]·rows[r][j].
        let mut entering = None;
        for j in 0..ncols {
            if basis.contains(&j) {
                continue;
            }
            let mut zj = 0.0;
            for r in 0..m {
                let cb = if basis[r] < cost.len() {
                    cost[basis[r]]
                } else {
                    0.0
                };
                if cb != 0.0 {
                    zj += cb * rows[r][j];
                }
            }
            let cj = if j < cost.len() { cost[j] } else { 0.0 };
            if cj - zj < -EPS {
                entering = Some(j); // Bland: first improving index
                break;
            }
        }
        let Some(e) = entering else {
            // Optimal: compute objective value.
            let mut obj = 0.0;
            for r in 0..m {
                let cb = if basis[r] < cost.len() {
                    cost[basis[r]]
                } else {
                    0.0
                };
                obj += cb * rhs[r];
            }
            return Ok(obj);
        };

        // Ratio test (Bland tie-break on smallest basis index).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for r in 0..m {
            if rows[r][e] > EPS {
                let ratio = rhs[r] / rows[r][e];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.is_none_or(|l| basis[r] < basis[l]));
                if better {
                    best = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(l) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(rows, rhs, l, e);
        basis[l] = e;
    }
}

fn pivot(rows: &mut [Vec<f64>], rhs: &mut [f64], l: usize, e: usize) {
    let m = rows.len();
    let p = rows[l][e];
    debug_assert!(p.abs() > EPS, "pivot on ~zero element");
    let inv = 1.0 / p;
    for v in rows[l].iter_mut() {
        *v *= inv;
    }
    rhs[l] *= inv;
    for r in 0..m {
        if r == l {
            continue;
        }
        let f = rows[r][e];
        if f.abs() < EPS {
            continue;
        }
        let (head, tail) = rows.split_at_mut(l.max(r));
        let (src, dst) = if l < r {
            (&head[l], &mut tail[0])
        } else {
            (&tail[0], &mut head[r])
        };
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d -= f * s;
        }
        rhs[r] -= f * rhs[l];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj=12.
        let mut p = LpProblem::maximize(2);
        p.objective(&[3.0, 2.0])
            .constraint(&[1.0, 1.0], Cmp::Le, 4.0)
            .constraint(&[1.0, 3.0], Cmp::Le, 6.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 12.0);
        assert_close(s.x[0], 4.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn minimize_with_ge() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 → x=1.6, y=1.2, obj=2.8.
        let mut p = LpProblem::minimize(2);
        p.objective(&[1.0, 1.0])
            .constraint(&[1.0, 2.0], Cmp::Ge, 4.0)
            .constraint(&[3.0, 1.0], Cmp::Ge, 6.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 2.8);
        assert_close(s.x[0], 1.6);
        assert_close(s.x[1], 1.2);
    }

    #[test]
    fn equality_constraint() {
        // min 2x + y s.t. x + y = 3, x <= 2 → x=2, y=1? obj(2,1)=5;
        // x=0,y=3 → obj 3 — smaller. min at x=0, y=3.
        let mut p = LpProblem::minimize(2);
        p.objective(&[2.0, 1.0])
            .constraint(&[1.0, 1.0], Cmp::Eq, 3.0)
            .constraint(&[1.0, 0.0], Cmp::Le, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 3.0);
        assert_close(s.x[0], 0.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = LpProblem::minimize(1);
        p.objective(&[1.0])
            .constraint(&[1.0], Cmp::Ge, 5.0)
            .constraint(&[1.0], Cmp::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = LpProblem::maximize(1);
        p.objective(&[1.0]).constraint(&[1.0], Cmp::Ge, 0.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_variable() {
        // min t s.t. t >= -5, t >= x - 3, x >= 2, t free.
        // With x = 2, t can be max(-5, -1) = -1.
        let mut p = LpProblem::minimize(2); // vars: t, x
        p.objective(&[1.0, 0.0]);
        p.set_free(0);
        p.constraint(&[1.0, 0.0], Cmp::Ge, -5.0)
            .constraint(&[1.0, -1.0], Cmp::Ge, -3.0)
            .constraint(&[0.0, 1.0], Cmp::Ge, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut p = LpProblem::minimize(1);
        p.objective(&[1.0]).constraint(&[-1.0], Cmp::Le, -3.0);
        let s = p.solve().unwrap();
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degeneracy: multiple constraints active at origin.
        let mut p = LpProblem::maximize(2);
        p.objective(&[1.0, 1.0])
            .constraint(&[1.0, 0.0], Cmp::Le, 1.0)
            .constraint(&[1.0, 0.0], Cmp::Le, 1.0)
            .constraint(&[0.0, 1.0], Cmp::Le, 1.0)
            .constraint(&[1.0, 1.0], Cmp::Le, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 stated twice; min x → x=0, y=2.
        let mut p = LpProblem::minimize(2);
        p.objective(&[1.0, 0.0])
            .constraint(&[1.0, 1.0], Cmp::Eq, 2.0)
            .constraint(&[1.0, 1.0], Cmp::Eq, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn share_lp_shape_triangle() {
        // The actual share LP for the triangle query with equal
        // cardinalities m: minimize t s.t. for each atom S_j over vars
        // {a, b}: e_a + e_b + t >= log_p m, and e_1+e_2+e_3 <= 1.
        // Symmetric optimum: e_i = 1/3 each.
        // Vars: e1, e2, e3, t (free).
        let logm = 1.5_f64; // log_p m, arbitrary
        let mut p = LpProblem::minimize(4);
        p.objective(&[0.0, 0.0, 0.0, 1.0]);
        p.set_free(3);
        p.constraint(&[1.0, 1.0, 0.0, 1.0], Cmp::Ge, logm)
            .constraint(&[0.0, 1.0, 1.0, 1.0], Cmp::Ge, logm)
            .constraint(&[1.0, 0.0, 1.0, 1.0], Cmp::Ge, logm)
            .constraint(&[1.0, 1.0, 1.0, 0.0], Cmp::Le, 1.0);
        let s = p.solve().unwrap();
        assert_close(s.objective, logm - 2.0 / 3.0);
        for i in 0..3 {
            assert_close(s.x[i], 1.0 / 3.0);
        }
    }

    #[test]
    fn share_lp_skewed_sizes() {
        // |S1| << |S2| = |S3|: paper says optimum is e1=e2=0, e3=1 for
        // T(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1)… in [9] the shares
        // become p3 = p (hash on x3) with S1 broadcast. Verify the LP
        // prefers putting all share on the variable joining the two big
        // relations. Vars: e1,e2,e3,t.
        let (small, big) = (0.1_f64, 2.0_f64);
        let mut p = LpProblem::minimize(4);
        p.objective(&[0.0, 0.0, 0.0, 1.0]);
        p.set_free(3);
        // S1(x1,x2) small, S2(x2,x3) big, S3(x3,x1) big.
        p.constraint(&[1.0, 1.0, 0.0, 1.0], Cmp::Ge, small)
            .constraint(&[0.0, 1.0, 1.0, 1.0], Cmp::Ge, big)
            .constraint(&[1.0, 0.0, 1.0, 1.0], Cmp::Ge, big)
            .constraint(&[1.0, 1.0, 1.0, 0.0], Cmp::Le, 1.0);
        let s = p.solve().unwrap();
        // x3 takes the whole budget.
        assert_close(s.x[2], 1.0);
        assert_close(s.objective, big - 1.0);
    }
}
