//! Property tests: simplex vs brute force on random small LPs.

use parjoin_lp::{Cmp, LpError, LpProblem};
use proptest::prelude::*;

/// Brute-force optimum of a 2-variable LP with `x, y ≥ 0` and ≤-constraints:
/// enumerate all vertices (pairwise constraint intersections + axis
/// intersections + origin), keep feasible ones, take the best objective.
fn brute_force_2d(obj: (f64, f64), cons: &[(f64, f64, f64)]) -> Option<f64> {
    let mut lines: Vec<(f64, f64, f64)> = cons.to_vec();
    // Axes as constraints: -x <= 0, -y <= 0 (their boundary lines are the axes).
    lines.push((1.0, 0.0, 0.0));
    lines.push((0.0, 1.0, 0.0));
    let feasible = |x: f64, y: f64| {
        x >= -1e-7 && y >= -1e-7 && cons.iter().all(|&(a, b, c)| a * x + b * y <= c + 1e-7)
    };
    let mut best: Option<f64> = None;
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let (a1, b1, c1) = lines[i];
            let (a2, b2, c2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (c1 * b2 - c2 * b1) / det;
            let y = (a1 * c2 - a2 * c1) / det;
            if feasible(x, y) {
                let v = obj.0 * x + obj.1 * y;
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn matches_vertex_enumeration(
        ox in 0.1f64..5.0, oy in 0.1f64..5.0,
        cons in proptest::collection::vec(
            (0.1f64..4.0, 0.1f64..4.0, 0.5f64..10.0), 1..5),
    ) {
        // max ox·x + oy·y over positive ≤-constraints: always feasible
        // (origin) and bounded (all coefficients positive).
        let mut p = LpProblem::maximize(2);
        p.objective(&[ox, oy]);
        for &(a, b, c) in &cons {
            p.constraint(&[a, b], Cmp::Le, c);
        }
        let got = p.solve().expect("feasible & bounded").objective;
        let want = brute_force_2d((ox, oy), &cons).expect("origin feasible");
        prop_assert!((got - want).abs() < 1e-5 * (1.0 + want.abs()),
            "simplex {got} vs brute force {want}");
    }

    #[test]
    fn solution_is_feasible(
        cons in proptest::collection::vec(
            (0.1f64..4.0, 0.1f64..4.0, 0.5f64..10.0), 1..6),
    ) {
        let mut p = LpProblem::maximize(2);
        p.objective(&[1.0, 1.0]);
        for &(a, b, c) in &cons {
            p.constraint(&[a, b], Cmp::Le, c);
        }
        let s = p.solve().unwrap();
        prop_assert!(s.x[0] >= -1e-7 && s.x[1] >= -1e-7);
        for &(a, b, c) in &cons {
            prop_assert!(a * s.x[0] + b * s.x[1] <= c + 1e-6);
        }
    }

    #[test]
    fn contradictory_bounds_infeasible(lo in 2.0f64..10.0) {
        let mut p = LpProblem::minimize(1);
        p.objective(&[1.0])
            .constraint(&[1.0], Cmp::Ge, lo)
            .constraint(&[1.0], Cmp::Le, lo - 1.0);
        prop_assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }
}
