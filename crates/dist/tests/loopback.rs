//! Multi-worker loopback integration: a coordinator and four worker
//! servers in one process (separate threads, real TCP sockets for both
//! control and data planes) must produce output byte-identical to the
//! sequential `Transport::Local` engine for every shuffle×join
//! configuration — and their cross-process metric tallies must
//! reconcile exactly.

use parjoin_dist::{RemoteCluster, WorkerServer};
use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};
use std::time::Duration;

fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
    vec![
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Regular, JoinAlg::Tributary),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Tributary),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ]
}

/// Binds `n` worker servers on loopback, spawns their serve loops, and
/// returns the control address book plus the join handles.
fn spawn_workers(
    n: usize,
) -> (
    Vec<String>,
    Vec<std::thread::JoinHandle<Result<(), parjoin_dist::DistError>>>,
) {
    let mut addrs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let server = WorkerServer::bind("127.0.0.1:0").expect("bind worker");
        addrs.push(server.control_addr().expect("control addr").to_string());
        handles.push(std::thread::spawn(move || server.serve()));
    }
    (addrs, handles)
}

/// The tentpole safety net: every paper configuration of Q1, executed by
/// four worker servers over real sockets, is byte-identical to the
/// Local run — same raw buffer, same arity, same tuple count — and the
/// per-worker byte/batch tallies balance. All six configs run over ONE
/// persistent worker session, so this also proves fragment-after-
/// fragment reuse of the same mesh.
#[test]
fn six_configs_match_local_over_real_sockets() {
    let spec = parjoin_datagen::workloads::q1();
    let db = parjoin_datagen::workloads::Scale::tiny().db_for(spec.dataset, 7);
    let cluster = Cluster::new(4).with_seed(11).with_batch_tuples(512);
    let opts = PlanOptions {
        collect_output: true,
        ..Default::default()
    };

    let (addrs, handles) = spawn_workers(4);
    let mut remote = RemoteCluster::connect(&addrs, Duration::from_secs(20)).expect("connect");
    remote.reply_timeout = Some(Duration::from_secs(60));

    for (s, j) in all_configs() {
        let local = run_config(&spec.query, &db, &cluster, s, j, &opts)
            .unwrap_or_else(|e| panic!("local {s:?}/{j:?}: {e}"));
        let local_out = local.output.as_ref().expect("collected");

        let run = remote
            .run(&spec.query, &db, &cluster, s, j, &opts)
            .unwrap_or_else(|e| panic!("remote {s:?}/{j:?}: {e}"));
        assert_eq!(
            local_out.arity(),
            run.output.arity(),
            "{s:?}/{j:?}: arity drifted"
        );
        assert_eq!(
            local_out.raw(),
            run.output.raw(),
            "{s:?}/{j:?}: output not byte-identical to Local"
        );
        assert_eq!(
            local.output_tuples, run.output_tuples,
            "{s:?}/{j:?}: tuple tallies drifted"
        );
        run.reconcile()
            .unwrap_or_else(|e| panic!("{s:?}/{j:?}: {e}"));
        assert_eq!(run.workers.len(), 4, "{s:?}/{j:?}: missing worker stats");
        let sent: u64 = run.workers.iter().map(|w| w.tuples_sent).sum();
        assert_eq!(
            local.tuples_shuffled, sent,
            "{s:?}/{j:?}: shuffled-tuple tallies drifted"
        );
    }

    remote.shutdown().expect("shutdown");
    for h in handles {
        h.join().expect("worker thread").expect("worker serve");
    }
}

/// Projected-distinct heads (Q3's shape) survive the wire: the remote
/// path must apply the coordinator-side distinct exactly like the Local
/// gather does.
#[test]
fn distinct_output_matches_local() {
    let spec = parjoin_datagen::workloads::q3();
    let db = parjoin_datagen::workloads::Scale::tiny().db_for(spec.dataset, 7);
    let cluster = Cluster::new(3).with_seed(11).with_batch_tuples(256);
    let opts = PlanOptions {
        collect_output: true,
        distinct_output: true,
        ..Default::default()
    };

    let (addrs, handles) = spawn_workers(3);
    let mut remote = RemoteCluster::connect(&addrs, Duration::from_secs(20)).expect("connect");
    remote.reply_timeout = Some(Duration::from_secs(60));

    for (s, j) in [
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ] {
        let local = run_config(&spec.query, &db, &cluster, s, j, &opts)
            .unwrap_or_else(|e| panic!("local {s:?}/{j:?}: {e}"));
        let run = remote
            .run(&spec.query, &db, &cluster, s, j, &opts)
            .unwrap_or_else(|e| panic!("remote {s:?}/{j:?}: {e}"));
        assert_eq!(
            local.output.as_ref().expect("collected").raw(),
            run.output.raw(),
            "{s:?}/{j:?}: distinct output drifted"
        );
        run.reconcile()
            .unwrap_or_else(|e| panic!("{s:?}/{j:?}: {e}"));
    }

    remote.shutdown().expect("shutdown");
    for h in handles {
        h.join().expect("worker thread").expect("worker serve");
    }
}

/// A refused fragment (unsupported option) leaves the session usable:
/// the coordinator gets a typed `Worker` error, and the very next query
/// on the same connections still runs and matches Local.
#[test]
fn refusal_keeps_the_session_alive() {
    let spec = parjoin_datagen::workloads::q1();
    let db = parjoin_datagen::workloads::Scale::tiny().db_for(spec.dataset, 7);
    let cluster = Cluster::new(2).with_seed(11).with_batch_tuples(512);

    let (addrs, handles) = spawn_workers(2);
    let mut remote = RemoteCluster::connect(&addrs, Duration::from_secs(20)).expect("connect");
    remote.reply_timeout = Some(Duration::from_secs(60));

    // skew_resilient is coordinator-refused at planning time — exercise
    // a worker-side refusal instead by shipping a fragment whose rank
    // geometry the worker rejects: a mesh-width mismatch via a Cluster
    // narrower than the connected mesh.
    let narrow = Cluster::new(1).with_seed(11);
    let opts = PlanOptions {
        collect_output: true,
        ..Default::default()
    };
    let err = remote
        .run(
            &spec.query,
            &db,
            &narrow,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &opts,
        )
        .expect_err("width mismatch must be refused");
    assert!(
        matches!(err, parjoin_dist::DistError::Protocol(_)),
        "unexpected error: {err}"
    );

    // The session survives: the same connections run a real query next.
    let local = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &opts,
    )
    .expect("local");
    let run = remote
        .run(
            &spec.query,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &opts,
        )
        .expect("remote after refusal");
    assert_eq!(
        local.output.as_ref().expect("collected").raw(),
        run.output.raw()
    );

    remote.shutdown().expect("shutdown");
    for h in handles {
        h.join().expect("worker thread").expect("worker serve");
    }
}
