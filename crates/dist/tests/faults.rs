//! Mesh fault injection: every way a worker or coordinator can
//! disappear must surface as a *typed* `DistError` within its
//! configured deadline — never a hang. Each scenario runs under a
//! watchdog thread; a scenario that wedges fails the test instead of
//! wedging the suite.

use parjoin_common::wire::control::{self, FrameKind};
use parjoin_dist::{proto, DistError, RemoteCluster, WorkerServer};
use parjoin_engine::{Cluster, JoinAlg, PlanOptions, ShuffleAlg};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Runs `f` on its own thread and panics if it does not finish within
/// `deadline` — the suite's no-hangs guarantee is itself enforced.
fn watchdog<T: Send + 'static>(deadline: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        // A send can only fail if the watchdog already gave up; the
        // panic below has the better message.
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(deadline)
        .unwrap_or_else(|_| panic!("scenario hung past its {deadline:?} watchdog"));
    handle.join().expect("scenario thread");
    out
}

/// A port that refuses connections: bind a listener, note the port,
/// drop it.
fn dead_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("addr").to_string();
    drop(l);
    addr
}

/// A worker that never comes up surfaces as `Timeout` (with the dial
/// history in its message), within the connect deadline.
#[test]
fn worker_never_connects() {
    let err = watchdog(Duration::from_secs(10), || {
        let start = Instant::now();
        let err = match RemoteCluster::connect(&[dead_addr()], Duration::from_millis(300)) {
            Err(e) => e,
            Ok(_) => panic!("nothing is listening, connect cannot succeed"),
        };
        (err, start.elapsed())
    });
    let (err, waited) = err;
    match &err {
        DistError::Timeout { what, .. } => {
            assert!(what.contains("attempts"), "no dial history in: {what}");
        }
        other => panic!("expected Timeout, got {other}"),
    }
    assert!(
        waited < Duration::from_secs(5),
        "gave up only after {waited:?}"
    );
}

/// A worker that accepts, announces `Ready`, and dies before serving
/// its fragment surfaces as a typed control/IO error — the coordinator
/// notices the vanished peer instead of waiting forever.
#[test]
fn worker_dies_between_hello_and_first_frame() {
    let err = watchdog(Duration::from_secs(20), || {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let fake = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            control::write_frame(
                &mut s,
                FrameKind::Ready,
                &proto::encode_ready("127.0.0.1:1"),
            )
            .expect("ready");
            // Die: drop the control connection without serving anything.
        });

        let mut remote = RemoteCluster::connect(&[addr], Duration::from_secs(5)).expect("connect");
        remote.reply_timeout = Some(Duration::from_secs(2));
        fake.join().expect("fake worker");

        let spec = parjoin_datagen::workloads::q1();
        let db = parjoin_datagen::workloads::Scale::tiny().db_for(spec.dataset, 7);
        let cluster = Cluster::new(1).with_seed(11);
        remote
            .run(
                &spec.query,
                &db,
                &cluster,
                ShuffleAlg::Regular,
                JoinAlg::Hash,
                &PlanOptions::default(),
            )
            .expect_err("the worker is gone")
    });
    assert!(
        matches!(
            err,
            DistError::Control(_) | DistError::Io(_) | DistError::Timeout { .. }
        ),
        "expected a typed disconnect, got {err}"
    );
}

/// A coordinator that vanishes mid-session surfaces on the worker as a
/// typed control error (a closed socket is `Truncated`, not a timeout
/// and not a hang).
#[test]
fn coordinator_vanishes_mid_session() {
    let err = watchdog(Duration::from_secs(10), || {
        let server = WorkerServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.control_addr().expect("addr").to_string();
        let serving = std::thread::spawn(move || server.serve());

        let remote = RemoteCluster::connect(&[addr], Duration::from_secs(5)).expect("connect");
        // Vanish without a Shutdown frame.
        drop(remote);

        serving
            .join()
            .expect("worker thread")
            .expect_err("a vanished coordinator is an error, not a clean exit")
    });
    assert!(
        matches!(err, DistError::Control(_)),
        "expected a truncated-frame control error, got {err}"
    );
}

/// A coordinator that connects but never speaks trips the worker's idle
/// deadline as a typed `Timeout` naming what it was waiting for.
#[test]
fn silent_coordinator_trips_idle_timeout() {
    let err = watchdog(Duration::from_secs(10), || {
        let mut server = WorkerServer::bind("127.0.0.1:0").expect("bind");
        server.idle_timeout = Some(Duration::from_millis(200));
        let addr = server.control_addr().expect("addr").to_string();
        let serving = std::thread::spawn(move || server.serve());

        let _remote = RemoteCluster::connect(&[addr], Duration::from_secs(5)).expect("connect");
        // Keep the connection open but send nothing.
        serving
            .join()
            .expect("worker thread")
            .expect_err("silence must trip the idle deadline")
    });
    match err {
        DistError::Timeout { what, waited } => {
            assert!(what.contains("control frame"), "vague timeout: {what}");
            assert!(waited < Duration::from_secs(5), "waited {waited:?}");
        }
        other => panic!("expected Timeout, got {other}"),
    }
}

/// A fragment whose address book names an unreachable data peer fails
/// mesh formation on the worker within the handshake deadline, and the
/// coordinator receives it as a typed `Worker` error naming the rank —
/// query execution faults cross the control plane instead of hanging
/// both sides.
#[test]
fn unreachable_data_peer_fails_within_handshake_deadline() {
    let (rank_err, waited) = watchdog(Duration::from_secs(30), || {
        // Rank 0 is real; rank 1 is a control-plane impostor whose
        // advertised data address refuses connections, so rank 0's mesh
        // formation must fail.
        let mut real = WorkerServer::bind("127.0.0.1:0").expect("bind");
        real.handshake_mut().connect_attempts = 3;
        real.handshake_mut().backoff_cap = Duration::from_millis(10);
        real.handshake_mut().handshake_timeout = Duration::from_millis(500);
        let real_addr = real.control_addr().expect("addr").to_string();
        let real_serving = std::thread::spawn(move || real.serve());

        let impostor = TcpListener::bind("127.0.0.1:0").expect("bind");
        let impostor_addr = impostor.local_addr().expect("addr").to_string();
        let bogus_data = dead_addr();
        let impostor_thread = std::thread::spawn(move || {
            let (mut s, _) = impostor.accept().expect("accept");
            control::write_frame(&mut s, FrameKind::Ready, &proto::encode_ready(&bogus_data))
                .expect("ready");
            // Swallow the fragment, then report failure like a worker
            // whose mesh join died, and keep the socket open so the
            // coordinator's typed error comes from rank 0's report.
            let _ = control::read_frame(&mut s, u32::MAX >> 1);
            let _ = control::write_frame(
                &mut s,
                FrameKind::Error,
                &proto::encode_error("impostor: no data plane"),
            );
            std::thread::sleep(Duration::from_secs(5));
        });

        let mut remote =
            RemoteCluster::connect(&[real_addr, impostor_addr], Duration::from_secs(5))
                .expect("connect");
        remote.reply_timeout = Some(Duration::from_secs(10));

        let spec = parjoin_datagen::workloads::q1();
        let db = parjoin_datagen::workloads::Scale::tiny().db_for(spec.dataset, 7);
        let cluster = Cluster::new(2).with_seed(11);
        let start = Instant::now();
        let err = remote
            .run(
                &spec.query,
                &db,
                &cluster,
                ShuffleAlg::Regular,
                JoinAlg::Hash,
                &PlanOptions {
                    collect_output: true,
                    ..Default::default()
                },
            )
            .expect_err("rank 0 cannot form the data mesh");
        let waited = start.elapsed();
        // The real worker tore down after its execution failure (by
        // design: mid-query mesh state is not trusted), and the
        // impostor exits with its sleep.
        let _ = real_serving.join().expect("real worker thread");
        drop(impostor_thread);
        (err, waited)
    });
    match &rank_err {
        DistError::Worker { rank, message } => {
            assert_eq!(*rank, 0, "the real worker is rank 0");
            assert!(
                message.contains("execution failed") || message.contains("mesh"),
                "unhelpful worker error: {message}"
            );
        }
        other => panic!("expected Worker, got {other}"),
    }
    assert!(
        waited < Duration::from_secs(20),
        "mesh failure took {waited:?} to surface"
    );
}
