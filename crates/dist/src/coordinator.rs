//! The coordinator side of the control plane: dial every worker, ship
//! per-rank plan fragments, collect streamed results, and reconcile
//! cross-process metrics.

use crate::error::DistError;
use crate::proto::{self, WorkerStats};
use parjoin_common::wire::control::{self, FrameKind, DEFAULT_FRAME_LIMIT};
use parjoin_common::wire::decode_batch_into;
use parjoin_common::{Database, Relation};
use parjoin_engine::{plan_fragments, Cluster, JoinAlg, PlanOptions, ShuffleAlg};
use parjoin_query::ConjunctiveQuery;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One connected worker: its control stream and advertised data-plane
/// address.
struct WorkerLink {
    host: String,
    stream: TcpStream,
    data_addr: String,
}

/// A mesh of connected worker processes, addressed by rank in
/// connection order. Queries run with [`RemoteCluster::run`] reuse the
/// same worker set — the per-query fragments re-form the data mesh, the
/// control connections persist.
pub struct RemoteCluster {
    links: Vec<WorkerLink>,
    /// Per-frame size ceiling on control connections.
    pub frame_limit: u32,
    /// Deadline for each result frame while collecting; `None` waits
    /// indefinitely (queries can legitimately run long — set it when a
    /// hung worker must surface as a typed error instead).
    pub reply_timeout: Option<Duration>,
}

/// Dials `host` until `deadline`, with capped exponential backoff —
/// workers may still be starting when the coordinator comes up.
fn dial_until(host: &str, deadline: Instant) -> Result<TcpStream, DistError> {
    let start = Instant::now();
    let mut backoff = Duration::from_millis(5);
    let mut attempts = 0u32;
    let mut last_err = String::new();
    loop {
        attempts += 1;
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(DistError::Timeout {
                what: format!(
                    "a control connection to worker {host} ({attempts} attempts, last error: \
                     {last_err})"
                ),
                waited: start.elapsed(),
            });
        }
        // Resolve on every attempt so a worker that registers DNS late
        // still gets found.
        let addr = match std::net::ToSocketAddrs::to_socket_addrs(host).map(|mut a| a.next()) {
            Ok(Some(a)) => a,
            Ok(None) => {
                return Err(DistError::Io(format!("{host} resolves to no address")));
            }
            Err(e) => {
                return Err(DistError::Io(format!("resolve {host}: {e}")));
            }
        };
        match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_secs(1))) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = e.to_string(),
        }
        std::thread::sleep(backoff.min(remaining));
        backoff = (backoff * 2).min(Duration::from_millis(200));
    }
}

/// One query's collected result and per-worker tallies.
#[derive(Debug)]
pub struct RemoteRun {
    /// The gathered output, rank-ascending (byte-identical to the
    /// `Transport::Local` gather order).
    pub output: Relation,
    /// Total output tuples before any distinct step.
    pub output_tuples: u64,
    /// Per-worker stats, rank-ascending.
    pub workers: Vec<WorkerStats>,
}

impl RemoteRun {
    /// Cross-process metric reconciliation: every byte and batch a rank
    /// placed on the data mesh must have been received by some rank
    /// (the exchange self-loop included), and all ranks must agree on
    /// the round count.
    ///
    /// # Errors
    /// [`DistError::Reconcile`] naming the first tally that does not
    /// balance.
    pub fn reconcile(&self) -> Result<(), DistError> {
        let tx_bytes: u64 = self.workers.iter().map(|w| w.tx_bytes).sum();
        let rx_bytes: u64 = self.workers.iter().map(|w| w.rx_bytes).sum();
        if tx_bytes != rx_bytes {
            return Err(DistError::Reconcile(format!(
                "runtime.tx.bytes {tx_bytes} != runtime.rx.bytes {rx_bytes}"
            )));
        }
        let tx_batches: u64 = self.workers.iter().map(|w| w.tx_batches).sum();
        let rx_batches: u64 = self.workers.iter().map(|w| w.rx_batches).sum();
        if tx_batches != rx_batches {
            return Err(DistError::Reconcile(format!(
                "runtime.tx.batches {tx_batches} != runtime.rx.batches {rx_batches}"
            )));
        }
        if let Some(first) = self.workers.first() {
            for w in &self.workers {
                if w.rounds != first.rounds {
                    return Err(DistError::Reconcile(format!(
                        "rank {} ran {} exchange rounds, rank {} ran {}",
                        first.rank, first.rounds, w.rank, w.rounds
                    )));
                }
            }
        }
        Ok(())
    }
}

impl RemoteCluster {
    /// Dials every worker's control address (retrying until `timeout`)
    /// and reads its `Ready` announcement. `hosts[r]` becomes rank `r`.
    ///
    /// # Errors
    /// [`DistError::Timeout`] when a worker never comes up,
    /// [`DistError::Control`] / [`DistError::Protocol`] when one speaks
    /// the wrong protocol.
    pub fn connect(hosts: &[String], timeout: Duration) -> Result<RemoteCluster, DistError> {
        let deadline = Instant::now() + timeout;
        let mut links = Vec::with_capacity(hosts.len());
        for host in hosts {
            let mut stream = dial_until(host, deadline)?;
            stream
                .set_nodelay(true)
                .map_err(|e| DistError::Io(e.to_string()))?;
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (kind, payload) = proto::read_frame_deadline(
                &mut stream,
                DEFAULT_FRAME_LIMIT,
                Some(remaining.max(Duration::from_millis(1))),
                &format!("the Ready announcement from worker {host}"),
            )?;
            if kind != FrameKind::Ready {
                return Err(DistError::Protocol(format!(
                    "worker {host} opened with {kind:?}, expected Ready"
                )));
            }
            let data_addr = proto::decode_ready(&payload)?;
            links.push(WorkerLink {
                host: host.clone(),
                stream,
                data_addr,
            });
        }
        Ok(RemoteCluster {
            links,
            frame_limit: DEFAULT_FRAME_LIMIT,
            reply_timeout: None,
        })
    }

    /// The number of connected workers (the mesh width queries must
    /// match).
    pub fn workers(&self) -> usize {
        self.links.len()
    }

    /// Plans `query` exactly as the local engine would, ships one
    /// fragment per rank, and collects the streamed results
    /// rank-ascending. `cluster.workers` must equal
    /// [`RemoteCluster::workers`]; plan decisions (join order, shares,
    /// probe threads, seeds) all come from `cluster`/`opts` just like
    /// `run_config`.
    ///
    /// # Errors
    /// [`DistError::Engine`] when planning fails,
    /// [`DistError::Worker`] when a rank refuses or fails its fragment,
    /// [`DistError::Control`] / [`DistError::Timeout`] when a rank
    /// disappears or stalls mid-collection.
    pub fn run(
        &mut self,
        query: &ConjunctiveQuery,
        db: &Database,
        cluster: &Cluster,
        shuffle_alg: ShuffleAlg,
        join_alg: JoinAlg,
        opts: &PlanOptions,
    ) -> Result<RemoteRun, DistError> {
        if cluster.workers != self.links.len() {
            return Err(DistError::Protocol(format!(
                "cluster of {} workers over a mesh of {} worker processes",
                cluster.workers,
                self.links.len()
            )));
        }
        let data_addrs: Vec<String> = self.links.iter().map(|l| l.data_addr.clone()).collect();
        let frags = plan_fragments(query, db, cluster, shuffle_alg, join_alg, opts, &data_addrs)?;
        for (link, frag) in self.links.iter_mut().zip(&frags) {
            control::write_frame(&mut link.stream, FrameKind::Fragment, &frag.encode())?;
        }

        let head_arity = query.output_vars().len();
        let mut output = Relation::new(head_arity);
        let mut workers = Vec::with_capacity(self.links.len());
        for (rank, link) in self.links.iter_mut().enumerate() {
            loop {
                let (kind, payload) = proto::read_frame_deadline(
                    &mut link.stream,
                    self.frame_limit,
                    self.reply_timeout,
                    &format!("result frames from rank {rank} ({})", link.host),
                )?;
                match kind {
                    FrameKind::OutputBatch => {
                        decode_batch_into(&payload, &mut output).map_err(|e| {
                            DistError::Protocol(format!("rank {rank} sent a bad batch: {e}"))
                        })?;
                    }
                    FrameKind::OutputDone => {
                        workers.push(proto::decode_done(rank, &payload)?);
                        break;
                    }
                    FrameKind::Error => {
                        return Err(DistError::Worker {
                            rank,
                            message: proto::decode_error(&payload)?,
                        })
                    }
                    other => {
                        return Err(DistError::Protocol(format!(
                            "rank {rank} sent {other:?} while results were expected"
                        )))
                    }
                }
            }
        }
        let output_tuples = workers.iter().map(|w| w.output_tuples).sum();
        let output = if opts.distinct_output {
            output.distinct()
        } else {
            output
        };
        Ok(RemoteRun {
            output,
            output_tuples,
            workers,
        })
    }

    /// Sends `Shutdown` to every worker and drops the connections;
    /// workers exit their serve loop cleanly.
    ///
    /// # Errors
    /// [`DistError::Control`] when a goodbye cannot be delivered (the
    /// worker is likely already gone).
    pub fn shutdown(mut self) -> Result<(), DistError> {
        for link in &mut self.links {
            control::write_frame(&mut link.stream, FrameKind::Shutdown, &[])?;
        }
        Ok(())
    }
}
