//! Payload codecs and deadline-aware frame I/O for the PJCP control
//! conversation between coordinator and workers.
//!
//! The conversation per worker, over one TCP control connection:
//!
//! ```text
//! worker  -> Ready { data_addr }                       (on accept)
//! coord   -> Fragment { Fragment bytes }               (per query)
//! worker  -> OutputBatch { batch bytes } *             (streamed)
//! worker  -> OutputDone { WorkerStats }                (per query)
//! worker  -> Error { message }                         (instead, on failure)
//! coord   -> Shutdown                                  (end of session)
//! ```
//!
//! Frame framing, magic, and versioning live in
//! [`parjoin_common::wire::control`]; this module adds the payload
//! shapes and a [`read_frame_deadline`] that converts a socket read
//! timeout into a typed [`DistError::Timeout`] instead of an opaque
//! I/O string — the control plane's no-hangs guarantee rests on it.

use crate::error::DistError;
use parjoin_common::wire::control::{self, ControlError, FrameKind, PayloadReader};
use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Per-worker tallies reported in an `OutputDone` frame, used for
/// cross-process metric reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// The reporting worker's rank.
    pub rank: usize,
    /// Output tuples this rank produced (pre-distinct).
    pub output_tuples: u64,
    /// Tuples this rank placed on the data mesh.
    pub tuples_sent: u64,
    /// Exchange rounds this rank ran.
    pub rounds: u32,
    /// Data-plane payload bytes sent by this rank (this query only).
    pub tx_bytes: u64,
    /// Data-plane payload bytes received by this rank (this query only).
    pub rx_bytes: u64,
    /// Data-plane batches sent by this rank (this query only).
    pub tx_batches: u64,
    /// Data-plane batches received by this rank (this query only).
    pub rx_batches: u64,
}

/// Encodes a `Ready` payload.
pub fn encode_ready(data_addr: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    control::put_str(&mut buf, data_addr);
    buf
}

/// Decodes a `Ready` payload into the worker's data-plane address.
///
/// # Errors
/// [`ControlError`] on a truncated or trailing-garbage payload.
pub fn decode_ready(payload: &[u8]) -> Result<String, ControlError> {
    let mut r = PayloadReader::new(payload);
    let addr = r.str()?;
    r.done()?;
    Ok(addr)
}

/// Encodes an `Error` payload.
pub fn encode_error(message: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    control::put_str(&mut buf, message);
    buf
}

/// Decodes an `Error` payload into the worker's message.
///
/// # Errors
/// [`ControlError`] on a truncated or trailing-garbage payload.
pub fn decode_error(payload: &[u8]) -> Result<String, ControlError> {
    let mut r = PayloadReader::new(payload);
    let message = r.str()?;
    r.done()?;
    Ok(message)
}

/// Encodes an `OutputDone` payload (the rank rides in the connection,
/// not the frame).
pub fn encode_done(stats: &WorkerStats) -> Vec<u8> {
    let mut buf = Vec::new();
    control::put_u64(&mut buf, stats.output_tuples);
    control::put_u64(&mut buf, stats.tuples_sent);
    control::put_u32(&mut buf, stats.rounds);
    control::put_u64(&mut buf, stats.tx_bytes);
    control::put_u64(&mut buf, stats.rx_bytes);
    control::put_u64(&mut buf, stats.tx_batches);
    control::put_u64(&mut buf, stats.rx_batches);
    buf
}

/// Decodes an `OutputDone` payload, stamping it with the rank the
/// coordinator was collecting from.
///
/// # Errors
/// [`ControlError`] on a truncated or trailing-garbage payload.
pub fn decode_done(rank: usize, payload: &[u8]) -> Result<WorkerStats, ControlError> {
    let mut r = PayloadReader::new(payload);
    let stats = WorkerStats {
        rank,
        output_tuples: r.u64()?,
        tuples_sent: r.u64()?,
        rounds: r.u32()?,
        tx_bytes: r.u64()?,
        rx_bytes: r.u64()?,
        tx_batches: r.u64()?,
        rx_batches: r.u64()?,
    };
    r.done()?;
    Ok(stats)
}

/// A [`Read`] adapter that remembers whether the underlying socket read
/// expired, so callers can tell a deadline from a dead peer.
struct DeadlineRead<'a> {
    inner: &'a mut TcpStream,
    expired: bool,
}

impl Read for DeadlineRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.inner.read(buf) {
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                self.expired = true;
                Err(e)
            }
            other => other,
        }
    }
}

/// Reads one control frame, giving up after `timeout` (when set) with a
/// typed [`DistError::Timeout`] naming `what`. A peer that closes the
/// connection instead surfaces immediately as
/// [`DistError::Control`]\([`ControlError::Truncated`]).
///
/// # Errors
/// [`DistError::Io`] when the socket refuses the deadline,
/// [`DistError::Timeout`] on expiry, [`DistError::Control`] on any
/// other frame failure.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    limit: u32,
    timeout: Option<Duration>,
    what: &str,
) -> Result<(FrameKind, Vec<u8>), DistError> {
    stream
        .set_read_timeout(timeout)
        .map_err(|e| DistError::Io(format!("set_read_timeout: {e}")))?;
    let start = Instant::now();
    let mut guarded = DeadlineRead {
        inner: stream,
        expired: false,
    };
    match control::read_frame(&mut guarded, limit) {
        Ok(frame) => Ok(frame),
        Err(_) if guarded.expired => Err(DistError::Timeout {
            what: what.to_string(),
            waited: start.elapsed(),
        }),
        Err(e) => Err(DistError::Control(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_payload_roundtrips() {
        let stats = WorkerStats {
            rank: 3,
            output_tuples: 42,
            tuples_sent: 7,
            rounds: 2,
            tx_bytes: 1000,
            rx_bytes: 900,
            tx_batches: 5,
            rx_batches: 4,
        };
        let back = decode_done(3, &encode_done(&stats)).unwrap();
        assert_eq!(stats, back);
    }

    #[test]
    fn ready_and_error_payloads_roundtrip() {
        assert_eq!(
            decode_ready(&encode_ready("10.0.0.7:4001")).unwrap(),
            "10.0.0.7:4001"
        );
        assert_eq!(decode_error(&encode_error("boom")).unwrap(), "boom");
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut p = encode_ready("x:1");
        p.push(0);
        assert!(decode_ready(&p).is_err());
    }
}
