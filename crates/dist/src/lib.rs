//! Distributed execution of parallel join plans: a coordinator that
//! plans queries and ships per-rank [`parjoin_engine::Fragment`]s over
//! the PJCP control protocol, and workers that join the TCP data mesh,
//! execute their fragment, and stream results back.
//!
//! The crate deliberately contains no planning or join logic of its
//! own — the coordinator calls [`parjoin_engine::plan_fragments`] and
//! workers call [`parjoin_engine::remote::execute_fragment`], so a
//! multi-process run routes and joins with literally the same code as
//! `Transport::Local`, making byte-identical output a construction
//! property rather than a hope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod proto;
pub mod worker;

pub use coordinator::{RemoteCluster, RemoteRun};
pub use error::DistError;
pub use proto::WorkerStats;
pub use worker::WorkerServer;
