//! The worker side of the control plane: accept one coordinator,
//! announce the data-plane listener, execute shipped fragments, stream
//! results back.

use crate::error::DistError;
use crate::proto::{self, WorkerStats};
use parjoin_common::wire::control::{self, FrameKind, DEFAULT_FRAME_LIMIT};
use parjoin_common::wire::encode_batch;
use parjoin_engine::remote::execute_fragment;
use parjoin_engine::Fragment;
use parjoin_runtime::{HandshakeConfig, HostMesh};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// A worker process's control server: one control listener (for the
/// coordinator) plus one data-plane mesh listener (for peer workers),
/// bound together so `Ready` can advertise the data address the moment
/// a coordinator connects.
pub struct WorkerServer {
    control: TcpListener,
    mesh: HostMesh,
    /// Deadline for each control frame once a coordinator is connected;
    /// `None` waits indefinitely between queries (the CLI default — an
    /// idle worker is not an error). A closed connection surfaces
    /// immediately regardless.
    pub idle_timeout: Option<Duration>,
    /// Per-frame size ceiling on the control connection.
    pub frame_limit: u32,
}

impl WorkerServer {
    /// Binds the control listener on `control_addr` and the data-plane
    /// mesh listener on the same interface (ephemeral port).
    ///
    /// # Errors
    /// [`DistError::Io`] when either bind fails.
    pub fn bind(control_addr: &str) -> Result<WorkerServer, DistError> {
        let control = TcpListener::bind(control_addr)
            .map_err(|e| DistError::Io(format!("bind control {control_addr}: {e}")))?;
        let ip = control
            .local_addr()
            .map_err(|e| DistError::Io(format!("control local_addr: {e}")))?
            .ip();
        let mesh = HostMesh::bind(&format!("{ip}:0")).map_err(|e| DistError::Io(e.to_string()))?;
        Ok(WorkerServer {
            control,
            mesh,
            idle_timeout: None,
            frame_limit: DEFAULT_FRAME_LIMIT,
        })
    }

    /// The control address the coordinator should dial.
    ///
    /// # Errors
    /// [`DistError::Io`] when the socket cannot report its address.
    pub fn control_addr(&self) -> Result<SocketAddr, DistError> {
        self.control
            .local_addr()
            .map_err(|e| DistError::Io(e.to_string()))
    }

    /// The data-plane address peers will dial (also what `Ready`
    /// advertises).
    ///
    /// # Errors
    /// [`DistError::Io`] when the socket cannot report its address.
    pub fn data_addr(&self) -> Result<SocketAddr, DistError> {
        self.mesh
            .local_addr()
            .map_err(|e| DistError::Io(e.to_string()))
    }

    /// Mesh-formation policy (dial retries, hello deadline) for the
    /// data plane.
    pub fn handshake_mut(&mut self) -> &mut HandshakeConfig {
        &mut self.mesh.handshake
    }

    /// Receive deadline for established data-plane streams.
    pub fn set_mesh_recv_timeout(&mut self, t: Duration) {
        self.mesh.recv_timeout = t;
    }

    /// Serves exactly one coordinator session: accept, announce
    /// `Ready`, execute fragments until `Shutdown` (clean return) or a
    /// terminal failure.
    ///
    /// Recoverable per-fragment failures — an undecodable fragment, a
    /// failed pre-flight, a bad address book — are reported to the
    /// coordinator in an `Error` frame and the worker keeps serving
    /// (the mesh was never touched). A failure *during* execution also
    /// sends `Error`, but then tears the session down: mid-query mesh
    /// state cannot be trusted for the next round.
    ///
    /// # Errors
    /// [`DistError::Control`] when the coordinator vanishes
    /// mid-session, [`DistError::Timeout`] when `idle_timeout` expires,
    /// [`DistError::Engine`] after an execution failure.
    pub fn serve(mut self) -> Result<(), DistError> {
        let (mut stream, _peer) = self
            .control
            .accept()
            .map_err(|e| DistError::Io(format!("accept coordinator: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| DistError::Io(e.to_string()))?;
        let data_addr = self.data_addr()?.to_string();
        control::write_frame(
            &mut stream,
            FrameKind::Ready,
            &proto::encode_ready(&data_addr),
        )?;
        loop {
            let (kind, payload) = proto::read_frame_deadline(
                &mut stream,
                self.frame_limit,
                self.idle_timeout,
                "the next control frame from the coordinator",
            )?;
            match kind {
                FrameKind::Fragment => self.run_fragment(&mut stream, &payload)?,
                FrameKind::Shutdown => return Ok(()),
                other => {
                    return Err(DistError::Protocol(format!(
                        "coordinator sent {other:?}; workers accept Fragment and Shutdown"
                    )))
                }
            }
        }
    }

    /// Reports a recoverable fragment failure and keeps the session
    /// alive.
    fn refuse(stream: &mut TcpStream, message: String) -> Result<(), DistError> {
        control::write_frame(stream, FrameKind::Error, &proto::encode_error(&message))?;
        Ok(())
    }

    fn run_fragment(&mut self, stream: &mut TcpStream, payload: &[u8]) -> Result<(), DistError> {
        let frag = match Fragment::decode(payload) {
            Ok(f) => f,
            Err(e) => return Self::refuse(stream, format!("fragment rejected: {e}")),
        };
        if let Err(e) = frag.preflight() {
            return Self::refuse(stream, format!("fragment failed pre-flight: {e}"));
        }
        let mut peers = Vec::with_capacity(frag.data_addrs.len());
        for a in &frag.data_addrs {
            match a.parse::<SocketAddr>() {
                Ok(addr) => peers.push(addr),
                Err(e) => return Self::refuse(stream, format!("bad data address {a}: {e}")),
            }
        }
        if let Err(e) = self.mesh.join(frag.rank as usize, peers) {
            return Self::refuse(stream, format!("mesh join refused: {e}"));
        }

        // The mesh counters accumulate across queries; report this
        // query's contribution as deltas.
        let tx_bytes0 = self.mesh.obs.tx_bytes.get();
        let rx_bytes0 = self.mesh.obs.rx_bytes.get();
        let tx_batches0 = self.mesh.obs.tx_batches.get();
        let rx_batches0 = self.mesh.obs.rx_batches.get();
        let outcome = match execute_fragment(&frag, &self.mesh) {
            Ok(o) => o,
            Err(e) => {
                // Report before tearing down so the coordinator gets a
                // typed Worker error, not a surprise EOF.
                let msg = format!("fragment execution failed: {e}");
                control::write_frame(stream, FrameKind::Error, &proto::encode_error(&msg))?;
                return Err(DistError::Engine(e.to_string()));
            }
        };

        let arity = outcome.output.arity();
        if arity == 0 {
            if !outcome.output.is_empty() {
                let mut body = Vec::new();
                encode_batch(0, outcome.output.len(), &[], &mut body);
                control::write_frame(stream, FrameKind::OutputBatch, &body)?;
            }
        } else {
            let per_batch = (frag.batch_tuples as usize).max(1) * arity;
            for chunk in outcome.output.raw().chunks(per_batch) {
                let mut body = Vec::new();
                encode_batch(arity, chunk.len() / arity, chunk, &mut body);
                control::write_frame(stream, FrameKind::OutputBatch, &body)?;
            }
        }
        let stats = WorkerStats {
            rank: frag.rank as usize,
            output_tuples: outcome.output.len() as u64,
            tuples_sent: outcome.tuples_sent,
            rounds: outcome.rounds,
            tx_bytes: self.mesh.obs.tx_bytes.get() - tx_bytes0,
            rx_bytes: self.mesh.obs.rx_bytes.get() - rx_bytes0,
            tx_batches: self.mesh.obs.tx_batches.get() - tx_batches0,
            rx_batches: self.mesh.obs.rx_batches.get() - rx_batches0,
        };
        control::write_frame(stream, FrameKind::OutputDone, &proto::encode_done(&stats))?;
        Ok(())
    }
}
