//! Typed failures of the distributed control plane.

use parjoin_common::wire::control::ControlError;
use parjoin_engine::EngineError;
use std::fmt;
use std::time::Duration;

/// Failures raised by the coordinator/worker control plane.
///
/// Every fault the mesh can inject — a worker that never comes up, a
/// peer that dies mid-handshake, a coordinator that disappears
/// mid-stream — surfaces as one of these variants within its configured
/// deadline; the control plane never hangs on a silent socket.
#[derive(Debug)]
pub enum DistError {
    /// A socket-level failure on a control connection.
    Io(String),
    /// A malformed, truncated, or version-incompatible control frame.
    Control(ControlError),
    /// Local plan or execution failure (planning on the coordinator,
    /// fragment execution on a worker).
    Engine(String),
    /// A worker reported failure through an `Error` control frame.
    Worker {
        /// The reporting worker's rank.
        rank: usize,
        /// The worker's error message (the display form of its typed
        /// engine/runtime error).
        message: String,
    },
    /// A blocking control-plane step exceeded its deadline.
    Timeout {
        /// What the control plane was waiting for.
        what: String,
        /// How long it waited before giving up.
        waited: Duration,
    },
    /// The peer spoke PJCP but violated the request/response protocol
    /// (unexpected frame kind, mismatched mesh width, …).
    Protocol(String),
    /// Cross-process metric reconciliation failed: the per-worker
    /// tallies do not balance (e.g. bytes sent ≠ bytes received).
    Reconcile(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(m) => write!(f, "control I/O error: {m}"),
            DistError::Control(e) => write!(f, "control frame error: {e}"),
            DistError::Engine(m) => write!(f, "engine error: {m}"),
            DistError::Worker { rank, message } => {
                write!(f, "worker {rank} reported failure: {message}")
            }
            DistError::Timeout { what, waited } => {
                write!(f, "timed out after {waited:?} waiting for {what}")
            }
            DistError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DistError::Reconcile(m) => write!(f, "metric reconciliation failed: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ControlError> for DistError {
    fn from(e: ControlError) -> Self {
        DistError::Control(e)
    }
}

impl From<EngineError> for DistError {
    fn from(e: EngineError) -> Self {
        DistError::Engine(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_party() {
        let msg = DistError::Worker {
            rank: 2,
            message: "mesh handshake timed out".to_string(),
        }
        .to_string();
        assert!(msg.contains("worker 2"), "{msg}");
        assert!(msg.contains("handshake"), "{msg}");

        let msg = DistError::Timeout {
            what: "Ready from 127.0.0.1:9999".to_string(),
            waited: Duration::from_millis(250),
        }
        .to_string();
        assert!(msg.contains("127.0.0.1:9999"), "{msg}");
        assert!(msg.contains("250ms"), "{msg}");
    }
}
