//! The counter registry: named `u64` tallies shared across threads.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A shared monotonic counter. Cloning is cheap (one `Arc` bump) and all
/// clones observe the same value, so a counter can be registered once
/// and handed to worker threads, reader threads, and senders alike.
///
/// A default-constructed counter is *detached*: it counts, but no
/// registry will ever report it. Detached counters are how callers that
/// did not opt into observability pay only the relaxed atomic add.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh detached counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`. Relaxed ordering: tallies are read only after the
    /// threads doing the counting have been joined.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A per-run registry of named counters.
///
/// `counter(name)` is get-or-register: the first call allocates the
/// slot (under a mutex — done once per name per run, off the hot path),
/// later calls and clones share the same atomic. [`Registry::snapshot`]
/// returns every `(name, value)` pair in name order.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Counter>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use. The returned handle stays live (and keeps counting
    /// into this registry) for as long as the caller holds it.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.entry(name.to_string()).or_default().clone()
    }

    /// The current value of `name`, or `None` if never registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.get(name).map(Counter::get)
    }

    /// Adds `n` to `name`, registering it on first use. Convenience for
    /// one-shot tallies off the hot path; hot paths should hold a
    /// [`Counter`] handle instead.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Every `(name, value)` pair, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_value() {
        let c = Counter::new();
        let d = c.clone();
        c.add(3);
        d.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(d.get(), 4);
    }

    #[test]
    fn registry_get_or_register() {
        let r = Registry::new();
        assert_eq!(r.get("a"), None);
        let a = r.counter("a");
        a.add(2);
        // Same slot on re-registration.
        r.counter("a").add(5);
        assert_eq!(r.get("a"), Some(7));
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.add("z.last", 1);
        r.add("a.first", 2);
        r.add("m.mid", 3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
        assert_eq!(snap[0].1, 2);
    }

    #[test]
    fn counters_survive_across_threads() {
        let r = Registry::new();
        let c = r.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.get("hits"), Some(4000));
    }
}
