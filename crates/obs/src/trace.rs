//! Hierarchical phase spans and the chrome://tracing exporter.
//!
//! A [`TraceSink`] collects completed [`SpanEvent`]s for one run. Each
//! worker (or the coordinator) opens a [`Lane`] — a lightweight handle
//! carrying the worker id and a span-stack depth — and times phases with
//! RAII [`Span`] guards: the span records itself into the sink when
//! dropped. Nesting is tracked per lane, so a worker's `prepare` span
//! opened inside its `local-join` span exports as a properly nested
//! slice in chrome://tracing.
//!
//! Export follows the Trace Event Format's complete events (`"ph":"X"`,
//! timestamps in microseconds): one chrome *thread* per lane, named via
//! `thread_name` metadata events, everything under one `parjoin`
//! process. Open the file at `chrome://tracing` or <https://ui.perfetto.dev>.

use std::borrow::Cow;
use std::cell::Cell;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The lane id used for coordinator-side (cross-worker) spans, exported
/// as its own chrome thread named `coordinator`.
pub const COORDINATOR_LANE: u32 = u32::MAX;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name, e.g. `"shuffle"`, `"prepare"`, `"probe"`.
    pub name: Cow<'static, str>,
    /// Category (chrome's `cat` field), e.g. `"engine"` or `"runtime"`.
    pub cat: &'static str,
    /// The lane (worker id, or [`COORDINATOR_LANE`]).
    pub lane: u32,
    /// Start offset from the sink's origin, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth within the lane when the span opened (0 = top).
    pub depth: u16,
}

/// A per-run collector of span events.
pub struct TraceSink {
    enabled: bool,
    origin: Instant,
    events: Mutex<Vec<SpanEvent>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.enabled)
            .field("events", &self.events().len())
            .finish()
    }
}

impl TraceSink {
    /// A sink that records spans.
    pub fn enabled() -> Arc<TraceSink> {
        Arc::new(TraceSink {
            enabled: true,
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        })
    }

    /// A sink that drops everything: [`Lane::span`] returns an inert
    /// guard without reading the clock.
    pub fn disabled() -> Arc<TraceSink> {
        Arc::new(TraceSink {
            enabled: false,
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Whether this sink records spans.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a lane for the given worker id (or [`COORDINATOR_LANE`]).
    /// Lanes are cheap; each thread timing spans should hold its own —
    /// the nesting depth is tracked per lane handle, not shared.
    pub fn lane(self: &Arc<Self>, lane: u32) -> Lane {
        Lane {
            sink: Arc::clone(self),
            lane,
            depth: Cell::new(0),
        }
    }

    /// A copy of every recorded event, in completion order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn push(&self, ev: SpanEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ev);
    }

    fn offset_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Serializes every event as a chrome://tracing JSON array (complete
    /// `"ph":"X"` events in microseconds, plus `thread_name` metadata
    /// naming each lane `worker N` — or `coordinator`).
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let events = self.events();
        let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();

        writeln!(w, "[")?;
        writeln!(
            w,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"parjoin\"}}}},"
        )?;
        for &lane in &lanes {
            let (name, sort) = if lane == COORDINATOR_LANE {
                ("coordinator".to_string(), 1_000_000u64)
            } else {
                (format!("worker {lane}"), u64::from(lane))
            };
            writeln!(
                w,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}},"
            )?;
            writeln!(
                w,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{sort}}}}},"
            )?;
        }
        for (i, ev) in events.iter().enumerate() {
            let comma = if i + 1 == events.len() { "" } else { "," };
            writeln!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{}}}{comma}",
                escape(&ev.name),
                escape(ev.cat),
                ev.start_ns as f64 / 1000.0,
                ev.dur_ns as f64 / 1000.0,
                ev.lane,
            )?;
        }
        writeln!(w, "]")
    }

    /// [`TraceSink::write_chrome_trace`] into a `String`.
    pub fn chrome_trace_json(&self) -> String {
        let mut buf = Vec::new();
        // Writing into a Vec cannot fail.
        let _ = self.write_chrome_trace(&mut buf);
        String::from_utf8_lossy(&buf).into_owned()
    }
}

/// Minimal JSON string escaping for span names and categories.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One worker's (or the coordinator's) span stack. Holds the sink, the
/// lane id, and the current nesting depth; not `Sync` — each thread
/// opens its own lane.
pub struct Lane {
    sink: Arc<TraceSink>,
    lane: u32,
    depth: Cell<u16>,
}

impl Lane {
    /// This lane's id.
    pub fn id(&self) -> u32 {
        self.lane
    }

    /// Opens a RAII span: the guard records `[open, drop)` into the
    /// sink when dropped. On a disabled sink this is inert and does not
    /// read the clock.
    #[must_use = "a span guard measures until dropped; binding it to _ ends it immediately"]
    pub fn span(&self, name: impl Into<Cow<'static, str>>, cat: &'static str) -> Span<'_> {
        if !self.sink.enabled {
            return Span { open: None };
        }
        let depth = self.depth.get();
        self.depth.set(depth.saturating_add(1));
        Span {
            open: Some(OpenSpan {
                lane: self,
                name: name.into(),
                cat,
                depth,
                start: Instant::now(),
            }),
        }
    }

    /// Records an already-measured interval as a child span — for phases
    /// whose duration is reported by a callee (e.g. a merge join that
    /// returns its internal sort time) rather than timed in place.
    pub fn record(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        start: Instant,
        dur: Duration,
    ) {
        if !self.sink.enabled {
            return;
        }
        self.sink.push(SpanEvent {
            name: name.into(),
            cat,
            lane: self.lane,
            start_ns: self.sink.offset_ns(start),
            dur_ns: dur.as_nanos() as u64,
            depth: self.depth.get(),
        });
    }
}

struct OpenSpan<'a> {
    lane: &'a Lane,
    name: Cow<'static, str>,
    cat: &'static str,
    depth: u16,
    start: Instant,
}

/// RAII guard returned by [`Lane::span`].
pub struct Span<'a> {
    open: Option<OpenSpan<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur = open.start.elapsed();
        open.lane.depth.set(open.depth);
        open.lane.sink.push(SpanEvent {
            name: open.name.clone(),
            cat: open.cat,
            lane: open.lane.lane,
            start_ns: open.lane.sink.offset_ns(open.start),
            dur_ns: dur.as_nanos() as u64,
            depth: open.depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_nesting() {
        let sink = TraceSink::enabled();
        let lane = sink.lane(3);
        {
            let _outer = lane.span("outer", "t");
            {
                let _inner = lane.span("inner", "t");
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        assert!(events.iter().all(|e| e.lane == 3));
        // Inner starts no earlier than outer and ends no later.
        assert!(events[0].start_ns >= events[1].start_ns);
        assert!(
            events[0].start_ns + events[0].dur_ns <= events[1].start_ns + events[1].dur_ns + 1_000
        );
    }

    #[test]
    fn depth_resets_after_drop() {
        let sink = TraceSink::enabled();
        let lane = sink.lane(0);
        drop(lane.span("a", "t"));
        drop(lane.span("b", "t"));
        let events = sink.events();
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].depth, 0);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        let lane = sink.lane(0);
        drop(lane.span("a", "t"));
        lane.record("b", "t", Instant::now(), Duration::from_millis(1));
        assert!(sink.events().is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn record_registers_synthesized_child() {
        let sink = TraceSink::enabled();
        let lane = sink.lane(1);
        let t0 = Instant::now();
        let _outer = lane.span("outer", "t");
        lane.record("sort", "t", t0, Duration::from_micros(250));
        drop(_outer);
        let events = sink.events();
        assert_eq!(events[0].name, "sort");
        assert_eq!(events[0].dur_ns, 250_000);
        assert_eq!(events[0].depth, 1, "recorded span is a child");
    }

    #[test]
    fn chrome_export_is_valid_and_microseconds() {
        let sink = TraceSink::enabled();
        let lane = sink.lane(0);
        let coord = sink.lane(COORDINATOR_LANE);
        drop(lane.span("probe", "engine"));
        coord.record(
            "shuffle",
            "engine",
            Instant::now(),
            Duration::from_micros(5),
        );
        let text = sink.chrome_trace_json();
        let summary = crate::json::summarize_chrome_trace(&text).expect("valid trace json");
        assert_eq!(summary.count("probe", 0), 1);
        assert_eq!(summary.count("shuffle", u64::from(COORDINATOR_LANE)), 1);
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("coordinator"));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
