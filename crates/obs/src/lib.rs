#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-obs
//!
//! The observability layer behind the engine's per-phase breakdown
//! (paper §3, Tables 4–5): a lock-cheap counter [`Registry`],
//! hierarchical phase spans ([`TraceSink`] / [`Lane`] / [`Span`]), and a
//! chrome://tracing-compatible JSON exporter plus a dependency-free
//! validator ([`json`]) for it.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-allocation hot path.** A [`Counter`] is one `Arc<AtomicU64>`
//!    — registration (the only allocating step) happens once per run,
//!    and every subsequent `add` is a single relaxed atomic. Spans are
//!    opened *per phase per worker*, never per tuple or per morsel.
//! 2. **Near-nothing when disabled.** A disabled [`TraceSink`] makes
//!    [`Lane::span`] return an inert guard without even reading the
//!    clock; detached counters still count but feed no registry.
//! 3. **Per-run, not per-process.** Tests run many plans concurrently in
//!    one process; a global registry would interleave their tallies and
//!    break exact reconciliation against `RunResult`'s legacy counters.
//!    Every run owns its own [`Registry`] and [`TraceSink`].

mod registry;
mod trace;

pub mod json;

pub use registry::{Counter, Registry};
pub use trace::{Lane, Span, SpanEvent, TraceSink, COORDINATOR_LANE};
