//! A dependency-free JSON parser and chrome-trace validator.
//!
//! The build environment is fully offline (no serde), but the CI smoke
//! and the trace tests must prove that an emitted trace *parses* and
//! contains the expected spans — so this module implements the small
//! recursive-descent parser that check needs. It accepts strict JSON
//! (no comments, no trailing commas) and is meant for validation, not
//! for ingesting untrusted multi-gigabyte documents.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
/// A human-readable message naming the byte offset of the first error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{s}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Per-span tallies extracted from a chrome trace.
#[derive(Debug, Default, Clone)]
pub struct TraceSummary {
    /// `(span name, tid)` → number of complete (`"ph":"X"`) events.
    pub span_counts: BTreeMap<(String, u64), u64>,
}

impl TraceSummary {
    /// Complete events named `name` on chrome thread `tid`.
    pub fn count(&self, name: &str, tid: u64) -> u64 {
        self.span_counts
            .get(&(name.to_string(), tid))
            .copied()
            .unwrap_or(0)
    }

    /// Every tid that carries at least one span named `name`.
    pub fn lanes_with(&self, name: &str) -> BTreeSet<u64> {
        self.span_counts
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, tid), _)| *tid)
            .collect()
    }

    /// Total complete events.
    pub fn total(&self) -> u64 {
        self.span_counts.values().sum()
    }
}

/// Parses `text` as a chrome trace (a JSON array of event objects) and
/// tallies its complete events by `(name, tid)`.
///
/// # Errors
/// Parse failures, a non-array top level, or events missing `name`/`tid`.
pub fn summarize_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text)?;
    let Json::Arr(events) = doc else {
        return Err("chrome trace must be a JSON array of events".into());
    };
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no `ph`"))?;
        if ph != "X" {
            continue; // metadata and other phases are not spans
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no `name`"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} has no numeric `tid`"))? as u64;
        for field in ["ts", "dur"] {
            ev.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i} has no numeric `{field}`"))?;
        }
        *summary
            .span_counts
            .entry((name.to_string(), tid))
            .or_insert(0) += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let arr = parse("[1, [2], {\"k\": 3}]").unwrap();
        let Json::Arr(items) = arr else { panic!() };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("k"), Some(&Json::Num(3.0)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_round_trips() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn summarize_counts_complete_events_only() {
        let text = r#"[
            {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"worker 0"}},
            {"name":"probe","cat":"engine","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":0},
            {"name":"probe","cat":"engine","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":0},
            {"name":"probe","cat":"engine","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":1}
        ]"#;
        let s = summarize_chrome_trace(text).unwrap();
        assert_eq!(s.count("probe", 0), 2);
        assert_eq!(s.count("probe", 1), 1);
        assert_eq!(s.lanes_with("probe").len(), 2);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn summarize_rejects_span_without_timing() {
        let text = r#"[{"name":"x","ph":"X","tid":0}]"#;
        assert!(summarize_chrome_trace(text).is_err());
    }
}
