//! Power-law directed graphs via preferential attachment.
//!
//! The paper's Q1/Q2/Q5/Q6 run on a Twitter follower crawl whose degree
//! distribution is power-law ("the degrees of twitter nodes follows a
//! Power-Law distribution \[12\]"). We substitute a Barabási–Albert-style
//! preferential-attachment digraph: each new node attaches `m` edges to
//! targets drawn proportionally to current degree, with random edge
//! orientation. This preserves the two properties the experiments hinge
//! on: heavy-tailed degrees (⇒ hash-partition skew) and abundant
//! triangles/cliques with intermediate-result blow-up.

use parjoin_common::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a preferential-attachment digraph with `nodes` nodes and
/// roughly `nodes × m` distinct directed edges (self-loops removed,
/// duplicates collapsed).
///
/// # Panics
/// Panics if `nodes < 3` or `m == 0`.
pub fn preferential_attachment(nodes: u64, m: usize, seed: u64) -> Relation {
    assert!(nodes >= 3, "need at least 3 nodes");
    assert!(m >= 1, "need at least one edge per node");
    let mut rng = StdRng::seed_from_u64(seed);
    // Degree-proportional target pool: node id appears once per incident
    // edge endpoint.
    let mut pool: Vec<u64> = Vec::with_capacity(nodes as usize * m * 2);
    let mut rel = Relation::with_capacity(2, nodes as usize * m + 3);

    // Seed triangle so the pool is non-empty and triangles exist from the
    // start.
    for (a, b) in [(0u64, 1u64), (1, 2), (2, 0)] {
        rel.push_row(&[a, b]);
        pool.push(a);
        pool.push(b);
    }

    for v in 3..nodes {
        for _ in 0..m {
            let t = pool[rng.gen_range(0..pool.len())];
            if t == v {
                continue;
            }
            // Random orientation: follower edges point both ways in a real
            // social graph.
            let (a, b) = if rng.gen_bool(0.5) { (v, t) } else { (t, v) };
            rel.push_row(&[a, b]);
            pool.push(a);
            pool.push(b);
        }
    }
    rel.distinct()
}

/// Adds a celebrity layer on top of a base graph: a handful of nodes
/// that a sizable fraction of all edges point at (and a smaller fraction
/// emanate from), like verified accounts in the real follower graph.
///
/// Pure preferential attachment caps hub degrees around `m·√n`, far
/// tamer than the crawl the paper used; without celebrities the
/// regular shuffle's skew (consumer 1.35–1.72, intermediate producer
/// 20.8 — Table 2) and the intermediate-result blow-up do not
/// materialize at laptop scale. `to_frac` of the edges get their target
/// rewired to a Zipf-chosen celebrity and `from_frac` their source.
pub fn celebrity_overlay(
    base: Relation,
    celebrity_base: u64,
    celebrities: u64,
    to_frac: f64,
    from_frac: f64,
    seed: u64,
) -> Relation {
    assert!(celebrities >= 1, "need at least one celebrity");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    // Celebrity popularity is itself Zipf-ish: rank k drawn ∝ 1/(k+1);
    // celebrity ids start at `celebrity_base` (disjoint from base nodes).
    let pick = |rng: &mut StdRng| -> u64 {
        let u: f64 = rng.gen();
        let h: f64 = (1..=celebrities).map(|k| 1.0 / k as f64).sum();
        let mut acc = 0.0;
        for k in 0..celebrities {
            acc += 1.0 / ((k + 1) as f64 * h);
            if u <= acc {
                return celebrity_base + k;
            }
        }
        celebrity_base + celebrities - 1
    };
    let mut out = Relation::with_capacity(2, base.len());
    for row in base.rows() {
        let (mut a, mut b) = (row[0], row[1]);
        if rng.gen_bool(to_frac) {
            b = pick(&mut rng);
        }
        if rng.gen_bool(from_frac) {
            a = pick(&mut rng);
        }
        if a != b {
            out.push_row(&[a, b]);
        }
    }
    out.distinct()
}

/// The Twitter-like graph used by the workloads: preferential attachment
/// plus a celebrity layer (5 celebrities, 6% of targets, 3% of sources).
///
/// ```
/// let g = parjoin_datagen::graph::twitter_graph(1_000, 4, 7);
/// assert_eq!(g.arity(), 2);
/// assert!(g.len() > 3_000);
/// assert!(parjoin_datagen::graph::degree_skew(&g) > 3.0);
/// ```
pub fn twitter_graph(nodes: u64, m: usize, seed: u64) -> Relation {
    let base = preferential_attachment(nodes, m, seed);
    celebrity_overlay(base, nodes, 5, 0.06, 0.03, seed)
}

/// Maximum out-degree / average out-degree — a quick skew indicator used
/// by tests and experiment printouts.
pub fn degree_skew(edges: &Relation) -> f64 {
    let mut counts = std::collections::HashMap::new();
    for row in edges.rows() {
        *counts.entry(row[0]).or_insert(0u64) += 1;
    }
    if counts.is_empty() {
        return 1.0;
    }
    let max = counts.values().copied().max().unwrap_or(0) as f64;
    let avg = edges.len() as f64 / counts.len() as f64;
    max / avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = preferential_attachment(100, 3, 7);
        let b = preferential_attachment(100, 3, 7);
        assert_eq!(a.raw(), b.raw());
        let c = preferential_attachment(100, 3, 8);
        assert_ne!(a.raw(), c.raw());
    }

    #[test]
    fn edge_count_near_target() {
        let g = preferential_attachment(1000, 4, 1);
        // Duplicates/self-loops remove a few; expect within 15%.
        assert!(g.len() as f64 > 1000.0 * 4.0 * 0.85, "{}", g.len());
        assert!(g.len() <= 1000 * 4 + 3);
    }

    #[test]
    fn no_self_loops_and_distinct() {
        let g = preferential_attachment(500, 3, 2);
        for row in g.rows() {
            assert_ne!(row[0], row[1]);
        }
        assert_eq!(g.len(), g.clone().distinct().len());
    }

    #[test]
    fn degrees_are_skewed() {
        let g = preferential_attachment(5000, 4, 3);
        // Power-law graphs have max degree ≫ average.
        assert!(degree_skew(&g) > 5.0, "skew {}", degree_skew(&g));
    }

    #[test]
    fn celebrity_overlay_concentrates_degree() {
        let base = preferential_attachment(4000, 4, 5);
        let celeb = celebrity_overlay(base.clone(), 4000, 5, 0.06, 0.03, 5);
        // The top celebrity's in-degree must dwarf the average in-degree.
        let indeg = |g: &Relation, v: u64| g.rows().filter(|r| r[1] == v).count();
        let avg = celeb.len() as f64 / 4000.0;
        assert!(
            indeg(&celeb, 4000) as f64 > 20.0 * avg,
            "celebrity indeg {} vs avg {avg}",
            indeg(&celeb, 4000)
        );
        // Overall size stays comparable (rewiring, not adding).
        assert!(celeb.len() <= base.len());
        assert!(celeb.len() > base.len() * 9 / 10);
    }

    #[test]
    fn twitter_graph_deterministic() {
        let a = twitter_graph(500, 3, 2);
        let b = twitter_graph(500, 3, 2);
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn node_ids_in_range() {
        let g = preferential_attachment(200, 2, 4);
        for row in g.rows() {
            assert!(row[0] < 200 && row[1] < 200);
        }
    }
}
