#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-datagen
//!
//! Synthetic stand-ins for the paper's two datasets, plus the eight
//! workload queries of §3 and Appendix A.
//!
//! * [`graph`] — a preferential-attachment directed graph replacing the
//!   Twitter follower crawl (1,114,289 edges in the paper). Preferential
//!   attachment yields the power-law degree distribution the paper cites
//!   (\[12\]) — the property that *drives* the regular shuffle's skew
//!   (Table 2) and the triangle-rich structure behind Q1/Q2/Q5/Q6.
//! * [`freebase`] — a movie/honor schema with the paper's relative
//!   cardinalities and Zipf-skewed fan-outs, replacing the Freebase
//!   triples (Table 1). Selection constants (`"Joe Pesci"`,
//!   `"Robert De Niro"`, `"The Academy Awards"`) are dictionary-encoded
//!   ids exported as constants.
//! * [`workloads`] — Q1–Q8 as [`ConjunctiveQuery`] values (and their
//!   Datalog source strings), tagged with the dataset they run on.
//!
//! Everything is seeded and deterministic.
//!
//! [`ConjunctiveQuery`]: parjoin_query::ConjunctiveQuery

pub mod freebase;
pub mod graph;
pub mod workloads;
pub mod zipf;

pub use workloads::{all_queries, DatasetKind, QuerySpec, Scale};
