//! The paper's eight workload queries (§3 and Appendix A) and dataset
//! scales.

use crate::{freebase, graph};
use parjoin_common::Database;
use parjoin_query::hypergraph::is_acyclic;
use parjoin_query::{CmpOp, ConjunctiveQuery, QueryBuilder, Term};

/// Which dataset a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The Twitter-like power-law digraph (Q1, Q2, Q5, Q6).
    Twitter,
    /// The Freebase-like movie/honor catalog (Q3, Q4, Q7, Q8).
    Freebase,
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Paper name, `"Q1"` … `"Q8"`.
    pub name: &'static str,
    /// The query.
    pub query: ConjunctiveQuery,
    /// Dataset it runs on.
    pub dataset: DatasetKind,
    /// True when the query hypergraph is cyclic (Table 6's column).
    pub cyclic: bool,
}

/// Dataset sizing. The paper's Twitter subset has 1.11 M edges and its
/// Freebase slice 1.1 M performances; the default scales here keep every
/// experiment's *shape* while fitting laptop-scale runs (see
/// EXPERIMENTS.md for the scale used per figure).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Nodes in the Twitter-like graph.
    pub twitter_nodes: u64,
    /// Preferential-attachment edges per node.
    pub twitter_m: usize,
    /// Performances in the Freebase-like catalog.
    pub freebase_performances: usize,
}

impl Scale {
    /// Integration-test scale (fractions of a second per plan).
    pub fn tiny() -> Self {
        Scale {
            twitter_nodes: 300,
            twitter_m: 3,
            freebase_performances: 2_000,
        }
    }

    /// Default experiment scale.
    pub fn small() -> Self {
        Scale {
            twitter_nodes: 3_000,
            twitter_m: 5,
            freebase_performances: 20_000,
        }
    }

    /// Larger experiment scale (Q4/Q5 regular-shuffle plans become slow).
    pub fn medium() -> Self {
        Scale {
            twitter_nodes: 12_000,
            twitter_m: 6,
            freebase_performances: 80_000,
        }
    }

    /// Builds the Twitter-like database (one relation, `Twitter`).
    pub fn twitter_db(&self, seed: u64) -> Database {
        let mut db = Database::new();
        db.insert(
            "Twitter",
            graph::twitter_graph(self.twitter_nodes, self.twitter_m, seed),
        );
        db
    }

    /// Builds the Freebase-like database.
    pub fn freebase_db(&self, seed: u64) -> Database {
        freebase::generate(self.freebase_performances, seed)
    }

    /// Builds whichever database `kind` asks for.
    pub fn db_for(&self, kind: DatasetKind, seed: u64) -> Database {
        match kind {
            DatasetKind::Twitter => self.twitter_db(seed),
            DatasetKind::Freebase => self.freebase_db(seed),
        }
    }
}

fn spec(name: &'static str, dataset: DatasetKind, query: ConjunctiveQuery) -> QuerySpec {
    let cyclic = !is_acyclic(&query);
    QuerySpec {
        name,
        query,
        dataset,
        cyclic,
    }
}

/// Q1 — all directed triangles in Twitter (§3.1).
pub fn q1() -> QuerySpec {
    let mut b = QueryBuilder::new("Triangle");
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, x]);
    spec("Q1", DatasetKind::Twitter, b.build())
}

/// Q2 — all 4-cliques in Twitter (§3.2).
pub fn q2() -> QuerySpec {
    let mut b = QueryBuilder::new("Clique4");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, p])
        .atom("Twitter", [p, x])
        .atom("Twitter", [x, z])
        .atom("Twitter", [y, p]);
    spec("Q2", DatasetKind::Twitter, b.build())
}

/// Q3 — cast members of films starring both Joe Pesci and Robert De Niro
/// (§3.3). Acyclic, 8 atoms, tiny selections.
pub fn q3() -> QuerySpec {
    let mut b = QueryBuilder::new("CastMember");
    let a1 = b.var("a1");
    let p1 = b.var("p1");
    let film = b.var("film");
    let a2 = b.var("a2");
    let p2 = b.var("p2");
    let p = b.var("p");
    let cast = b.var("cast");
    b.atom_terms(
        "ObjectName",
        [Term::Var(a1), Term::Const(freebase::NAME_JOE_PESCI)],
    )
    .atom("ActorPerform", [a1, p1])
    .atom("PerformFilm", [p1, film])
    .atom_terms(
        "ObjectName",
        [Term::Var(a2), Term::Const(freebase::NAME_DE_NIRO)],
    )
    .atom("ActorPerform", [a2, p2])
    .atom("PerformFilm", [p2, film])
    .atom("PerformFilm", [p, film])
    .atom("ActorPerform", [cast, p])
    .head([cast]);
    spec("Q3", DatasetKind::Freebase, b.build())
}

/// Q4 — pairs of actors co-starring in at least two films (§3.4).
/// Cyclic, 8 atoms, huge intermediates under a regular shuffle.
pub fn q4() -> QuerySpec {
    let mut b = QueryBuilder::new("ActorPairs");
    let a1 = b.var("a1");
    let p1 = b.var("p1");
    let f1 = b.var("f1");
    let p2 = b.var("p2");
    let a2 = b.var("a2");
    let p3 = b.var("p3");
    let f2 = b.var("f2");
    let p4 = b.var("p4");
    b.atom("ActorPerform", [a1, p1])
        .atom("PerformFilm", [p1, f1])
        .atom("PerformFilm", [p2, f1])
        .atom("ActorPerform", [a2, p2])
        .atom("ActorPerform", [a2, p3])
        .atom("PerformFilm", [p3, f2])
        .atom("PerformFilm", [p4, f2])
        .atom("ActorPerform", [a1, p4])
        .head([a1, a2])
        .filter_vv(f1, CmpOp::Gt, f2);
    spec("Q4", DatasetKind::Freebase, b.build())
}

/// Q5 — directed rectangles (4-cycles) in Twitter (Appendix A).
pub fn q5() -> QuerySpec {
    let mut b = QueryBuilder::new("Rectangle");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, p])
        .atom("Twitter", [p, x]);
    spec("Q5", DatasetKind::Twitter, b.build())
}

/// Q6 — "two rings": back-to-back triangles (Appendix A).
pub fn q6() -> QuerySpec {
    let mut b = QueryBuilder::new("TwoRings");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, p])
        .atom("Twitter", [p, x])
        .atom("Twitter", [x, z]);
    spec("Q6", DatasetKind::Twitter, b.build())
}

/// Q7 — actors winning Academy Awards in the 1990s (Appendix A).
/// Acyclic star with range filters.
pub fn q7() -> QuerySpec {
    let mut b = QueryBuilder::new("OscarWinners");
    let aw = b.var("aw");
    let h = b.var("h");
    let a = b.var("a");
    let y = b.var("y");
    b.atom_terms(
        "ObjectName",
        [Term::Var(aw), Term::Const(freebase::NAME_ACADEMY_AWARDS)],
    )
    .atom("HonorAward", [h, aw])
    .atom("HonorActor", [h, a])
    .atom("HonorYear", [h, y])
    .head([a])
    .filter_vc(y, CmpOp::Ge, 1990)
    .filter_vc(y, CmpOp::Lt, 2000);
    spec("Q7", DatasetKind::Freebase, b.build())
}

/// Q8 — actor/director pairs appearing together in two films
/// (Appendix A). Cyclic, 6 atoms.
pub fn q8() -> QuerySpec {
    let mut b = QueryBuilder::new("ActorDirector");
    let a = b.var("a");
    let p1 = b.var("p1");
    let p2 = b.var("p2");
    let f1 = b.var("f1");
    let f2 = b.var("f2");
    let d = b.var("d");
    b.atom("ActorPerform", [a, p1])
        .atom("ActorPerform", [a, p2])
        .atom("PerformFilm", [p1, f1])
        .atom("PerformFilm", [p2, f2])
        .atom("DirectorFilm", [d, f1])
        .atom("DirectorFilm", [d, f2])
        .head([a, d]);
    spec("Q8", DatasetKind::Freebase, b.build())
}

/// All eight queries in paper order.
pub fn all_queries() -> Vec<QuerySpec> {
    vec![q1(), q2(), q3(), q4(), q5(), q6(), q7(), q8()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::parser;

    #[test]
    fn cyclicity_matches_table6() {
        let expect = [
            ("Q1", true),
            ("Q2", true),
            ("Q3", false),
            ("Q4", true),
            ("Q5", true),
            ("Q6", true),
            ("Q7", false),
            ("Q8", true),
        ];
        for (spec, (name, cyclic)) in all_queries().iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.cyclic, cyclic, "{name}");
        }
    }

    #[test]
    fn atom_counts_match_table6() {
        let expect = [3usize, 6, 8, 8, 4, 5, 4, 6];
        for (spec, n) in all_queries().iter().zip(expect) {
            assert_eq!(spec.query.atoms.len(), n, "{}", spec.name);
        }
    }

    #[test]
    fn join_variable_counts() {
        // Table 6 "# Join Variables": Q1=3, Q7=2 (aw and h), Q4=8.
        assert_eq!(q1().query.join_vars().len(), 3);
        assert_eq!(q7().query.join_vars().len(), 2);
        assert_eq!(q4().query.join_vars().len(), 8);
        assert_eq!(q8().query.join_vars().len(), 6);
    }

    #[test]
    fn queries_roundtrip_through_datalog() {
        for spec in all_queries() {
            let text = format!("{}", spec.query);
            let parsed = parser::parse(&text)
                .unwrap_or_else(|e| panic!("{} datalog `{text}` fails: {e}", spec.name));
            assert_eq!(
                format!("{parsed}"),
                text,
                "{} does not round-trip through the parser",
                spec.name
            );
        }
    }

    #[test]
    fn queries_validate_against_their_databases() {
        let scale = Scale::tiny();
        let tw = scale.twitter_db(1);
        let fb = scale.freebase_db(1);
        for spec in all_queries() {
            let db = match spec.dataset {
                DatasetKind::Twitter => &tw,
                DatasetKind::Freebase => &fb,
            };
            let (atoms, _) = parjoin_query::resolve_atoms(&spec.query, db).expect("resolves");
            assert_eq!(atoms.len(), spec.query.atoms.len());
        }
    }

    #[test]
    fn q3_selections_are_tiny() {
        let db = Scale::tiny().freebase_db(3);
        let (atoms, _) = parjoin_query::resolve_atoms(&q3().query, &db).unwrap();
        assert_eq!(atoms[0].len(), 1, "Joe Pesci selection");
        assert_eq!(atoms[3].len(), 1, "De Niro selection");
    }

    #[test]
    fn q7_range_filter_pushed_down() {
        let db = Scale::tiny().freebase_db(3);
        let (atoms, residual) = parjoin_query::resolve_atoms(&q7().query, &db).unwrap();
        assert!(residual.is_empty(), "range filters push down");
        let hy = db.expect("HonorYear").len();
        assert!(atoms[3].len() < hy, "HonorYear reduced by the range");
        assert!(!atoms[3].is_empty(), "some honors in the 1990s");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().twitter_nodes < Scale::small().twitter_nodes);
        assert!(Scale::small().freebase_performances < Scale::medium().freebase_performances);
    }
}
