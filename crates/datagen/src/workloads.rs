//! The paper's eight workload queries (§3 and Appendix A) and dataset
//! scales.
//!
//! The query *shapes* live in the named registry
//! [`parjoin_core::queries`] (shared with the serving front end, benches,
//! and tests); this module pairs each name with the dataset it runs on
//! and the generator scales.

use crate::{freebase, graph};
use parjoin_common::Database;
use parjoin_core::queries;
use parjoin_query::hypergraph::is_acyclic;
use parjoin_query::ConjunctiveQuery;

/// Which dataset a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The Twitter-like power-law digraph (Q1, Q2, Q5, Q6).
    Twitter,
    /// The Freebase-like movie/honor catalog (Q3, Q4, Q7, Q8).
    Freebase,
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Paper name, `"Q1"` … `"Q8"`.
    pub name: &'static str,
    /// The query.
    pub query: ConjunctiveQuery,
    /// Dataset it runs on.
    pub dataset: DatasetKind,
    /// True when the query hypergraph is cyclic (Table 6's column).
    pub cyclic: bool,
}

/// Dataset sizing. The paper's Twitter subset has 1.11 M edges and its
/// Freebase slice 1.1 M performances; the default scales here keep every
/// experiment's *shape* while fitting laptop-scale runs (see
/// EXPERIMENTS.md for the scale used per figure).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Nodes in the Twitter-like graph.
    pub twitter_nodes: u64,
    /// Preferential-attachment edges per node.
    pub twitter_m: usize,
    /// Performances in the Freebase-like catalog.
    pub freebase_performances: usize,
}

impl Scale {
    /// Integration-test scale (fractions of a second per plan).
    pub fn tiny() -> Self {
        Scale {
            twitter_nodes: 300,
            twitter_m: 3,
            freebase_performances: 2_000,
        }
    }

    /// Default experiment scale.
    pub fn small() -> Self {
        Scale {
            twitter_nodes: 3_000,
            twitter_m: 5,
            freebase_performances: 20_000,
        }
    }

    /// Larger experiment scale (Q4/Q5 regular-shuffle plans become slow).
    pub fn medium() -> Self {
        Scale {
            twitter_nodes: 12_000,
            twitter_m: 6,
            freebase_performances: 80_000,
        }
    }

    /// Builds the Twitter-like database (one relation, `Twitter`).
    pub fn twitter_db(&self, seed: u64) -> Database {
        let mut db = Database::new();
        db.insert(
            "Twitter",
            graph::twitter_graph(self.twitter_nodes, self.twitter_m, seed),
        );
        db
    }

    /// Builds the Freebase-like database.
    pub fn freebase_db(&self, seed: u64) -> Database {
        freebase::generate(self.freebase_performances, seed)
    }

    /// Builds whichever database `kind` asks for.
    pub fn db_for(&self, kind: DatasetKind, seed: u64) -> Database {
        match kind {
            DatasetKind::Twitter => self.twitter_db(seed),
            DatasetKind::Freebase => self.freebase_db(seed),
        }
    }
}

/// Which dataset a workload query runs on, by paper name. Returns `None`
/// for names outside `"Q1"` … `"Q8"`.
pub fn dataset_for(name: &str) -> Option<DatasetKind> {
    match name {
        "Q1" | "Q2" | "Q5" | "Q6" => Some(DatasetKind::Twitter),
        "Q3" | "Q4" | "Q7" | "Q8" => Some(DatasetKind::Freebase),
        _ => None,
    }
}

/// Looks up a workload spec by paper name (`"Q1"` … `"Q8"`), pairing the
/// registry's query shape with its dataset. Returns `None` for unknown
/// names.
pub fn spec_for(name: &str) -> Option<QuerySpec> {
    let dataset = dataset_for(name)?;
    let query = queries::build(name)?;
    let cyclic = !is_acyclic(&query);
    // `name` round-trips through the registry's static table so the spec
    // can keep its `&'static str`.
    let name = *queries::NAMES.iter().find(|n| **n == name)?;
    Some(QuerySpec {
        name,
        query,
        dataset,
        cyclic,
    })
}

fn spec(name: &'static str) -> QuerySpec {
    // xtask: allow(panic): static registry lookup of a known name.
    spec_for(name).unwrap_or_else(|| panic!("workload `{name}` missing from registry"))
}

/// Q1 — all directed triangles in Twitter (§3.1).
pub fn q1() -> QuerySpec {
    spec("Q1")
}

/// Q2 — all 4-cliques in Twitter (§3.2).
pub fn q2() -> QuerySpec {
    spec("Q2")
}

/// Q3 — cast members of films starring both Joe Pesci and Robert De Niro
/// (§3.3). Acyclic, 8 atoms, tiny selections.
pub fn q3() -> QuerySpec {
    spec("Q3")
}

/// Q4 — pairs of actors co-starring in at least two films (§3.4).
/// Cyclic, 8 atoms, huge intermediates under a regular shuffle.
pub fn q4() -> QuerySpec {
    spec("Q4")
}

/// Q5 — directed rectangles (4-cycles) in Twitter (Appendix A).
pub fn q5() -> QuerySpec {
    spec("Q5")
}

/// Q6 — "two rings": back-to-back triangles (Appendix A).
pub fn q6() -> QuerySpec {
    spec("Q6")
}

/// Q7 — actors winning Academy Awards in the 1990s (Appendix A).
/// Acyclic star with range filters.
pub fn q7() -> QuerySpec {
    spec("Q7")
}

/// Q8 — actor/director pairs appearing together in two films
/// (Appendix A). Cyclic, 6 atoms.
pub fn q8() -> QuerySpec {
    spec("Q8")
}

/// All eight queries in paper order.
pub fn all_queries() -> Vec<QuerySpec> {
    queries::NAMES.iter().map(|n| spec(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::parser;

    #[test]
    fn cyclicity_matches_table6() {
        let expect = [
            ("Q1", true),
            ("Q2", true),
            ("Q3", false),
            ("Q4", true),
            ("Q5", true),
            ("Q6", true),
            ("Q7", false),
            ("Q8", true),
        ];
        for (spec, (name, cyclic)) in all_queries().iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.cyclic, cyclic, "{name}");
        }
    }

    #[test]
    fn atom_counts_match_table6() {
        let expect = [3usize, 6, 8, 8, 4, 5, 4, 6];
        for (spec, n) in all_queries().iter().zip(expect) {
            assert_eq!(spec.query.atoms.len(), n, "{}", spec.name);
        }
    }

    #[test]
    fn join_variable_counts() {
        // Table 6 "# Join Variables": Q1=3, Q7=2 (aw and h), Q4=8.
        assert_eq!(q1().query.join_vars().len(), 3);
        assert_eq!(q7().query.join_vars().len(), 2);
        assert_eq!(q4().query.join_vars().len(), 8);
        assert_eq!(q8().query.join_vars().len(), 6);
    }

    #[test]
    fn queries_roundtrip_through_datalog() {
        for spec in all_queries() {
            let text = format!("{}", spec.query);
            let parsed = parser::parse(&text)
                .unwrap_or_else(|e| panic!("{} datalog `{text}` fails: {e}", spec.name));
            assert_eq!(
                format!("{parsed}"),
                text,
                "{} does not round-trip through the parser",
                spec.name
            );
        }
    }

    #[test]
    fn queries_validate_against_their_databases() {
        let scale = Scale::tiny();
        let tw = scale.twitter_db(1);
        let fb = scale.freebase_db(1);
        for spec in all_queries() {
            let db = match spec.dataset {
                DatasetKind::Twitter => &tw,
                DatasetKind::Freebase => &fb,
            };
            let (atoms, _) = parjoin_query::resolve_atoms(&spec.query, db).expect("resolves");
            assert_eq!(atoms.len(), spec.query.atoms.len());
        }
    }

    #[test]
    fn q3_selections_are_tiny() {
        let db = Scale::tiny().freebase_db(3);
        let (atoms, _) = parjoin_query::resolve_atoms(&q3().query, &db).unwrap();
        assert_eq!(atoms[0].len(), 1, "Joe Pesci selection");
        assert_eq!(atoms[3].len(), 1, "De Niro selection");
    }

    #[test]
    fn q7_range_filter_pushed_down() {
        let db = Scale::tiny().freebase_db(3);
        let (atoms, residual) = parjoin_query::resolve_atoms(&q7().query, &db).unwrap();
        assert!(residual.is_empty(), "range filters push down");
        let hy = db.expect("HonorYear").len();
        assert!(atoms[3].len() < hy, "HonorYear reduced by the range");
        assert!(!atoms[3].is_empty(), "some honors in the 1990s");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().twitter_nodes < Scale::small().twitter_nodes);
        assert!(Scale::small().freebase_performances < Scale::medium().freebase_performances);
    }
}
