//! A simple Zipf sampler over `0..n` via inverse-CDF table lookup.

use rand::Rng;

/// Zipf distribution with exponent `s` over ranks `0..n` (rank 0 most
/// popular). Sampling is a binary search over the precomputed CDF.
///
/// ```
/// use parjoin_datagen::zipf::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let hits = (0..1000).filter(|_| z.sample(&mut rng) == 0).count();
/// assert!(hits > 100, "rank 0 dominates: {hits}");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty (constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        Zipf::new(0, 1.0);
    }
}
