//! A synthetic Freebase-like movie/honor catalog.
//!
//! Mirrors the paper's Table 1 / Table 8 schema with the same *relative*
//! cardinalities and Zipf-skewed fan-outs (popular actors perform often,
//! popular films have large casts):
//!
//! | relation | schema | paper size | ratio to ActorPerform |
//! |---|---|---|---|
//! | `ObjectName` | (object_id, name) | 59,324,337 | ≈ 54 (here: largest, ≈ 2×perfs) |
//! | `ActorPerform` | (actor_id, perform_id) | 1,100,844 | 1 |
//! | `PerformFilm` | (perform_id, film_id) | 1,094,294 | ≈ 0.99 |
//! | `DirectorFilm` | (director, film) | ≈ 190,000 | ≈ 0.17 |
//! | `HonorAward` | (honor, award) | 93,468 | ≈ 0.085 |
//! | `HonorActor` | (honor, actor) | 126,238 | ≈ 0.115 |
//! | `HonorYear` | (honor, year) | ≈ 93,000 | ≈ 0.085 |
//!
//! `ObjectName` is shrunk relative to the paper (keeping it the largest
//! relation): the queries only ever *select* single constants from it, so
//! its absolute size does not change any join behaviour — see DESIGN.md's
//! substitution notes.
//!
//! Named constants ("Joe Pesci", "Robert De Niro", "The Academy Awards")
//! are fixed dictionary ids; the generator guarantees the structures the
//! paper's queries look for (co-starring films for Q3, 1990s Academy
//! honors for Q7).

use crate::zipf::Zipf;
use parjoin_common::{Database, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The dictionary ids of the named constants are owned by the query
// registry (the queries embed them as selection constants); the generator
// re-exports them so data and queries can never disagree.
pub use parjoin_core::queries::{NAME_ACADEMY_AWARDS, NAME_DE_NIRO, NAME_JOE_PESCI};

const ACTOR_BASE: u64 = 0;
/// Actor id of Joe Pesci — a deliberately *tail* entity (real-world stars
/// have tens of performances, not the Zipf head's thousands).
pub const ACTOR_JOE_PESCI: u64 = 900_000_000;
/// Actor id of Robert De Niro (tail entity, see [`ACTOR_JOE_PESCI`]).
pub const ACTOR_DE_NIRO: u64 = 900_000_001;
const FILM_BASE: u64 = 1_000_000_000;
const DIRECTOR_BASE: u64 = 2_000_000_000;
const AWARD_BASE: u64 = 3_000_000_000;
const HONOR_BASE: u64 = 4_000_000_000;
const NAME_BASE: u64 = 5_000_000_100;
const PERFORM_BASE: u64 = 6_000_000_000;

/// Generates the catalog, scaled by the number of performances
/// (`ActorPerform` rows ≈ `n_performances`).
///
/// # Panics
/// Panics if `n_performances < 100`.
pub fn generate(n_performances: usize, seed: u64) -> Database {
    assert!(n_performances >= 100, "need at least 100 performances");
    let mut rng = StdRng::seed_from_u64(seed);

    let n_actors = (n_performances / 5).max(20);
    let n_films = (n_performances / 4).max(20);
    let n_directors = (n_films / 5).max(5);
    let n_awards = 20usize;
    let n_honors = (n_performances as f64 * 0.085).max(50.0) as usize;

    // Exponents calibrated so the *head* entities stay plausible: the
    // busiest actor gets a few hundred performances and the largest cast
    // a few hundred members, as in the real catalog — heavy enough for
    // visible shuffle skew, light enough that Q3/Q8 outputs stay sane.
    let actor_zipf = Zipf::new(n_actors, 0.9);
    let film_zipf = Zipf::new(n_films, 0.7);
    let director_zipf = Zipf::new(n_directors, 1.0);
    let award_zipf = Zipf::new(n_awards, 1.0);

    let mut actor_perform = Relation::with_capacity(2, n_performances + 64);
    let mut perform_film = Relation::with_capacity(2, n_performances + 64);
    for p in 0..n_performances as u64 {
        let actor = ACTOR_BASE + actor_zipf.sample(&mut rng) as u64;
        actor_perform.push_row(&[actor, PERFORM_BASE + p]);
        // PerformFilm is slightly smaller than ActorPerform in the paper
        // (1.094M vs 1.100M): drop ~0.5% of film rows.
        if rng.gen_bool(0.995) {
            let film = FILM_BASE + film_zipf.sample(&mut rng) as u64;
            perform_film.push_row(&[PERFORM_BASE + p, film]);
        }
    }

    // Q3 guarantee: Joe Pesci and Robert De Niro co-star in three
    // dedicated films (ids beyond the Zipf range, so their casts stay
    // small and realistic), each with a handful of extra cast members;
    // both stars also get a few solo tail performances.
    let mut next_perf = PERFORM_BASE + n_performances as u64;
    for f in 0..3u64 {
        let film = FILM_BASE + n_films as u64 + f;
        for actor in [ACTOR_JOE_PESCI, ACTOR_DE_NIRO] {
            actor_perform.push_row(&[actor, next_perf]);
            perform_film.push_row(&[next_perf, film]);
            next_perf += 1;
        }
        for extra in 0..5u64 {
            let cast = ACTOR_BASE + (f * 5 + extra) % (n_actors as u64);
            actor_perform.push_row(&[cast, next_perf]);
            perform_film.push_row(&[next_perf, film]);
            next_perf += 1;
        }
    }
    for star in [ACTOR_JOE_PESCI, ACTOR_DE_NIRO] {
        for _ in 0..5 {
            let film = FILM_BASE + film_zipf.sample(&mut rng) as u64;
            actor_perform.push_row(&[star, next_perf]);
            perform_film.push_row(&[next_perf, film]);
            next_perf += 1;
        }
    }

    let mut director_film = Relation::with_capacity(2, (n_films * 7) / 10 + 1);
    for f in 0..n_films as u64 {
        // ≈ 0.7 directors per film keeps |DirectorFilm| / |ActorPerform|
        // at the paper's ≈ 0.17.
        if rng.gen_bool(0.7) {
            let d = DIRECTOR_BASE + director_zipf.sample(&mut rng) as u64;
            director_film.push_row(&[d, FILM_BASE + f]);
        }
    }

    let mut honor_award = Relation::with_capacity(2, n_honors);
    let mut honor_actor = Relation::with_capacity(2, (n_honors * 135) / 100);
    let mut honor_year = Relation::with_capacity(2, n_honors);
    for h in 0..n_honors as u64 {
        let honor = HONOR_BASE + h;
        let award = AWARD_BASE + award_zipf.sample(&mut rng) as u64;
        honor_award.push_row(&[honor, award]);
        let actor = ACTOR_BASE + actor_zipf.sample(&mut rng) as u64;
        honor_actor.push_row(&[honor, actor]);
        // The paper's HonorActor is ≈ 1.35× HonorAward: shared honors.
        if rng.gen_bool(0.35) {
            let second = ACTOR_BASE + actor_zipf.sample(&mut rng) as u64;
            honor_actor.push_row(&[honor, second]);
        }
        let year = 1950 + rng.gen_range(0..70);
        honor_year.push_row(&[honor, year]);
    }

    // ObjectName: every entity gets a name; padding rows keep it the
    // largest relation, as in the paper.
    let mut object_name = Relation::with_capacity(2, 2 * n_performances);
    let mut next_name = NAME_BASE;
    object_name.push_row(&[ACTOR_JOE_PESCI, NAME_JOE_PESCI]);
    object_name.push_row(&[ACTOR_DE_NIRO, NAME_DE_NIRO]);
    object_name.push_row(&[AWARD_BASE, NAME_ACADEMY_AWARDS]);
    let named_objects = (0..n_actors as u64)
        .map(|a| ACTOR_BASE + a)
        .chain((0..n_films as u64).map(|f| FILM_BASE + f))
        .chain((0..n_directors as u64).map(|d| DIRECTOR_BASE + d))
        .chain((1..n_awards as u64).map(|w| AWARD_BASE + w));
    for obj in named_objects {
        object_name.push_row(&[obj, next_name]);
        next_name += 1;
    }
    // Pad with miscellaneous entities so ObjectName stays the largest
    // relation, as in the paper.
    while object_name.len() < 2 * n_performances {
        object_name.push_row(&[7_000_000_000 + next_name, next_name]);
        next_name += 1;
    }

    let mut db = Database::new();
    db.insert("ObjectName", object_name);
    db.insert("ActorPerform", actor_perform.distinct());
    db.insert("PerformFilm", perform_film.distinct());
    db.insert("DirectorFilm", director_film.distinct());
    db.insert("HonorAward", honor_award);
    db.insert("HonorActor", honor_actor.distinct());
    db.insert("HonorYear", honor_year);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Database {
        generate(2000, 42)
    }

    #[test]
    fn cardinality_ratios_roughly_papers() {
        let db = small();
        let ap = db.expect("ActorPerform").len() as f64;
        let pf = db.expect("PerformFilm").len() as f64;
        let df = db.expect("DirectorFilm").len() as f64;
        let on = db.expect("ObjectName").len() as f64;
        assert!((pf / ap - 1.0).abs() < 0.05, "PF/AP = {}", pf / ap);
        assert!(df / ap > 0.10 && df / ap < 0.25, "DF/AP = {}", df / ap);
        assert!(on > ap, "ObjectName must stay the largest relation");
    }

    #[test]
    fn honor_actor_exceeds_honor_award() {
        let db = small();
        let ha = db.expect("HonorActor").len() as f64;
        let hw = db.expect("HonorAward").len() as f64;
        assert!(ha / hw > 1.15 && ha / hw < 1.6, "HA/HW = {}", ha / hw);
    }

    #[test]
    fn q3_constants_resolve() {
        let db = small();
        let on = db.expect("ObjectName");
        let joe: Vec<u64> = on
            .rows()
            .filter(|r| r[1] == NAME_JOE_PESCI)
            .map(|r| r[0])
            .collect();
        let rdn: Vec<u64> = on
            .rows()
            .filter(|r| r[1] == NAME_DE_NIRO)
            .map(|r| r[0])
            .collect();
        assert_eq!(joe, vec![ACTOR_JOE_PESCI]);
        assert_eq!(rdn, vec![ACTOR_DE_NIRO]);
    }

    #[test]
    fn costar_films_exist() {
        let db = small();
        let ap = db.expect("ActorPerform");
        let pf = db.expect("PerformFilm");
        let films_of = |actor: u64| -> std::collections::BTreeSet<u64> {
            let perfs: Vec<u64> = ap.rows().filter(|r| r[0] == actor).map(|r| r[1]).collect();
            pf.rows()
                .filter(|r| perfs.contains(&r[0]))
                .map(|r| r[1])
                .collect()
        };
        let shared: Vec<u64> = films_of(ACTOR_JOE_PESCI)
            .intersection(&films_of(ACTOR_DE_NIRO))
            .copied()
            .collect();
        assert!(shared.len() >= 3, "co-starring films: {shared:?}");
    }

    #[test]
    fn academy_honors_in_nineties_exist() {
        let db = small();
        let ha = db.expect("HonorAward");
        let hy = db.expect("HonorYear");
        let academy_honors: Vec<u64> = ha
            .rows()
            .filter(|r| r[1] == AWARD_BASE)
            .map(|r| r[0])
            .collect();
        let nineties = hy
            .rows()
            .filter(|r| academy_honors.contains(&r[0]) && r[1] >= 1990 && r[1] < 2000)
            .count();
        assert!(nineties > 0, "no 1990s Academy honors generated");
    }

    #[test]
    fn deterministic() {
        let a = generate(500, 9);
        let b = generate(500, 9);
        assert_eq!(
            a.expect("ActorPerform").raw(),
            b.expect("ActorPerform").raw()
        );
    }

    #[test]
    fn honors_reference_valid_actors() {
        let db = small();
        let ha = db.expect("HonorActor");
        for row in ha.rows() {
            assert!(row[1] < FILM_BASE, "actor id out of range");
        }
    }

    #[test]
    fn stars_are_tail_entities() {
        // The query constants must not be Zipf-head entities: their
        // performance counts stay small (3 co-star + 5 solo films).
        let db = small();
        let ap = db.expect("ActorPerform");
        let joe = ap.rows().filter(|r| r[0] == ACTOR_JOE_PESCI).count();
        let rdn = ap.rows().filter(|r| r[0] == ACTOR_DE_NIRO).count();
        assert!(joe <= 10 && rdn <= 10, "joe {joe}, rdn {rdn}");
    }
}
