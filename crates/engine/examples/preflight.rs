//! Demonstrates the pre-flight plan analyzer: a malformed HyperCube
//! configuration is rejected with typed diagnostics before any data
//! moves, while a valid plan runs (carrying any warnings along).
//!
//! Run with `cargo run -p parjoin-engine --example preflight`.

use parjoin_common::{Database, Relation};
use parjoin_core::hypercube::HcConfig;
use parjoin_engine::{run_config, Cluster, EngineError, JoinAlg, PlanOptions, ShuffleAlg};
use parjoin_query::{QueryBuilder, VarId};

fn main() {
    // Triangle query over a small ring graph.
    let mut b = QueryBuilder::new("Tri");
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("E1", [x, y]).atom("E2", [y, z]).atom("E3", [z, x]);
    let q = b.build();

    let mut rel = Relation::new(2);
    for i in 0..16u64 {
        rel.push_row(&[i, (i + 1) % 16]);
        rel.push_row(&[(i + 2) % 16, i]);
    }
    let rel = rel.distinct();
    let mut db = Database::new();
    db.insert("E1", rel.clone());
    db.insert("E2", rel.clone());
    db.insert("E3", rel);

    let cluster = Cluster::new(8);

    // 1. A 4x4x4 hypercube on 8 workers: 64 cells cannot be placed.
    let bad = PlanOptions {
        hc_config: Some(HcConfig::new(
            vec![VarId(0), VarId(1), VarId(2)],
            vec![4, 4, 4],
        )),
        ..Default::default()
    };
    match run_config(
        &q,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Hash,
        &bad,
    ) {
        Err(EngineError::InvalidPlan(diags)) => {
            println!("rejected before execution ({} diagnostics):", diags.len());
            for d in &diags {
                println!("  {d}");
            }
        }
        Err(e) => println!("unexpected error: {e}"),
        Ok(_) => println!("unexpectedly ran"),
    }

    // 2. The same query with a sound plan runs to completion.
    let good = PlanOptions {
        collect_output: true,
        ..Default::default()
    };
    match run_config(
        &q,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Hash,
        &good,
    ) {
        Ok(r) => {
            println!(
                "valid plan ran: {} output tuples, {} warnings",
                r.output_tuples,
                r.diagnostics.len()
            );
            for d in &r.diagnostics {
                println!("  {d}");
            }
        }
        Err(e) => println!("unexpected error: {e}"),
    }
}
