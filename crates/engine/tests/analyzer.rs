//! Malformed plans must come back as `EngineError::InvalidPlan` with
//! typed diagnostics — never as panics — and analyzer warnings must ride
//! along on successful runs.

use parjoin_common::{Database, Relation};
use parjoin_core::hypercube::HcConfig;
use parjoin_engine::{
    run_config, Cluster, DiagCode, EngineError, JoinAlg, PlanOptions, ShuffleAlg,
};
use parjoin_query::{ConjunctiveQuery, QueryBuilder, VarId};

fn triangle_query() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("Tri");
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("E1", [x, y]).atom("E2", [y, z]).atom("E3", [z, x]);
    b.build()
}

fn ring_db(n: u64) -> Database {
    let mut rel = Relation::new(2);
    for i in 0..n {
        rel.push_row(&[i, (i + 1) % n]);
        rel.push_row(&[(i + 2) % n, i]);
    }
    let rel = rel.distinct();
    let mut db = Database::new();
    db.insert("E1", rel.clone());
    db.insert("E2", rel.clone());
    db.insert("E3", rel);
    db
}

/// Unwraps the InvalidPlan variant or panics with a useful message.
fn invalid_plan(
    r: Result<parjoin_engine::RunResult, EngineError>,
) -> Vec<parjoin_engine::Diagnostic> {
    match r {
        Err(EngineError::InvalidPlan(diags)) => {
            assert!(!diags.is_empty(), "InvalidPlan must carry diagnostics");
            diags
        }
        Err(e) => panic!("expected InvalidPlan, got {e}"),
        Ok(_) => panic!("expected InvalidPlan, plan ran"),
    }
}

#[test]
fn oversized_hc_config_is_rejected_not_panicked() {
    let q = triangle_query();
    let db = ring_db(12);
    // 4×4×4 = 64 cells on a 8-worker cluster: unexecutable.
    let opts = PlanOptions {
        hc_config: Some(HcConfig::new(
            vec![VarId(0), VarId(1), VarId(2)],
            vec![4, 4, 4],
        )),
        ..Default::default()
    };
    let diags = invalid_plan(run_config(
        &q,
        &db,
        &Cluster::new(8),
        ShuffleAlg::HyperCube,
        JoinAlg::Hash,
        &opts,
    ));
    assert!(
        diags.iter().any(|d| d.code == DiagCode::HcConfigOversized),
        "{diags:?}"
    );
    let d = diags
        .iter()
        .find(|d| d.code == DiagCode::HcConfigOversized)
        .unwrap();
    assert_eq!(d.context_value("cells"), Some("64"));
    assert_eq!(d.context_value("workers"), Some("8"));
}

#[test]
fn hc_dim_on_unknown_var_is_rejected_as_duplicating() {
    let q = triangle_query();
    let db = ring_db(12);
    // A dimension on VarId(9), which no atom contains: every atom would
    // replicate across it and every triangle would be emitted twice.
    let opts = PlanOptions {
        hc_config: Some(HcConfig::new(vec![VarId(0), VarId(9)], vec![2, 2])),
        ..Default::default()
    };
    let diags = invalid_plan(run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::HyperCube,
        JoinAlg::Hash,
        &opts,
    ));
    assert!(
        diags.iter().any(|d| d.code == DiagCode::HcConfigUnknownVar),
        "{diags:?}"
    );
}

#[test]
fn hc_config_missing_join_vars_warns_but_runs_correctly() {
    let q = triangle_query();
    let db = ring_db(12);
    // Dimensions on x only: y and z are join variables left
    // undimensioned. Correct (atoms not containing x replicate) but
    // wasteful, so it runs with warnings.
    let opts = PlanOptions {
        hc_config: Some(HcConfig::new(vec![VarId(0)], vec![4])),
        collect_output: true,
        ..Default::default()
    };
    let r = run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::HyperCube,
        JoinAlg::Hash,
        &opts,
    )
    .expect("warnings must not fail the run");
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.code == DiagCode::HcConfigMissingJoinVar),
        "{:?}",
        r.diagnostics
    );
    // And the answer is still the right one.
    let baseline = run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::HyperCube,
        JoinAlg::Hash,
        &PlanOptions {
            collect_output: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(r.output_tuples, baseline.output_tuples);
}

#[test]
fn duplicate_join_order_is_rejected_not_panicked() {
    let q = triangle_query();
    let db = ring_db(12);
    let opts = PlanOptions {
        join_order: Some(vec![0, 0, 1]),
        ..Default::default()
    };
    let diags = invalid_plan(run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &opts,
    ));
    assert!(
        diags
            .iter()
            .any(|d| d.code == DiagCode::JoinOrderNotPermutation),
        "{diags:?}"
    );
}

#[test]
fn short_join_order_reports_dropped_filters() {
    use parjoin_query::CmpOp;
    let mut b = QueryBuilder::new("F");
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("R", [x, y]).atom("S", [y, z]);
    b.filter_vv(x, CmpOp::Lt, z);
    let q = b.build();
    let mut db = Database::new();
    let rel = Relation::from_rows(2, (0..10u64).map(|i| [i, i + 1]).collect::<Vec<_>>().iter());
    db.insert("R", rel.clone());
    db.insert("S", rel);
    // The order covers only atom 0, so z never binds and the x<z filter
    // could never be applied (formerly a silently-passing debug_assert).
    let opts = PlanOptions {
        join_order: Some(vec![0]),
        ..Default::default()
    };
    let diags = invalid_plan(run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &opts,
    ));
    assert!(
        diags
            .iter()
            .any(|d| d.code == DiagCode::JoinOrderNotPermutation),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.code == DiagCode::FilterNeverApplied),
        "{diags:?}"
    );
}

#[test]
fn partial_tj_order_is_rejected_not_panicked() {
    let q = triangle_query();
    let db = ring_db(12);
    // Omits z: E2(y,z) and E3(z,x) cannot be sorted into this order.
    let opts = PlanOptions {
        tj_order: Some(vec![VarId(0), VarId(1)]),
        ..Default::default()
    };
    let diags = invalid_plan(run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &opts,
    ));
    assert!(
        diags.iter().any(|d| d.code == DiagCode::TjOrderIncomplete),
        "{diags:?}"
    );
}

#[test]
fn tj_order_with_unknown_var_is_rejected() {
    let q = triangle_query();
    let db = ring_db(12);
    let opts = PlanOptions {
        tj_order: Some(vec![VarId(0), VarId(1), VarId(2), VarId(7)]),
        ..Default::default()
    };
    let diags = invalid_plan(run_config(
        &q,
        &db,
        &Cluster::new(4),
        ShuffleAlg::Broadcast,
        JoinAlg::Tributary,
        &opts,
    ));
    assert!(
        diags.iter().any(|d| d.code == DiagCode::TjOrderUnknownVar),
        "{diags:?}"
    );
}

#[test]
fn disconnected_query_warns_through_greedy_order_and_still_runs() {
    // R(x,y) × S(u,v): no shared variables at all. The greedy order falls
    // back to a cartesian step; the analyzer surfaces it as warnings and
    // the engine still computes the (cross product) answer.
    let mut b = QueryBuilder::new("Cross");
    let (x, y, u, w) = (b.var("x"), b.var("y"), b.var("u"), b.var("w"));
    b.atom("R", [x, y]).atom("S", [u, w]);
    let q = b.build();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(2, [[1u64, 2], [3, 4]].iter()));
    db.insert(
        "S",
        Relation::from_rows(2, [[5u64, 6], [7, 8], [9, 10]].iter()),
    );
    for (s, j) in [
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::Broadcast, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Hash),
    ] {
        let r = run_config(
            &q,
            &db,
            &Cluster::new(4),
            s,
            j,
            &PlanOptions {
                collect_output: true,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{s:?}/{j:?}: {e}"));
        assert_eq!(r.output_tuples, 6, "{s:?}/{j:?} cross product size");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == DiagCode::QueryDisconnected),
            "{s:?}/{j:?}: expected a disconnection warning, got {:?}",
            r.diagnostics
        );
    }
}

#[test]
fn memory_preflight_warning_precedes_budget_failure() {
    let q = triangle_query();
    let db = ring_db(60);
    // A budget of 1 tuple per worker cannot hold the shuffled inputs: the
    // analyzer predicts the failure up front…
    let cluster = Cluster::new(4).with_memory_budget(1);
    let err = run_config(
        &q,
        &db,
        &cluster,
        ShuffleAlg::Broadcast,
        JoinAlg::Hash,
        &PlanOptions::default(),
    )
    .unwrap_err();
    // …but the run still fails with the precise runtime error (the
    // pre-flight is a warning, not a refusal — estimates can be wrong).
    assert!(matches!(err, EngineError::MemoryBudget { .. }), "got {err}");
}

#[test]
fn clean_plans_have_no_warnings() {
    let q = triangle_query();
    let db = ring_db(24);
    // R413 is host-dependent: 4 simulated workers trigger it exactly
    // when the machine running this test has <= 4 cores. Everything
    // else must stay silent on a clean plan.
    let saturated = std::thread::available_parallelism()
        .map(|n| 4 >= n.get())
        .unwrap_or(false);
    for (s, j) in [
        (ShuffleAlg::Regular, JoinAlg::Hash),
        (ShuffleAlg::HyperCube, JoinAlg::Tributary),
    ] {
        let r = run_config(&q, &db, &Cluster::new(4), s, j, &PlanOptions::default()).unwrap();
        let (r413, rest): (Vec<_>, Vec<_>) = r
            .diagnostics
            .iter()
            .partition(|d| d.code == DiagCode::ProbeParallelismDegraded);
        assert!(rest.is_empty(), "{s:?}/{j:?}: {rest:?}");
        assert_eq!(
            !r413.is_empty(),
            saturated,
            "{s:?}/{j:?}: R413 should fire iff workers >= host cores, got {r413:?}"
        );
    }
}
