//! Property tests for the engine's shuffles and local joins.

use parjoin_common::Relation;
use parjoin_core::hypercube::HcConfig;
use parjoin_core::tributary::{SortedAtom, Tributary};
use parjoin_engine::dist::DistRel;
use parjoin_engine::local::{hash_join, merge_join, semijoin, SchemaRel};
use parjoin_engine::prepare::sorted_by_columns_parallel;
use parjoin_engine::probe::morsel_bounds;
use parjoin_engine::shuffle;
use parjoin_engine::SortCache;
use parjoin_query::VarId;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn v(i: u32) -> VarId {
    VarId(i)
}

fn arb_rel(max_val: u64, max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..max_val, 0..max_val), 0..=max_rows).prop_map(|rows| {
        Relation::from_rows(2, rows.iter().map(|&(a, b)| [a, b]).collect::<Vec<_>>())
    })
}

fn multiset(rel: &Relation) -> BTreeMap<Vec<u64>, usize> {
    let mut m = BTreeMap::new();
    for row in rel.rows() {
        *m.entry(row.to_vec()).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regular_shuffle_is_a_partition(rel in arb_rel(40, 80), workers in 1usize..9) {
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], workers);
        let (out, stats) = shuffle::regular(&d, &[v(1)], "p", 7);
        // Complete: the union of partitions is the input multiset.
        let mut merged = Relation::new(2);
        for p in &out.parts {
            merged.extend_from(p);
        }
        prop_assert_eq!(multiset(&merged), multiset(&rel));
        prop_assert_eq!(stats.tuples_sent, rel.len() as u64);
        // Consistent: equal keys land together.
        for (w1, p1) in out.parts.iter().enumerate() {
            for r1 in p1.rows() {
                for (w2, p2) in out.parts.iter().enumerate() {
                    if w1 != w2 {
                        prop_assert!(
                            !p2.rows().any(|r2| r2[1] == r1[1]),
                            "key {} split across workers", r1[1]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hypercube_meets_all_joining_pairs(
        r in arb_rel(20, 40),
        s in arb_rel(20, 40),
        d1 in 1usize..4, d2 in 1usize..4, d3 in 1usize..4,
    ) {
        let workers = d1 * d2 * d3;
        let cfg = HcConfig::new(vec![v(0), v(1), v(2)], vec![d1, d2, d3]);
        let dr = DistRel::round_robin(&r, vec![v(0), v(1)], workers);
        let ds = DistRel::round_robin(&s, vec![v(1), v(2)], workers);
        let (or, _) = shuffle::hypercube(&dr, &cfg, "r", 5);
        let (os, _) = shuffle::hypercube(&ds, &cfg, "s", 5);
        for rr in r.rows() {
            for sr in s.rows() {
                if rr[1] != sr[0] {
                    continue;
                }
                let meet = (0..workers).any(|w| {
                    or.parts[w].rows().any(|x| x == rr)
                        && os.parts[w].rows().any(|x| x == sr)
                });
                prop_assert!(meet, "{rr:?} and {sr:?} never co-located");
            }
        }
    }

    #[test]
    fn hash_join_equals_merge_join(a in arb_rel(15, 50), b in arb_rel(15, 50)) {
        let sa = SchemaRel { vars: vec![v(0), v(1)], rel: a };
        let sb = SchemaRel { vars: vec![v(1), v(2)], rel: b };
        let h = hash_join(&sa, &sb, 3);
        let (m, _, _) = merge_join(&sa, &sb, 3);
        let mut hr: Vec<Vec<u64>> = h.rel.rows().map(|r| r.to_vec()).collect();
        let mut mr: Vec<Vec<u64>> = m.rel.rows().map(|r| r.to_vec()).collect();
        hr.sort();
        mr.sort();
        prop_assert_eq!(hr, mr);
        prop_assert_eq!(h.vars, m.vars);
    }

    #[test]
    fn hash_join_equals_nested_loop(a in arb_rel(10, 30), b in arb_rel(10, 30)) {
        let sa = SchemaRel { vars: vec![v(0), v(1)], rel: a.clone() };
        let sb = SchemaRel { vars: vec![v(1), v(2)], rel: b.clone() };
        let h = hash_join(&sa, &sb, 9);
        let mut expect = Vec::new();
        for ra in a.rows() {
            for rb in b.rows() {
                if ra[1] == rb[0] {
                    expect.push(vec![ra[0], ra[1], rb[1]]);
                }
            }
        }
        expect.sort();
        let mut got: Vec<Vec<u64>> = h.rel.rows().map(|r| r.to_vec()).collect();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn semijoin_equals_existence_filter(a in arb_rel(12, 40), b in arb_rel(12, 40)) {
        let sa = SchemaRel { vars: vec![v(0), v(1)], rel: a.clone() };
        let sb = SchemaRel { vars: vec![v(1), v(2)], rel: b.clone() };
        let s = semijoin(&sa, &sb, 2);
        let expect = a.filter(|ra| b.rows().any(|rb| rb[0] == ra[1]));
        prop_assert_eq!(multiset(&s.rel), multiset(&expect));
    }

    #[test]
    fn broadcast_replicates_exactly(rel in arb_rel(30, 60), workers in 1usize..8) {
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], workers);
        let (out, stats) = shuffle::broadcast(&d, "b");
        prop_assert_eq!(stats.tuples_sent, rel.len() as u64 * workers as u64);
        for p in &out.parts {
            prop_assert_eq!(multiset(p), multiset(&rel));
        }
    }

    #[test]
    fn sort_cache_view_identical_to_fresh_sort(rel in arb_rel(25, 60), swap in any::<bool>()) {
        // A private cache per case keeps this test independent of
        // whatever the global cache holds.
        let cache = SortCache::with_capacity(1 << 20);
        let cols: Vec<usize> = if swap { vec![1, 0] } else { vec![0, 1] };
        let fresh = rel.sorted_by_columns(&cols);
        let (first, _) = cache.get_or_sort(&rel, &cols, None, |r, c| r.sorted_by_columns(c));
        let (second, _) = cache.get_or_sort(&rel, &cols, None, |r, c| r.sorted_by_columns(c));
        prop_assert_eq!(first.raw(), fresh.raw());
        prop_assert_eq!(second.raw(), fresh.raw());
    }

    #[test]
    fn sort_cache_invalidates_on_relation_change(
        rel in arb_rel(25, 40),
        extra in (0u64..25, 0u64..25),
    ) {
        let cache = SortCache::with_capacity(1 << 20);
        let cols = [0usize, 1];
        cache.get_or_sort(&rel, &cols, None, |r, c| r.sorted_by_columns(c));
        let mut changed = rel.clone();
        changed.push_row(&[extra.0, extra.1]);
        let (view, _) = cache.get_or_sort(&changed, &cols, None, |r, c| r.sorted_by_columns(c));
        // The changed relation's view reflects the new content, never
        // the stale entry keyed by the old fingerprint.
        prop_assert_eq!(view.raw(), changed.sorted_by_columns(&cols).raw());
    }

    #[test]
    fn morsel_bounds_partition_on_distinct_boundaries(
        rel in arb_rel(40, 80),
        target in 1usize..12,
    ) {
        let sorted = rel.sorted_by_columns(&[0, 1]);
        let bounds = morsel_bounds(&sorted, target);
        // Shape: starts at 0, ends unbounded, contiguous and strictly
        // increasing in between.
        prop_assert_eq!(bounds[0].0, 0);
        prop_assert_eq!(bounds.last().unwrap().1, None);
        for w in bounds.windows(2) {
            let hi = w[0].1.expect("interior bound");
            prop_assert_eq!(hi, w[1].0, "morsels must be contiguous");
            prop_assert!(hi > w[0].0, "empty value interval");
            // Every interior boundary is a first-column value actually
            // present in the relation (a distinct-value boundary), and
            // above the column minimum so no morsel starts empty.
            prop_assert!(sorted.rows().any(|r| r[0] == hi));
            prop_assert!(sorted.is_empty() || hi > sorted.value(0, 0));
        }
        // Coverage without overlap: every row falls in exactly one morsel.
        for row in sorted.rows() {
            let holders = bounds
                .iter()
                .filter(|(lo, hi)| row[0] >= *lo && hi.is_none_or(|h| row[0] < h))
                .count();
            prop_assert_eq!(holders, 1, "row {row:?} in {holders} morsels");
        }
    }

    #[test]
    fn morsel_runs_concatenate_to_full_run(
        edges in arb_rel(25, 70),
        target in 1usize..8,
    ) {
        // Triangle query over random edges: running one leapfrog per
        // morsel of the depth-0 split relation and concatenating the
        // outputs in morsel order must reproduce the sequential run
        // exactly (same rows, same emission order).
        let edges = edges.distinct();
        let order = [v(0), v(1), v(2)];
        let vars: [[VarId; 2]; 3] = [[v(0), v(1)], [v(1), v(2)], [v(2), v(0)]];
        let atoms: Vec<SortedAtom> = vars
            .iter()
            .map(|vs| SortedAtom::prepare(&edges, vs, &order))
            .collect();
        let tjoin = Tributary::new(&atoms, &order, &[], 3);
        let mut full = Vec::new();
        tjoin.run(|a| { full.push(a.to_vec()); true });
        let split = atoms
            .iter()
            .filter(|a| a.depths().first() == Some(&0))
            .map(|a| a.relation())
            .min_by_key(|r| r.len())
            .expect("triangle binds the first variable");
        let mut concat = Vec::new();
        for (lo, hi) in morsel_bounds(split, target) {
            tjoin.run_range(lo, hi, |a| { concat.push(a.to_vec()); true });
        }
        prop_assert_eq!(concat, full);
    }

    #[test]
    fn parallel_prepare_identical_to_serial(
        rel in arb_rel(20, 80),
        threads in 1usize..6,
        swap in any::<bool>(),
    ) {
        let cols: Vec<usize> = if swap { vec![1, 0] } else { vec![0, 1] };
        let par = sorted_by_columns_parallel(&rel, &cols, threads);
        prop_assert_eq!(par.raw(), rel.sorted_by_columns(&cols).raw());
    }
}
