//! End-to-end tests of `certify` mode: every paper workload under every
//! shuffle × join configuration must come back with a parallel-
//! correctness certificate (R420) attached to the run — and a
//! deliberately miswired policy must be refuted with a *concrete*
//! counterexample valuation, not just a symbolic shrug.

use parjoin_analyze as analyze;
use parjoin_analyze::policy::{AtomRoute, Family, Pin, Policy, Verdict};
use parjoin_common::hash;
use parjoin_datagen::{all_queries, Scale};
use parjoin_engine::{run_config, Cluster, DiagCode, JoinAlg, PlanOptions, ShuffleAlg};
use parjoin_query::VarId;

const SIX_CONFIGS: [(ShuffleAlg, JoinAlg); 6] = [
    (ShuffleAlg::Regular, JoinAlg::Hash),
    (ShuffleAlg::Regular, JoinAlg::Tributary),
    (ShuffleAlg::Broadcast, JoinAlg::Hash),
    (ShuffleAlg::Broadcast, JoinAlg::Tributary),
    (ShuffleAlg::HyperCube, JoinAlg::Hash),
    (ShuffleAlg::HyperCube, JoinAlg::Tributary),
];

fn certify_opts() -> PlanOptions {
    PlanOptions {
        certify: true,
        ..Default::default()
    }
}

#[test]
fn all_workloads_certify_under_all_six_configs() {
    let scale = Scale::tiny();
    for spec in all_queries() {
        let db = scale.db_for(spec.dataset, 42);
        for (shuffle, join) in SIX_CONFIGS {
            let r = run_config(
                &spec.query,
                &db,
                &Cluster::new(8),
                shuffle,
                join,
                &certify_opts(),
            )
            .unwrap_or_else(|e| panic!("{} {shuffle:?}/{join:?}: {e}", spec.name));
            let certified = r
                .diagnostics
                .iter()
                .filter(|d| d.code == DiagCode::PolicyCertified)
                .count();
            assert_eq!(
                certified, 1,
                "{} {shuffle:?}/{join:?} must carry exactly one certificate: {:?}",
                spec.name, r.diagnostics
            );
            assert!(
                !r.diagnostics.iter().any(|d| matches!(
                    d.code,
                    DiagCode::PolicyCounterexample
                        | DiagCode::PolicyUnproven
                        | DiagCode::PolicyMalformed
                )),
                "{} {shuffle:?}/{join:?} must not be refuted: {:?}",
                spec.name,
                r.diagnostics
            );
            // Satellite: diagnostics come back in deterministic order
            // (sorted by code, then message, then context).
            let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.code()).collect();
            let mut sorted = codes.clone();
            sorted.sort_unstable();
            assert_eq!(codes, sorted, "{}: diagnostics must be sorted", spec.name);
            // The certificate also shows up in the human report.
            assert!(
                r.report().contains("R420"),
                "{}: report must print the certificate",
                spec.name
            );
        }
    }
}

#[test]
fn miswired_policy_is_refuted_with_a_concrete_valuation() {
    // R(x,y) ⋈ S(y,z), both sides hashed on the join variable — but
    // through *different* channels, the classic mis-seeded repartition
    // bug a sampled assert only catches when the sample happens to
    // disagree. The certifier must find a concrete valuation whose two
    // facts land on different workers.
    let (x, y, z) = (VarId(0), VarId(1), VarId(2));
    let atom_vars = vec![vec![x, y], vec![y, z]];
    let workers = 8;
    let policy = Policy {
        dims: vec![workers],
        routes: vec![
            AtomRoute::Routed(vec![Pin::Hash {
                var: y,
                channel: 0xAAAA,
                family: Family::KeyRow,
            }]),
            AtomRoute::Routed(vec![Pin::Hash {
                var: y,
                channel: 0xBBBB,
                family: Family::KeyRow,
            }]),
        ],
        label: "miswired regular".to_string(),
    };
    match analyze::policy::certify(&atom_vars, &policy, None) {
        Verdict::Refuted(cex) => {
            let val = |v: VarId| {
                cex.valuation
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map_or(0, |(_, n)| *n)
            };
            let left = hash::bucket_row(&[val(y)], 0xAAAA, workers);
            let right = hash::bucket_row(&[val(y)], 0xBBBB, workers);
            assert_ne!(
                left, right,
                "counterexample must disagree under the engine's real hash: {cex:?}"
            );
            // And it renders as a typed R421 diagnostic.
            let mut out = Vec::new();
            analyze::policy::push_negative_verdict(
                analyze::policy::certify(&atom_vars, &policy, None),
                "step 1",
                None,
                &mut out,
            );
            assert!(
                out.iter().any(|d| d.code == DiagCode::PolicyCounterexample),
                "{out:?}"
            );
        }
        v => panic!("miswired policy must be refuted, got {v:?}"),
    }
}

#[test]
fn certified_sort_cache_hits_across_runs() {
    // Two identical HyperCube/Tributary runs: the second run's sorted
    // views must come out of the cache as *certified* hits — the route
    // signature proves the cached fragments' placement matches.
    let spec = all_queries().remove(0);
    let db = Scale::tiny().db_for(spec.dataset, 7);
    let cluster = Cluster::new(8);
    let first = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &certify_opts(),
    )
    .unwrap_or_else(|e| panic!("first run: {e}"));
    let second = run_config(
        &spec.query,
        &db,
        &cluster,
        ShuffleAlg::HyperCube,
        JoinAlg::Tributary,
        &certify_opts(),
    )
    .unwrap_or_else(|e| panic!("second run: {e}"));
    assert!(
        first.sort_cache_certified_hits + second.sort_cache_certified_hits > 0,
        "certified reuse must register: first={} second={}",
        first.sort_cache_certified_hits,
        second.sort_cache_certified_hits
    );
    assert!(
        second.sort_cache_certified_hits >= second.sort_cache_misses
            || second.sort_cache_certified_hits > 0,
        "second run should mostly hit: {}",
        second.report()
    );
}
