//! The three shuffle algorithms of §3: regular (single-attribute-set hash
//! partition), broadcast, and HyperCube.
//!
//! Every shuffle returns the repartitioned relation *and* a
//! [`ShuffleStats`] carrying exactly the paper's Tables 2–4 metrics:
//! total tuples sent, per-producer and per-consumer tallies (from which
//! the max/avg skew factors derive). Following the paper's accounting,
//! a tuple counts as "sent" even when its destination equals its source
//! worker (Table 2 charges the full 1,114,289 tuples for `R(x,y) ->h(y)`).
//!
//! Each shuffle is expressed as a [`Router`] closure (row → destination
//! set) handed to the worker runtime. The `*_via` variants take an
//! optional [`Runtime`]: with `None` they run the sequential Local loop
//! (byte-for-byte the original simulator, zero bytes moved); with a
//! runtime they stream encoded batches through its transport and the
//! returned stats carry real `bytes_sent`/`bytes_received`. Row order of
//! the output partitions is identical either way, so results are
//! byte-identical across transports.

use crate::dist::DistRel;
use crate::error::EngineError;
use parjoin_common::{hash, Relation, ShuffleStats};
use parjoin_core::hypercube::HcConfig;
use parjoin_query::VarId;
use parjoin_runtime::{local_shuffle, Router, Runtime};
use std::sync::Arc;

/// Derives a deterministic seed for hashing on a specific variable set,
/// so that the two sides of a join partition identically.
pub fn join_key_seed(base: u64, on: &[VarId]) -> u64 {
    let mut sorted: Vec<u64> = on.iter().map(|v| u64::from(v.0)).collect();
    sorted.sort_unstable();
    hash::key_seed(base, &sorted)
}

/// Runs `router` over `input` — sequentially when `rt` is `None`
/// (the Local path), through the runtime's transport otherwise — and
/// packages the outcome as the engine's types.
fn run_router(
    input: &DistRel,
    router: Router,
    label: impl Into<String>,
    rt: Option<&Runtime>,
) -> Result<(DistRel, ShuffleStats), EngineError> {
    let outcome = match rt {
        None => local_shuffle(&input.parts, &router),
        Some(rt) => rt.shuffle(input.parts.clone(), router)?,
    };
    let stats = ShuffleStats::new(label, outcome.per_producer, outcome.per_consumer)
        .with_bytes(outcome.bytes_sent, outcome.bytes_received)
        .with_raw_bytes(outcome.bytes_sent_raw);
    let mut parts = outcome.parts;
    // An all-empty input gives the runtime no partition to read the
    // arity from; restore the schema arity so downstream joins see the
    // right column count.
    let arity = input.vars.len();
    for p in &mut parts {
        if p.is_empty() && p.arity() != arity {
            *p = Relation::new(arity);
        }
    }
    Ok((
        DistRel {
            vars: input.vars.clone(),
            parts,
        },
        stats,
    ))
}

/// The [`Router`] of the regular shuffle: one destination per row, the
/// hash bucket of the key columns.
fn regular_router(cols: Vec<usize>, seed: u64, workers: usize) -> Router {
    Arc::new(move |_w, row, dests| {
        if let [c] = cols.as_slice() {
            // Single-column keys (the common case) route through a stack
            // array — no per-row allocation.
            dests.push(hash::bucket_row(&[row[*c]], seed, workers));
        } else {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            dests.push(hash::bucket_row(&key, seed, workers));
        }
    })
}

/// Builds the regular-shuffle [`Router`] for a relation with schema
/// `vars`, keyed on `on`. This is the exact router `regular_via` hands
/// the runtime, factored out so a remote worker executing a shipped
/// fragment routes rows identically to the local simulator.
pub(crate) fn regular_router_for(
    vars: &[VarId],
    on: &[VarId],
    base_seed: u64,
    workers: usize,
) -> Router {
    let seed = join_key_seed(base_seed, on);
    let mut on_sorted: Vec<VarId> = on.to_vec();
    on_sorted.sort_unstable();
    let cols: Vec<usize> = on_sorted
        .iter()
        .map(|&v| {
            vars.iter()
                .position(|&x| x == v)
                // Shuffle keys come from the relation's own schema.
                // xtask: allow(expect)
                .expect("shuffle key must be in the relation schema")
        })
        .collect();
    regular_router(cols, seed, workers)
}

/// Builds the broadcast [`Router`]: every row to every worker.
pub(crate) fn broadcast_router(workers: usize) -> Router {
    Arc::new(move |_w, _row, dests| dests.extend(0..workers))
}

/// Builds the HyperCube [`Router`] for a relation with schema `vars`
/// under `config`. Shared by `hypercube_via` and remote fragment
/// execution so both hash coordinates with the same per-dimension seeds.
pub(crate) fn hypercube_router_for(vars: &[VarId], config: &HcConfig, base_seed: u64) -> Router {
    let k = config.dims().len();
    // Per-dimension hash seeds (independent h_i per variable).
    let seeds: Vec<u64> = (0..k).map(|d| hash::dimension_seed(base_seed, d)).collect();
    // Which dimensions this atom pins, and from which column.
    let pinned: Vec<Option<usize>> = config
        .vars()
        .iter()
        .map(|&v| vars.iter().position(|&x| x == v))
        .collect();
    hypercube_router(config.clone(), pinned, seeds)
}

/// Regular shuffle: hash-partition on the values of `on` (in sorted
/// variable order, so both join sides agree).
pub fn regular(
    input: &DistRel,
    on: &[VarId],
    label: impl Into<String>,
    base_seed: u64,
) -> (DistRel, ShuffleStats) {
    // With no transport (`None`) the in-memory path has no error
    // source. xtask: allow(expect)
    regular_via(input, on, label, base_seed, None).expect("local shuffle cannot fail")
}

/// [`regular`], executed on `rt`'s transport when one is given.
///
/// # Errors
/// [`EngineError::Transport`] if the runtime's exchange fails.
pub fn regular_via(
    input: &DistRel,
    on: &[VarId],
    label: impl Into<String>,
    base_seed: u64,
    rt: Option<&Runtime>,
) -> Result<(DistRel, ShuffleStats), EngineError> {
    let workers = input.workers();
    run_router(
        input,
        regular_router_for(&input.vars, on, base_seed, workers),
        label,
        rt,
    )
}

/// Broadcast shuffle: every worker receives the full relation.
pub fn broadcast(input: &DistRel, label: impl Into<String>) -> (DistRel, ShuffleStats) {
    // With no transport (`None`) the in-memory path has no error
    // source. xtask: allow(expect)
    broadcast_via(input, label, None).expect("local shuffle cannot fail")
}

/// [`broadcast`], executed on `rt`'s transport when one is given.
///
/// # Errors
/// [`EngineError::Transport`] if the runtime's exchange fails.
pub fn broadcast_via(
    input: &DistRel,
    label: impl Into<String>,
    rt: Option<&Runtime>,
) -> Result<(DistRel, ShuffleStats), EngineError> {
    let workers = input.workers();
    run_router(input, broadcast_router(workers), label, rt)
}

/// HyperCube shuffle: each tuple is sent to every cell of the hypercube
/// matching its hashed coordinates on the atom's variables; unconstrained
/// dimensions replicate (paper §2.1). Cell `i` is worker `i` (one cell
/// per worker, the paper's Algorithm 1 regime).
///
/// # Panics
/// Panics if the input has more workers than the configuration has cells;
/// the caller sizes the cluster from `config.num_cells()`.
pub fn hypercube(
    input: &DistRel,
    config: &HcConfig,
    label: impl Into<String>,
    base_seed: u64,
) -> (DistRel, ShuffleStats) {
    // With no transport (`None`) the in-memory path has no error
    // source. xtask: allow(expect)
    hypercube_via(input, config, label, base_seed, None).expect("local shuffle cannot fail")
}

/// The [`Router`] of the HyperCube shuffle: hash the pinned dimensions,
/// enumerate the slab over the free ones (mixed-radix order).
fn hypercube_router(config: HcConfig, pinned: Vec<Option<usize>>, seeds: Vec<u64>) -> Router {
    let dims: Vec<usize> = config.dims().to_vec();
    let k = dims.len();
    let free_dims: Vec<usize> = (0..k).filter(|&d| pinned[d].is_none()).collect();
    Arc::new(move |_w, row, dests| {
        let mut coords = vec![0usize; k];
        for d in 0..k {
            if let Some(col) = pinned[d] {
                coords[d] = hash::bucket(row[col], seeds[d], dims[d]);
            }
        }
        loop {
            dests.push(config.cell_index(&coords));
            // Mixed-radix increment over free dims.
            let mut advanced = false;
            for &d in &free_dims {
                coords[d] += 1;
                if coords[d] < dims[d] {
                    advanced = true;
                    break;
                }
                coords[d] = 0;
            }
            if !advanced {
                break;
            }
        }
    })
}

/// [`hypercube`], executed on `rt`'s transport when one is given.
///
/// # Errors
/// [`EngineError::Transport`] if the runtime's exchange fails.
///
/// # Panics
/// Panics if the input has more workers than the configuration has cells.
pub fn hypercube_via(
    input: &DistRel,
    config: &HcConfig,
    label: impl Into<String>,
    base_seed: u64,
    rt: Option<&Runtime>,
) -> Result<(DistRel, ShuffleStats), EngineError> {
    let workers = input.workers();
    assert!(
        config.num_cells() <= workers,
        "configuration has {} cells but only {workers} workers",
        config.num_cells()
    );
    run_router(
        input,
        hypercube_router_for(&input.vars, config, base_seed),
        label,
        rt,
    )
}

/// Heavy-hitter-resilient co-shuffle of a join pair (the paper's
/// footnote 2: "Some parallel hash join algorithms detect the heavy
/// hitters and treat them specially, to avoid skew").
///
/// Keys whose combined frequency exceeds `factor × total/workers` are
/// *heavy*: the side where the key is more frequent is spread across all
/// workers (row-hash placement), while the other side's matching tuples
/// are replicated to every worker, so every joining pair still meets
/// exactly once. Light keys hash-partition normally. This bounds the
/// per-worker load at the cost of replicating the (small) other side of
/// each hot key — the PRPD idea.
pub fn skew_resilient_pair(
    a: &DistRel,
    b: &DistRel,
    on: &[VarId],
    labels: (&str, &str),
    base_seed: u64,
    factor: f64,
) -> (DistRel, DistRel, ShuffleStats, ShuffleStats, usize) {
    use std::collections::HashMap;
    let workers = a.workers();
    assert_eq!(workers, b.workers(), "both sides on the same cluster");
    let seed = join_key_seed(base_seed, on);
    let mut on_sorted: Vec<VarId> = on.to_vec();
    on_sorted.sort_unstable();
    let a_cols: Vec<usize> = on_sorted.iter().map(|&v| a.col_of(v)).collect();
    let b_cols: Vec<usize> = on_sorted.iter().map(|&v| b.col_of(v)).collect();

    // Global key frequencies (the simulator can see them exactly; a real
    // engine samples).
    let mut freq_a: HashMap<Vec<u64>, u64> = HashMap::new();
    let mut freq_b: HashMap<Vec<u64>, u64> = HashMap::new();
    for part in &a.parts {
        for row in part.rows() {
            let key: Vec<u64> = a_cols.iter().map(|&c| row[c]).collect();
            *freq_a.entry(key).or_insert(0) += 1;
        }
    }
    for part in &b.parts {
        for row in part.rows() {
            let key: Vec<u64> = b_cols.iter().map(|&c| row[c]).collect();
            *freq_b.entry(key).or_insert(0) += 1;
        }
    }
    let total = (a.total_len() + b.total_len()) as f64;
    let threshold = factor * total / workers as f64;
    // Heavy keys, with the decision of which side to spread.
    let mut heavy_spread_a: HashMap<Vec<u64>, bool> = HashMap::new();
    for (key, &fa) in &freq_a {
        let fb = freq_b.get(key).copied().unwrap_or(0);
        if (fa + fb) as f64 > threshold {
            heavy_spread_a.insert(key.clone(), fa >= fb);
        }
    }
    for (key, &fb) in &freq_b {
        if !heavy_spread_a.contains_key(key) {
            let fa = freq_a.get(key).copied().unwrap_or(0);
            if (fa + fb) as f64 > threshold {
                heavy_spread_a.insert(key.clone(), fa >= fb);
            }
        }
    }

    let route = |input: &DistRel, cols: &[usize], is_a: bool| -> (DistRel, ShuffleStats) {
        let mut parts: Vec<Relation> = (0..workers)
            .map(|_| Relation::new(input.vars.len()))
            .collect();
        let mut per_producer = vec![0u64; workers];
        let mut per_consumer = vec![0u64; workers];
        let mut key = Vec::with_capacity(cols.len());
        for (w, part) in input.parts.iter().enumerate() {
            for row in part.rows() {
                key.clear();
                key.extend(cols.iter().map(|&c| row[c]));
                match heavy_spread_a.get(key.as_slice()) {
                    None => {
                        let dest = hash::bucket_row(&key, seed, workers);
                        per_producer[w] += 1;
                        per_consumer[dest] += 1;
                        parts[dest].push_row(row);
                    }
                    Some(&spread_a) if spread_a == is_a => {
                        // Spread side: place by a hash of the whole row so
                        // the hot key's tuples scatter evenly.
                        let dest = hash::bucket_row(row, seed ^ 0xdead_beef, workers);
                        per_producer[w] += 1;
                        per_consumer[dest] += 1;
                        parts[dest].push_row(row);
                    }
                    Some(_) => {
                        // Replicated side: every worker gets a copy.
                        per_producer[w] += workers as u64;
                        for (dest, p) in parts.iter_mut().enumerate() {
                            per_consumer[dest] += 1;
                            p.push_row(row);
                        }
                    }
                }
            }
        }
        (
            DistRel {
                vars: input.vars.clone(),
                parts,
            },
            ShuffleStats::new(
                format!(
                    "{} ->skew-resilient",
                    if is_a { labels.0 } else { labels.1 }
                ),
                per_producer,
                per_consumer,
            ),
        )
    };
    let (out_a, stats_a) = route(a, &a_cols, true);
    let (out_b, stats_b) = route(b, &b_cols, false);
    let heavy = heavy_spread_a.len();
    (out_a, out_b, stats_a, stats_b, heavy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_common::Relation;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn edges(n: u64) -> Relation {
        Relation::from_rows(
            2,
            (0..n)
                .map(|i| [i, (i * 7 + 1) % n])
                .collect::<Vec<_>>()
                .iter(),
        )
    }

    #[test]
    fn regular_is_a_partition() {
        let rel = edges(100);
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 8);
        let (out, stats) = regular(&d, &[v(1)], "t", 42);
        assert_eq!(out.total_len(), 100);
        assert_eq!(stats.tuples_sent, 100);
        // Same key value → same destination.
        for part in &out.parts {
            for row in part.rows() {
                let expect = hash::bucket_row(&[row[1]], join_key_seed(42, &[v(1)]), 8);
                let here = out
                    .parts
                    .iter()
                    .position(|p| p.rows().any(|r| r == row))
                    .unwrap();
                assert_eq!(here, expect);
            }
        }
    }

    #[test]
    fn regular_co_partitions_both_sides() {
        // Two relations shuffled on the same variable agree on buckets
        // even when the variable sits in different columns.
        let a = edges(50);
        let b = edges(50).project(&[1, 0]); // swap columns
        let da = DistRel::round_robin(&a, vec![v(0), v(1)], 4);
        let db = DistRel::round_robin(&b, vec![v(1), v(0)], 4);
        let (oa, _) = regular(&da, &[v(1)], "a", 9);
        let (ob, _) = regular(&db, &[v(1)], "b", 9);
        // Every y value must live in exactly one partition of each side,
        // and the partition indices must match.
        for w in 0..4 {
            for row in oa.parts[w].rows() {
                let y = row[1];
                for (w2, p2) in ob.parts.iter().enumerate() {
                    if p2.rows().any(|r| r[0] == y) {
                        assert_eq!(w, w2, "y={y} split across workers");
                    }
                }
            }
        }
    }

    #[test]
    fn regular_multi_attr_key_order_canonical() {
        // Shuffling on [x, y] and [y, x] must route identically.
        let rel = edges(64);
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 8);
        let (a, _) = regular(&d, &[v(0), v(1)], "a", 5);
        let (b, _) = regular(&d, &[v(1), v(0)], "b", 5);
        for w in 0..8 {
            assert_eq!(
                a.parts[w].clone().distinct().raw(),
                b.parts[w].clone().distinct().raw()
            );
        }
    }

    #[test]
    fn broadcast_replicates_everywhere() {
        let rel = edges(30);
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 5);
        let (out, stats) = broadcast(&d, "b");
        assert_eq!(stats.tuples_sent, 150);
        assert!((stats.consumer_skew() - 1.0).abs() < 1e-12);
        for p in &out.parts {
            assert_eq!(p.len(), 30);
        }
    }

    #[test]
    fn hypercube_triangle_replication_factor() {
        // 4×4×4 cube: an atom pinning 2 of 3 dims replicates each tuple
        // 4× (paper: "Each relation … is replicated 4 times").
        let rel = edges(200);
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 64);
        let cfg = HcConfig::new(vec![v(0), v(1), v(2)], vec![4, 4, 4]);
        let (out, stats) = hypercube(&d, &cfg, "hcs", 7);
        assert_eq!(stats.tuples_sent, 800);
        assert_eq!(out.total_len(), 800);
    }

    #[test]
    fn hypercube_all_vars_pinned_partitions() {
        // An atom containing every dimension variable is partitioned, not
        // replicated.
        let rel = edges(100);
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 16);
        let cfg = HcConfig::new(vec![v(0), v(1)], vec![4, 4]);
        let (out, stats) = hypercube(&d, &cfg, "hcs", 7);
        assert_eq!(stats.tuples_sent, 100);
        assert_eq!(out.total_len(), 100);
    }

    #[test]
    fn hypercube_meets_joining_tuples() {
        // Correctness core: for R(x,y), S(y,z), any pair of tuples
        // agreeing on y must share at least one worker.
        let r = edges(40);
        let s = edges(40);
        let dr = DistRel::round_robin(&r, vec![v(0), v(1)], 8);
        let ds = DistRel::round_robin(&s, vec![v(1), v(2)], 8);
        let cfg = HcConfig::new(vec![v(0), v(1), v(2)], vec![2, 2, 2]);
        let (or, _) = hypercube(&dr, &cfg, "r", 3);
        let (os, _) = hypercube(&ds, &cfg, "s", 3);
        for rr in r.rows() {
            for sr in s.rows() {
                if rr[1] != sr[0] {
                    continue;
                }
                let meet = (0..8).any(|w| {
                    or.parts[w].rows().any(|x| x == rr) && os.parts[w].rows().any(|x| x == sr)
                });
                assert!(meet, "tuples {rr:?} ⋈ {sr:?} never meet");
            }
        }
    }

    #[test]
    fn hypercube_unique_cell_for_full_assignment() {
        // With every variable given a dimension, a fully bound assignment
        // maps to exactly one cell: count each tuple's copies of an
        // all-vars atom.
        let rel = edges(64);
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 6);
        let cfg = HcConfig::new(vec![v(0), v(1)], vec![3, 2]);
        let (out, _) = hypercube(&d, &cfg, "x", 11);
        assert_eq!(out.total_len(), 64); // no replication
    }

    #[test]
    fn skew_resilient_meets_all_pairs() {
        // Heavily skewed y: one hot key plus a light tail.
        let mut a = Relation::new(2);
        let mut b = Relation::new(2);
        for i in 0..200u64 {
            a.push_row(&[i, 7]); // hot key 7 on the a side
        }
        for i in 0..20u64 {
            a.push_row(&[i + 1000, i]);
            b.push_row(&[7, i + 500]); // a few b-side matches for the hot key
            b.push_row(&[i, i]);
        }
        let da = DistRel::round_robin(&a, vec![v(0), v(1)], 8);
        let db = DistRel::round_robin(&b, vec![v(1), v(2)], 8);
        let (oa, ob, sa, sb, heavy) = skew_resilient_pair(&da, &db, &[v(1)], ("A", "B"), 3, 2.0);
        assert!(heavy >= 1, "key 7 must be detected as heavy");
        // Correctness: every joining pair meets at exactly one worker.
        for ra in a.rows() {
            for rb in b.rows() {
                if ra[1] != rb[0] {
                    continue;
                }
                let meets = (0..8)
                    .filter(|&w| {
                        oa.parts[w].rows().any(|x| x == ra) && ob.parts[w].rows().any(|x| x == rb)
                    })
                    .count();
                assert!(meets >= 1, "{ra:?} ⋈ {rb:?} never meets");
            }
        }
        // Load balance: the hot key's 200 tuples no longer pile onto one
        // worker.
        assert!(
            sa.consumer_skew() < 2.0,
            "spread side balanced: {}",
            sa.consumer_skew()
        );
        // The replicated side pays duplication.
        assert!(sb.tuples_sent > b.len() as u64);
    }

    #[test]
    fn skew_resilient_no_heavy_equals_regular_routing() {
        let rel = edges(64);
        let da = DistRel::round_robin(&rel, vec![v(0), v(1)], 4);
        let db2 = DistRel::round_robin(&rel, vec![v(1), v(2)], 4);
        // Absurdly high threshold: nothing is heavy.
        let (oa, _ob, sa, _sb, heavy) = skew_resilient_pair(&da, &db2, &[v(1)], ("A", "B"), 9, 1e9);
        assert_eq!(heavy, 0);
        let (ra, rs) = regular(&da, &[v(1)], "A", 9);
        assert_eq!(sa.tuples_sent, rs.tuples_sent);
        for w in 0..4 {
            assert_eq!(
                oa.parts[w].clone().distinct().raw(),
                ra.parts[w].clone().distinct().raw(),
                "light-key routing must match the regular shuffle"
            );
        }
    }

    #[test]
    fn join_key_seed_is_order_insensitive() {
        assert_eq!(
            join_key_seed(1, &[v(2), v(5)]),
            join_key_seed(1, &[v(5), v(2)])
        );
        assert_ne!(join_key_seed(1, &[v(2)]), join_key_seed(1, &[v(3)]));
    }
}
