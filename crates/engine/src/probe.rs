//! Intra-worker morsel-parallel probe for the local join operators.
//!
//! PR 3's parallel *prepare* claims the host cores left idle by the
//! worker pool during the sort phase; this module does the same for the
//! *probe* phase — the dominant cost once sorts are fast (morsel-driven
//! parallelism in the sense of Leis et al., SIGMOD 2014):
//!
//! * **Tributary join** — the first global variable's value domain is
//!   split into disjoint ranges using the sorted first trie level of the
//!   smallest atom that binds it ([`morsel_bounds`]). Split points land
//!   on distinct-value boundaries by construction (ranges are half-open
//!   value intervals, and a value's whole run falls on one side), so
//!   morsels are independent: each runs a full leapfrog instance via
//!   [`Tributary::run_range`]. The probe is generic over
//!   [`ProbeAtom`] — any trie layout that can donate a sorted split
//!   domain (row-major [`SortedAtom`] or columnar
//!   [`ColumnarAtom`](parjoin_core::tributary::ColumnarAtom)).
//! * **Hash join / semijoin** — the probe (resp. filtered) side is cut
//!   into contiguous row ranges over a shared read-only
//!   [`JoinTable`](crate::local::JoinTable).
//!
//! **Scheduling.** Two morsel schedulers coexist ([`MorselSched`]):
//!
//! * [`MorselSched::WorkStealing`] (default) — morsels are dealt to
//!   per-thread deques in contiguous blocks; a thread drains its own
//!   deque front-first (locality) and, when empty, steals from the
//!   *back* of the next non-empty victim. The morsel count adapts to
//!   the split domain's cardinality (one morsel per
//!   [`MORSEL_TARGET_ROWS`] rows, clamped to
//!   `threads ..= threads × MAX_MORSELS_PER_THREAD`), so a skewed value
//!   range decomposes into many fine morsels that idle threads soak up.
//!   Steals are counted and surfaced as `engine.probe.steals`.
//! * [`MorselSched::FixedQuota`] — the PR 3 scheduler (a shared ticket
//!   counter over `4 × threads` morsels), kept as the bench baseline.
//!
//! **Determinism.** The depth-0 leapfrog enumerates values in ascending
//! order and the hash probe scans rows in input order, so concatenating
//! per-morsel output buffers in morsel order reproduces the sequential
//! output *byte-identically* (asserted query-by-query by the
//! `probe_parallel` and `layout_parity` integration suites). Stealing
//! changes *which thread* runs a morsel, never which output slot it
//! fills — results are reassembled in morsel index order. Morsel
//! workers never share mutable state — each gets its own cursors and
//! output buffer.
//!
//! Thread budget: like prepare, a worker gets `host_cores / workers`
//! probe threads (at least 1) — worker-level parallelism keeps priority,
//! and `workers >= cores` degrades to the sequential path (surfaced by
//! analyzer diagnostic R413).

use crate::local::{semijoin as local_semijoin, HashJoinShape, SchemaRel, SemijoinShape};
use crate::prepare;
use parjoin_common::{Relation, Value};
use parjoin_core::tributary::{ColumnarAtom, SortedAtom, Tributary, TrieAtom};
use parjoin_query::VarId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Minimum probe-side rows (hash join/semijoin) or split-trie rows
/// (Tributary) before morsel dispatch pays for its thread handoffs.
pub const MORSEL_MIN_ROWS: usize = 4096;

/// Morsels carved per probe thread under [`MorselSched::FixedQuota`].
/// More than 1 so a skewed morsel (one hot value range) can be soaked up
/// by threads that finish early.
const MORSELS_PER_THREAD: usize = 4;

/// Target split-domain rows per morsel under
/// [`MorselSched::WorkStealing`]: the morsel count is derived from the
/// data (`rows / MORSEL_TARGET_ROWS`) instead of a fixed thread
/// multiple, so bigger inputs get proportionally more morsels for the
/// stealer to balance.
pub const MORSEL_TARGET_ROWS: usize = 2048;

/// Upper clamp on adaptive morsels per thread — bounds per-morsel
/// dispatch overhead on huge inputs.
pub const MAX_MORSELS_PER_THREAD: usize = 32;

/// Which morsel scheduler dispatches probe work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MorselSched {
    /// Shared ticket counter over `4 × threads` morsels (PR 3 baseline).
    FixedQuota,
    /// Per-thread deques with back-stealing and an adaptive morsel count.
    #[default]
    WorkStealing,
}

/// Probe threads available to each worker of a phase: identical to the
/// prepare-phase rule (`host_cores / workers`, at least 1) — both phases
/// draw from the same pool of leftover cores.
pub fn probe_threads(workers: usize, host: Option<usize>) -> usize {
    prepare::prepare_threads(workers, host)
}

/// [`probe_threads`] for the actual host.
pub fn probe_threads_for_host(workers: usize) -> usize {
    prepare::prepare_threads_for_host(workers)
}

/// A trie layout the morsel scheduler can split: exposes the sorted
/// first-level key domain that [`morsel_bounds_by`] samples. Implemented
/// by the row-major [`SortedAtom`] (level 0 = first column of the sorted
/// relation, duplicates included) and the columnar
/// [`ColumnarAtom`](parjoin_core::tributary::ColumnarAtom) (level 0 =
/// deduplicated key array).
pub trait ProbeAtom: TrieAtom + Sync {
    /// Rows of the underlying relation (duplicates included) — what the
    /// [`MORSEL_MIN_ROWS`] gate and the adaptive morsel count compare
    /// against.
    fn split_rows(&self) -> usize;
    /// Length of the sorted split-key sequence.
    fn split_len(&self) -> usize;
    /// The `k`-th key of the split sequence (nondecreasing in `k`).
    fn split_key(&self, k: usize) -> Value;
}

impl ProbeAtom for SortedAtom {
    fn split_rows(&self) -> usize {
        self.relation().len()
    }
    fn split_len(&self) -> usize {
        self.relation().len()
    }
    fn split_key(&self, k: usize) -> Value {
        self.relation().value(k, 0)
    }
}

impl ProbeAtom for ColumnarAtom {
    fn split_rows(&self) -> usize {
        self.trie().rows()
    }
    fn split_len(&self) -> usize {
        self.trie().level0().len()
    }
    fn split_key(&self, k: usize) -> Value {
        self.trie().level0()[k]
    }
}

/// Splits the value domain of a sorted key sequence (`key_at(0..len)`,
/// nondecreasing) into up to `target` half-open ranges `[lo, hi)`
/// (`hi = None` = unbounded) of roughly equal key count. The returned
/// ranges start at 0, are contiguous and disjoint, and every interior
/// boundary is a distinct key present in the sequence — i.e. each split
/// lands exactly on the start of that key's run, never inside one, and
/// never on the minimum (which would make the first morsel empty).
pub fn morsel_bounds_by<K: Fn(usize) -> Value>(
    len: usize,
    key_at: K,
    target: usize,
) -> Vec<(Value, Option<Value>)> {
    if len == 0 || target <= 1 {
        return vec![(0, None)];
    }
    let min = key_at(0);
    let mut cuts: Vec<Value> = Vec::new();
    for k in 1..target {
        // Sorted input: sampling at evenly spaced positions yields
        // nondecreasing values; dropping duplicates (and anything not
        // above the minimum, which would make the first morsel empty)
        // keeps cuts strictly increasing.
        let v = key_at(k * len / target);
        if v > min && cuts.last().is_none_or(|&l| v > l) {
            cuts.push(v);
        }
    }
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut lo = 0;
    for &c in &cuts {
        out.push((lo, Some(c)));
        lo = c;
    }
    out.push((lo, None));
    out
}

/// [`morsel_bounds_by`] over the first column of a lexicographically
/// sorted relation.
pub fn morsel_bounds(rel: &Relation, target: usize) -> Vec<(Value, Option<Value>)> {
    if rel.arity() == 0 {
        return vec![(0, None)];
    }
    morsel_bounds_by(rel.len(), |k| rel.value(k, 0), target)
}

/// Adaptive morsel count for the work-stealing scheduler: one morsel per
/// [`MORSEL_TARGET_ROWS`] rows of the split domain, at least one per
/// thread, at most [`MAX_MORSELS_PER_THREAD`] per thread.
fn adaptive_morsels(rows: usize, threads: usize) -> usize {
    (rows / MORSEL_TARGET_ROWS).clamp(threads, threads * MAX_MORSELS_PER_THREAD)
}

/// Runs `f(0..n)` on up to `threads` scoped threads, morsels claimed
/// dynamically from a shared ticket counter; returns results in index
/// order.
fn scatter<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n).max(1);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Morsel claim ticket: the counter is the only shared
                // state and carries no data dependencies, so relaxed
                // ordering is safe. xtask: allow(ordering)
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= n {
                    break;
                }
                let r = f(m);
                slots.lock().unwrap_or_else(PoisonError::into_inner)[m] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        // The cursor hands out every index in 0..n exactly once and the
        // scope joins all workers before this runs. xtask: allow(expect)
        .map(|s| s.expect("every morsel ran"))
        .collect()
}

/// Runs `f(0..n)` on up to `threads` scoped threads with work stealing:
/// morsels are dealt to per-thread deques in contiguous blocks; each
/// thread pops its own deque front-first and, when empty, steals from
/// the back of the next non-empty victim. Returns `(results in index
/// order, steals)`.
///
/// Termination is safe because morsels are never re-queued: once every
/// deque is empty each morsel has been claimed by exactly one thread,
/// and a thread exits after one full sweep finds nothing to steal.
fn scatter_stealing<T, F>(n: usize, threads: usize, f: F) -> (Vec<T>, u64)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n).max(1);
    if threads <= 1 {
        return ((0..n).map(f).collect(), 0);
    }
    let per = n.div_ceil(threads);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|t| Mutex::new(((t * per).min(n)..((t + 1) * per).min(n)).collect()))
        .collect();
    let steals = AtomicU64::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let deques = &deques;
            let steals = &steals;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let mut task = deques[t]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .pop_front();
                if task.is_none() {
                    for k in 1..threads {
                        let victim = (t + k) % threads;
                        let got = deques[victim]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_back();
                        if got.is_some() {
                            // Diagnostic tally only — no thread reads it
                            // for control flow. xtask: allow(ordering)
                            steals.fetch_add(1, Ordering::Relaxed);
                            task = got;
                            break;
                        }
                    }
                }
                let Some(m) = task else { break };
                let r = f(m);
                slots.lock().unwrap_or_else(PoisonError::into_inner)[m] = Some(r);
            });
        }
    });
    let out = slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        // Every morsel index was dealt to exactly one deque and claimed
        // by exactly one thread; the scope joins all workers before this
        // runs. xtask: allow(expect)
        .map(|s| s.expect("every morsel ran"))
        .collect();
    // All workers joined; plain load. xtask: allow(ordering)
    (out, steals.load(Ordering::Relaxed))
}

/// One probe operation's result plus scheduler counters.
pub struct ProbeOutcome {
    /// The operator output.
    pub rel: Relation,
    /// Morsels executed; 1 means the sequential path ran.
    pub morsels: u64,
    /// Morsels a thread claimed from another thread's deque (always 0
    /// for the sequential and fixed-quota paths).
    pub steals: u64,
}

/// Runs `tj`, materializing the projection onto `head`, with up to
/// `threads` morsel threads under `sched`. `atoms` must be the slice
/// `tj` was built over — the smallest atom whose first trie level is the
/// first global variable donates its sorted level-0 keys as the split
/// domain. Output is byte-identical to the sequential `tj.run` collect
/// loop regardless of scheduler, thread count, or trie layout.
pub fn tributary_probe_sched<A: ProbeAtom>(
    tj: &Tributary<'_, A>,
    atoms: &[A],
    head: &[VarId],
    threads: usize,
    sched: MorselSched,
) -> ProbeOutcome {
    let collect_range = |lo: Value, hi: Option<Value>| {
        let mut out = Relation::new(head.len());
        let mut row = Vec::with_capacity(head.len());
        tj.run_range(lo, hi, |asg| {
            row.clear();
            row.extend(head.iter().map(|v| asg[v.index()]));
            out.push_row(&row);
            true
        });
        out
    };
    let collect_seq = || ProbeOutcome {
        rel: collect_range(0, None),
        morsels: 1,
        steals: 0,
    };
    // The smallest depth-0 atom bounds the number of distinct first-
    // variable values most tightly, giving the most even value split.
    let split = atoms
        .iter()
        .filter(|a| a.depths().first() == Some(&0))
        .min_by_key(|a| a.split_rows());
    let Some(split) = split else {
        return collect_seq();
    };
    if threads <= 1 || split.split_rows() < MORSEL_MIN_ROWS {
        return collect_seq();
    }
    let target = match sched {
        MorselSched::FixedQuota => threads * MORSELS_PER_THREAD,
        MorselSched::WorkStealing => adaptive_morsels(split.split_rows(), threads),
    };
    let bounds = morsel_bounds_by(split.split_len(), |k| split.split_key(k), target);
    if bounds.len() <= 1 {
        return collect_seq();
    }
    let run_morsel = |m: usize| {
        let (lo, hi) = bounds[m];
        collect_range(lo, hi)
    };
    let (parts, steals) = match sched {
        MorselSched::FixedQuota => (scatter(bounds.len(), threads, run_morsel), 0),
        MorselSched::WorkStealing => scatter_stealing(bounds.len(), threads, run_morsel),
    };
    let mut it = parts.into_iter();
    // One part per morsel and at least one morsel always exists.
    // xtask: allow(expect)
    let mut rel = it.next().expect("at least one morsel");
    for p in it {
        rel.extend_from(&p);
    }
    ProbeOutcome {
        rel,
        morsels: bounds.len() as u64,
        steals,
    }
}

/// [`tributary_probe_sched`] under the default work-stealing scheduler.
pub fn tributary_probe<A: ProbeAtom>(
    tj: &Tributary<'_, A>,
    atoms: &[A],
    head: &[VarId],
    threads: usize,
) -> ProbeOutcome {
    tributary_probe_sched(tj, atoms, head, threads, MorselSched::WorkStealing)
}

/// [`crate::local::hash_join`] with up to `threads` work-stealing morsel
/// threads over the probe side; byte-identical output. Returns
/// `(result, morsels, steals)`.
pub fn hash_join_parallel(
    a: &SchemaRel,
    b: &SchemaRel,
    seed: u64,
    threads: usize,
) -> (SchemaRel, u64, u64) {
    let shape = HashJoinShape::new(a, b, seed);
    let n = shape.probe_len();
    if threads <= 1 || n < MORSEL_MIN_ROWS {
        let rel = shape.probe_range(0, n);
        return (
            SchemaRel {
                vars: shape.vars.clone(),
                rel,
            },
            1,
            0,
        );
    }
    let morsels = adaptive_morsels(n, threads).min(n);
    let per = n.div_ceil(morsels);
    let (parts, steals) = scatter_stealing(morsels, threads, |m| {
        shape.probe_range(m * per, ((m + 1) * per).min(n))
    });
    let mut it = parts.into_iter();
    // One part per morsel and at least one morsel always exists.
    // xtask: allow(expect)
    let mut rel = it.next().expect("at least one morsel");
    for p in it {
        rel.extend_from(&p);
    }
    (
        SchemaRel {
            vars: shape.vars.clone(),
            rel,
        },
        morsels as u64,
        steals,
    )
}

/// [`crate::local::semijoin`] with up to `threads` work-stealing morsel
/// threads over `a`'s rows; byte-identical output. Returns
/// `(result, morsels, steals)`.
pub fn semijoin_parallel(
    a: &SchemaRel,
    b: &SchemaRel,
    seed: u64,
    threads: usize,
) -> (SchemaRel, u64, u64) {
    let Some(shape) = SemijoinShape::new(a, b, seed) else {
        return (local_semijoin(a, b, seed), 1, 0);
    };
    let n = a.rel.len();
    if threads <= 1 || n < MORSEL_MIN_ROWS {
        return (
            SchemaRel {
                vars: a.vars.clone(),
                rel: shape.filter_range(a, 0, n),
            },
            1,
            0,
        );
    }
    let morsels = adaptive_morsels(n, threads).min(n);
    let per = n.div_ceil(morsels);
    let (parts, steals) = scatter_stealing(morsels, threads, |m| {
        shape.filter_range(a, m * per, ((m + 1) * per).min(n))
    });
    let mut it = parts.into_iter();
    // One part per morsel and at least one morsel always exists.
    // xtask: allow(expect)
    let mut rel = it.next().expect("at least one morsel");
    for p in it {
        rel.extend_from(&p);
    }
    (
        SchemaRel {
            vars: a.vars.clone(),
            rel,
        },
        morsels as u64,
        steals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::VarId;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn sorted_rel(rows: &[[u64; 2]]) -> Relation {
        let mut r = Relation::from_rows(2, rows.iter());
        r.sort_lex();
        r
    }

    #[test]
    fn bounds_cover_disjoint_on_boundaries() {
        let rel = sorted_rel(&[
            [1, 0],
            [1, 1],
            [1, 2],
            [2, 0],
            [2, 1],
            [5, 0],
            [7, 0],
            [7, 1],
        ]);
        for target in [1, 2, 3, 4, 8, 100] {
            let bounds = morsel_bounds(&rel, target);
            assert_eq!(bounds[0].0, 0, "first morsel starts at 0");
            assert_eq!(bounds.last().unwrap().1, None, "last morsel unbounded");
            for w in bounds.windows(2) {
                let hi = w[0].1.expect("interior bound");
                assert_eq!(hi, w[1].0, "contiguous");
                assert!(hi > w[0].0, "nonempty value interval");
                // Interior boundaries are distinct column-0 values of rel.
                assert!(
                    rel.rows().any(|r| r[0] == hi),
                    "boundary {hi} not a present value"
                );
            }
        }
    }

    #[test]
    fn bounds_degenerate_inputs() {
        assert_eq!(morsel_bounds(&Relation::new(2), 4), vec![(0, None)]);
        assert_eq!(morsel_bounds(&Relation::new(0), 4), vec![(0, None)]);
        // All-equal first column: no valid cut exists.
        let rel = sorted_rel(&[[3, 0], [3, 1], [3, 2], [3, 3]]);
        assert_eq!(morsel_bounds(&rel, 4), vec![(0, None)]);
    }

    #[test]
    fn bounds_first_morsel_skewed_minimum() {
        // Regression: when the column minimum dominates the relation,
        // evenly spaced samples land *on* the minimum. Such samples must
        // be dropped — a cut at the minimum would make the first morsel
        // `[0, min)` match nothing while `min`'s whole run went to the
        // second morsel, silently duplicating the sequential plan's
        // first range. Every surviving cut must sit strictly above the
        // minimum and the first morsel must own the minimum's full run.
        let rel = sorted_rel(&[
            [5, 0],
            [5, 1],
            [5, 2],
            [5, 3],
            [5, 4],
            [5, 5],
            [7, 0],
            [8, 0],
        ]);
        for target in [2, 4, 8] {
            let bounds = morsel_bounds(&rel, target);
            assert_eq!(bounds[0].0, 0, "target {target}: first morsel starts at 0");
            for (lo, _) in &bounds[1..] {
                assert!(
                    *lo > 5,
                    "target {target}: cut {lo} not above the column minimum"
                );
            }
            // The first morsel covers the minimum's entire run: rows with
            // value 5 fall in [0, first_hi) and nowhere else.
            if let Some(hi) = bounds[0].1 {
                assert!(hi > 5, "target {target}: minimum's run split at {hi}");
            }
        }
        // Degenerate skew: every sample equals the minimum → one morsel.
        let all_min = sorted_rel(&[
            [9, 0],
            [9, 1],
            [9, 2],
            [9, 3],
            [9, 4],
            [9, 5],
            [9, 6],
            [10, 0],
        ]);
        let bounds = morsel_bounds(&all_min, 4);
        assert_eq!(bounds[0].0, 0);
        assert!(bounds.iter().skip(1).all(|(lo, _)| *lo > 9));
    }

    #[test]
    fn scatter_preserves_index_order() {
        let got = scatter(17, 4, |i| i * i);
        assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(scatter(3, 1, |i| i), vec![0, 1, 2]);
        assert!(scatter(0, 4, |i| i).is_empty());
    }

    #[test]
    fn scatter_stealing_preserves_index_order() {
        for threads in [1, 2, 3, 4, 7] {
            let (got, steals) = scatter_stealing(23, threads, |i| i * 3);
            assert_eq!(
                got,
                (0..23).map(|i| i * 3).collect::<Vec<_>>(),
                "{threads} threads"
            );
            if threads <= 1 {
                assert_eq!(steals, 0, "sequential path never steals");
            }
        }
        let (empty, steals) = scatter_stealing(0, 4, |i| i);
        assert!(empty.is_empty());
        assert_eq!(steals, 0);
        // More threads than morsels: every morsel still runs exactly once.
        let (got, _) = scatter_stealing(2, 8, |i| i + 100);
        assert_eq!(got, vec![100, 101]);
    }

    #[test]
    fn scatter_stealing_rebalances_skew() {
        // Thread 0's block is artificially slow; the others must drain
        // it from the back. With 4 threads × 8 morsels of which the
        // first 8 each sleep, some steals are overwhelmingly likely —
        // but on a single-core host the schedule can serialize, so only
        // correctness is asserted unconditionally.
        let (got, steals) = scatter_stealing(32, 4, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        let _ = steals; // informational; host-schedule dependent
    }

    #[test]
    fn adaptive_morsel_count_scales_with_rows() {
        // Below one target per thread: clamped up to the thread count.
        assert_eq!(adaptive_morsels(100, 4), 4);
        // Proportional band.
        assert_eq!(adaptive_morsels(MORSEL_TARGET_ROWS * 10, 2), 10);
        // Clamped above.
        assert_eq!(
            adaptive_morsels(MORSEL_TARGET_ROWS * 1000, 2),
            2 * MAX_MORSELS_PER_THREAD
        );
    }

    fn triangle_fixture() -> (Relation, [VarId; 3]) {
        let n = 3000u64;
        let rows: Vec<[u64; 2]> = (0..n)
            .flat_map(|i| [[i, (i + 1) % n], [i, (i * 7 + 3) % n]])
            .collect();
        (sorted_rel(&rows), [v(0), v(1), v(2)])
    }

    #[test]
    fn tributary_probe_parallel_matches_sequential() {
        // Triangle over a graph big enough to clear MORSEL_MIN_ROWS.
        let (edges, order) = triangle_fixture();
        let atoms = vec![
            SortedAtom::prepare(&edges, &[v(0), v(1)], &order),
            SortedAtom::prepare(&edges, &[v(1), v(2)], &order),
            SortedAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let tj = Tributary::new(&atoms, &order, &[], 3);
        let head = [v(0), v(1), v(2)];
        let seq = tributary_probe(&tj, &atoms, &head, 1);
        assert_eq!(seq.morsels, 1);
        assert_eq!(seq.steals, 0);
        for threads in [2, 3, 4] {
            for sched in [MorselSched::FixedQuota, MorselSched::WorkStealing] {
                let par = tributary_probe_sched(&tj, &atoms, &head, threads, sched);
                assert!(par.morsels > 1, "{threads} threads {sched:?} should split");
                assert_eq!(par.rel.raw(), seq.rel.raw(), "{threads} threads {sched:?}");
            }
        }
    }

    #[test]
    fn tributary_probe_columnar_matches_row_layout() {
        let (edges, order) = triangle_fixture();
        let row_atoms = vec![
            SortedAtom::prepare(&edges, &[v(0), v(1)], &order),
            SortedAtom::prepare(&edges, &[v(1), v(2)], &order),
            SortedAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let col_atoms = vec![
            ColumnarAtom::prepare(&edges, &[v(0), v(1)], &order),
            ColumnarAtom::prepare(&edges, &[v(1), v(2)], &order),
            ColumnarAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let row_tj = Tributary::new(&row_atoms, &order, &[], 3);
        let col_tj = Tributary::new(&col_atoms, &order, &[], 3);
        let head = [v(0), v(1), v(2)];
        let baseline = tributary_probe(&row_tj, &row_atoms, &head, 1);
        for threads in [1, 2, 4] {
            let col = tributary_probe(&col_tj, &col_atoms, &head, threads);
            assert_eq!(
                col.rel.raw(),
                baseline.rel.raw(),
                "columnar {threads} threads"
            );
            if threads > 1 {
                assert!(col.morsels > 1, "columnar {threads} threads should split");
            }
        }
    }

    #[test]
    fn hash_join_parallel_matches_sequential() {
        let a_rows: Vec<[u64; 2]> = (0..10_000u64).map(|i| [i % 97, i]).collect();
        let b_rows: Vec<[u64; 2]> = (0..5_000u64).map(|i| [i % 97, i * 2]).collect();
        let a = SchemaRel {
            vars: vec![v(0), v(1)],
            rel: Relation::from_rows(2, a_rows.iter()),
        };
        let b = SchemaRel {
            vars: vec![v(0), v(2)],
            rel: Relation::from_rows(2, b_rows.iter()),
        };
        let seq = crate::local::hash_join(&a, &b, 11);
        for threads in [1, 2, 4] {
            let (par, morsels, _steals) = hash_join_parallel(&a, &b, 11, threads);
            assert_eq!(par.vars, seq.vars);
            assert_eq!(par.rel.raw(), seq.rel.raw(), "{threads} threads");
            assert_eq!(morsels > 1, threads > 1);
        }
    }

    #[test]
    fn semijoin_parallel_matches_sequential() {
        let a_rows: Vec<[u64; 2]> = (0..8_000u64).map(|i| [i, i % 13]).collect();
        let b_rows: Vec<[u64; 1]> = (0..7u64).map(|i| [i]).collect();
        let a = SchemaRel {
            vars: vec![v(0), v(1)],
            rel: Relation::from_rows(2, a_rows.iter()),
        };
        let b = SchemaRel {
            vars: vec![v(1)],
            rel: Relation::from_rows(1, b_rows.iter()),
        };
        let seq = local_semijoin(&a, &b, 3);
        for threads in [1, 2, 4] {
            let (par, _, _) = semijoin_parallel(&a, &b, 3, threads);
            assert_eq!(par.rel.raw(), seq.rel.raw(), "{threads} threads");
        }
    }
}
