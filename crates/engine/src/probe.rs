//! Intra-worker morsel-parallel probe for the local join operators.
//!
//! PR 3's parallel *prepare* claims the host cores left idle by the
//! worker pool during the sort phase; this module does the same for the
//! *probe* phase — the dominant cost once sorts are fast (morsel-driven
//! parallelism in the sense of Leis et al., SIGMOD 2014):
//!
//! * **Tributary join** — the first global variable's value domain is
//!   split into disjoint ranges using the sorted first trie level of the
//!   smallest atom that binds it ([`morsel_bounds`]). Split points land
//!   on distinct-value boundaries by construction (ranges are half-open
//!   value intervals, and a value's whole run falls on one side), so
//!   morsels are independent: each runs a full leapfrog instance via
//!   [`Tributary::run_range`].
//! * **Hash join / semijoin** — the probe (resp. filtered) side is cut
//!   into contiguous row ranges over a shared read-only
//!   [`JoinTable`](crate::local::JoinTable).
//!
//! **Determinism.** The depth-0 leapfrog enumerates values in ascending
//! order and the hash probe scans rows in input order, so concatenating
//! per-morsel output buffers in morsel order reproduces the sequential
//! output *byte-identically* (asserted query-by-query by the
//! `probe_parallel` integration suite). Morsel workers never share
//! mutable state — each gets its own cursors and output buffer.
//!
//! Thread budget: like prepare, a worker gets `host_cores / workers`
//! probe threads (at least 1) — worker-level parallelism keeps priority,
//! and `workers >= cores` degrades to the sequential path (surfaced by
//! analyzer diagnostic R413).

use crate::local::{semijoin as local_semijoin, HashJoinShape, SchemaRel, SemijoinShape};
use crate::prepare;
use parjoin_common::{Relation, Value};
use parjoin_core::tributary::{SortedAtom, Tributary};
use parjoin_query::VarId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Minimum probe-side rows (hash join/semijoin) or split-trie rows
/// (Tributary) before morsel dispatch pays for its thread handoffs.
pub const MORSEL_MIN_ROWS: usize = 4096;

/// Morsels carved per probe thread. More than 1 so a skewed morsel (one
/// hot value range) can be soaked up by threads that finish early —
/// morsels are claimed dynamically from a shared cursor.
const MORSELS_PER_THREAD: usize = 4;

/// Probe threads available to each worker of a phase: identical to the
/// prepare-phase rule (`host_cores / workers`, at least 1) — both phases
/// draw from the same pool of leftover cores.
pub fn probe_threads(workers: usize, host: Option<usize>) -> usize {
    prepare::prepare_threads(workers, host)
}

/// [`probe_threads`] for the actual host.
pub fn probe_threads_for_host(workers: usize) -> usize {
    prepare::prepare_threads_for_host(workers)
}

/// Splits the value domain of `rel`'s first column into up to `target`
/// half-open ranges `[lo, hi)` (`hi = None` = unbounded) of roughly equal
/// row count. `rel` must be lexicographically sorted. The returned ranges
/// start at 0, are contiguous and disjoint, and every interior boundary
/// is a distinct column-0 value present in `rel` — i.e. each split lands
/// exactly on the start of that value's run, never inside one.
pub fn morsel_bounds(rel: &Relation, target: usize) -> Vec<(Value, Option<Value>)> {
    if rel.arity() == 0 || rel.is_empty() || target <= 1 {
        return vec![(0, None)];
    }
    let n = rel.len();
    let min = rel.value(0, 0);
    let mut cuts: Vec<Value> = Vec::new();
    for k in 1..target {
        // Sorted input: sampling at evenly spaced rows yields
        // nondecreasing values; dropping duplicates (and anything not
        // above the column minimum, which would make the first morsel
        // empty) keeps cuts strictly increasing.
        let v = rel.value(k * n / target, 0);
        if v > min && cuts.last().is_none_or(|&l| v > l) {
            cuts.push(v);
        }
    }
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut lo = 0;
    for &c in &cuts {
        out.push((lo, Some(c)));
        lo = c;
    }
    out.push((lo, None));
    out
}

/// Runs `f(0..n)` on up to `threads` scoped threads, morsels claimed
/// dynamically; returns results in index order.
fn scatter<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n).max(1);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Morsel claim ticket: the counter is the only shared
                // state and carries no data dependencies, so relaxed
                // ordering is safe. xtask: allow(ordering)
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= n {
                    break;
                }
                let r = f(m);
                slots.lock().unwrap_or_else(PoisonError::into_inner)[m] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        // The cursor hands out every index in 0..n exactly once and the
        // scope joins all workers before this runs. xtask: allow(expect)
        .map(|s| s.expect("every morsel ran"))
        .collect()
}

/// One probe operation's result plus how many morsels executed (1 for
/// the sequential path).
pub struct ProbeOutcome {
    /// The operator output.
    pub rel: Relation,
    /// Morsels executed; 1 means the sequential path ran.
    pub morsels: u64,
}

/// Runs `tj`, materializing the projection onto `head`, with up to
/// `threads` morsel threads. `atoms` must be the slice `tj` was built
/// over — the smallest atom whose first trie level is the first global
/// variable donates its sorted level-0 column as the split domain.
/// Output is byte-identical to the sequential `tj.run` collect loop.
pub fn tributary_probe(
    tj: &Tributary<'_, SortedAtom>,
    atoms: &[SortedAtom],
    head: &[VarId],
    threads: usize,
) -> ProbeOutcome {
    let collect_seq = || {
        let mut out = Relation::new(head.len());
        let mut row = Vec::with_capacity(head.len());
        tj.run(|asg| {
            row.clear();
            row.extend(head.iter().map(|v| asg[v.index()]));
            out.push_row(&row);
            true
        });
        ProbeOutcome {
            rel: out,
            morsels: 1,
        }
    };
    // The smallest depth-0 atom bounds the number of distinct first-
    // variable values most tightly, giving the most even value split.
    let split = atoms
        .iter()
        .filter(|a| a.depths().first() == Some(&0))
        .map(|a| a.relation())
        .min_by_key(|r| r.len());
    let Some(split) = split else {
        return collect_seq();
    };
    if threads <= 1 || split.len() < MORSEL_MIN_ROWS {
        return collect_seq();
    }
    let bounds = morsel_bounds(split, threads * MORSELS_PER_THREAD);
    if bounds.len() <= 1 {
        return collect_seq();
    }
    let parts = scatter(bounds.len(), threads, |m| {
        let (lo, hi) = bounds[m];
        let mut out = Relation::new(head.len());
        let mut row = Vec::with_capacity(head.len());
        tj.run_range(lo, hi, |asg| {
            row.clear();
            row.extend(head.iter().map(|v| asg[v.index()]));
            out.push_row(&row);
            true
        });
        out
    });
    let mut it = parts.into_iter();
    // `scatter` returns one part per morsel and at least one
    // morsel always exists. xtask: allow(expect)
    let mut rel = it.next().expect("at least one morsel");
    for p in it {
        rel.extend_from(&p);
    }
    ProbeOutcome {
        rel,
        morsels: bounds.len() as u64,
    }
}

/// [`crate::local::hash_join`] with up to `threads` morsel threads over
/// the probe side; byte-identical output.
pub fn hash_join_parallel(
    a: &SchemaRel,
    b: &SchemaRel,
    seed: u64,
    threads: usize,
) -> (SchemaRel, u64) {
    let shape = HashJoinShape::new(a, b, seed);
    let n = shape.probe_len();
    if threads <= 1 || n < MORSEL_MIN_ROWS {
        let rel = shape.probe_range(0, n);
        return (
            SchemaRel {
                vars: shape.vars.clone(),
                rel,
            },
            1,
        );
    }
    let morsels = (threads * MORSELS_PER_THREAD).min(n);
    let per = n.div_ceil(morsels);
    let parts = scatter(morsels, threads, |m| {
        shape.probe_range(m * per, ((m + 1) * per).min(n))
    });
    let mut it = parts.into_iter();
    // `scatter` returns one part per morsel and at least one
    // morsel always exists. xtask: allow(expect)
    let mut rel = it.next().expect("at least one morsel");
    for p in it {
        rel.extend_from(&p);
    }
    (
        SchemaRel {
            vars: shape.vars.clone(),
            rel,
        },
        morsels as u64,
    )
}

/// [`crate::local::semijoin`] with up to `threads` morsel threads over
/// `a`'s rows; byte-identical output.
pub fn semijoin_parallel(
    a: &SchemaRel,
    b: &SchemaRel,
    seed: u64,
    threads: usize,
) -> (SchemaRel, u64) {
    let Some(shape) = SemijoinShape::new(a, b, seed) else {
        return (local_semijoin(a, b, seed), 1);
    };
    let n = a.rel.len();
    if threads <= 1 || n < MORSEL_MIN_ROWS {
        return (
            SchemaRel {
                vars: a.vars.clone(),
                rel: shape.filter_range(a, 0, n),
            },
            1,
        );
    }
    let morsels = (threads * MORSELS_PER_THREAD).min(n);
    let per = n.div_ceil(morsels);
    let parts = scatter(morsels, threads, |m| {
        shape.filter_range(a, m * per, ((m + 1) * per).min(n))
    });
    let mut it = parts.into_iter();
    // `scatter` returns one part per morsel and at least one
    // morsel always exists. xtask: allow(expect)
    let mut rel = it.next().expect("at least one morsel");
    for p in it {
        rel.extend_from(&p);
    }
    (
        SchemaRel {
            vars: a.vars.clone(),
            rel,
        },
        morsels as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::VarId;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn sorted_rel(rows: &[[u64; 2]]) -> Relation {
        let mut r = Relation::from_rows(2, rows.iter());
        r.sort_lex();
        r
    }

    #[test]
    fn bounds_cover_disjoint_on_boundaries() {
        let rel = sorted_rel(&[
            [1, 0],
            [1, 1],
            [1, 2],
            [2, 0],
            [2, 1],
            [5, 0],
            [7, 0],
            [7, 1],
        ]);
        for target in [1, 2, 3, 4, 8, 100] {
            let bounds = morsel_bounds(&rel, target);
            assert_eq!(bounds[0].0, 0, "first morsel starts at 0");
            assert_eq!(bounds.last().unwrap().1, None, "last morsel unbounded");
            for w in bounds.windows(2) {
                let hi = w[0].1.expect("interior bound");
                assert_eq!(hi, w[1].0, "contiguous");
                assert!(hi > w[0].0, "nonempty value interval");
                // Interior boundaries are distinct column-0 values of rel.
                assert!(
                    rel.rows().any(|r| r[0] == hi),
                    "boundary {hi} not a present value"
                );
            }
        }
    }

    #[test]
    fn bounds_degenerate_inputs() {
        assert_eq!(morsel_bounds(&Relation::new(2), 4), vec![(0, None)]);
        assert_eq!(morsel_bounds(&Relation::new(0), 4), vec![(0, None)]);
        // All-equal first column: no valid cut exists.
        let rel = sorted_rel(&[[3, 0], [3, 1], [3, 2], [3, 3]]);
        assert_eq!(morsel_bounds(&rel, 4), vec![(0, None)]);
    }

    #[test]
    fn scatter_preserves_index_order() {
        let got = scatter(17, 4, |i| i * i);
        assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(scatter(3, 1, |i| i), vec![0, 1, 2]);
        assert!(scatter(0, 4, |i| i).is_empty());
    }

    #[test]
    fn tributary_probe_parallel_matches_sequential() {
        // Triangle over a graph big enough to clear MORSEL_MIN_ROWS.
        let n = 3000u64;
        let rows: Vec<[u64; 2]> = (0..n)
            .flat_map(|i| [[i, (i + 1) % n], [i, (i * 7 + 3) % n]])
            .collect();
        let edges = sorted_rel(&rows);
        let order = [v(0), v(1), v(2)];
        let atoms = vec![
            SortedAtom::prepare(&edges, &[v(0), v(1)], &order),
            SortedAtom::prepare(&edges, &[v(1), v(2)], &order),
            SortedAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let tj = Tributary::new(&atoms, &order, &[], 3);
        let head = [v(0), v(1), v(2)];
        let seq = tributary_probe(&tj, &atoms, &head, 1);
        assert_eq!(seq.morsels, 1);
        for threads in [2, 3, 4] {
            let par = tributary_probe(&tj, &atoms, &head, threads);
            assert!(par.morsels > 1, "{threads} threads should split");
            assert_eq!(par.rel.raw(), seq.rel.raw(), "{threads} threads");
        }
    }

    #[test]
    fn hash_join_parallel_matches_sequential() {
        let a_rows: Vec<[u64; 2]> = (0..10_000u64).map(|i| [i % 97, i]).collect();
        let b_rows: Vec<[u64; 2]> = (0..5_000u64).map(|i| [i % 97, i * 2]).collect();
        let a = SchemaRel {
            vars: vec![v(0), v(1)],
            rel: Relation::from_rows(2, a_rows.iter()),
        };
        let b = SchemaRel {
            vars: vec![v(0), v(2)],
            rel: Relation::from_rows(2, b_rows.iter()),
        };
        let seq = crate::local::hash_join(&a, &b, 11);
        for threads in [1, 2, 4] {
            let (par, morsels) = hash_join_parallel(&a, &b, 11, threads);
            assert_eq!(par.vars, seq.vars);
            assert_eq!(par.rel.raw(), seq.rel.raw(), "{threads} threads");
            assert_eq!(morsels > 1, threads > 1);
        }
    }

    #[test]
    fn semijoin_parallel_matches_sequential() {
        let a_rows: Vec<[u64; 2]> = (0..8_000u64).map(|i| [i, i % 13]).collect();
        let b_rows: Vec<[u64; 1]> = (0..7u64).map(|i| [i]).collect();
        let a = SchemaRel {
            vars: vec![v(0), v(1)],
            rel: Relation::from_rows(2, a_rows.iter()),
        };
        let b = SchemaRel {
            vars: vec![v(1)],
            rel: Relation::from_rows(1, b_rows.iter()),
        };
        let seq = local_semijoin(&a, &b, 3);
        for threads in [1, 2, 4] {
            let (par, _) = semijoin_parallel(&a, &b, 3, threads);
            assert_eq!(par.rel.raw(), seq.rel.raw(), "{threads} threads");
        }
    }
}
