//! Cluster configuration.

use parjoin_common::WireFormat;
use parjoin_runtime::TransportKind;

/// A simulated shared-nothing cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Number of workers (the paper's default: 64).
    pub workers: usize,
    /// Per-worker memory budget in *tuples held live by one operator
    /// pipeline* (inputs + sort copies + output of the running join).
    /// `None` disables the check. Exceeding the budget aborts the plan
    /// with [`EngineError::MemoryBudget`](crate::EngineError::MemoryBudget),
    /// reproducing the paper's Q4 `RS_TJ` FAIL (Figure 9).
    pub memory_budget: Option<u64>,
    /// Base seed for all hash functions; fixed seed ⇒ reproducible runs.
    pub seed: u64,
    /// Fixed latency charged to wall-clock per communication round
    /// (shuffle barrier). Zero by default; set it to model the paper's
    /// observation that multi-round plans (regular shuffle, semijoins)
    /// pay per-round synchronization costs that one-round HyperCube
    /// plans avoid ("the extra cost of additional rounds of
    /// communication canceled all savings", §3.6).
    pub round_latency: std::time::Duration,
    /// CPU/network cost charged per tuple a worker sends or receives
    /// during a shuffle (serialization, transfer, deserialization). This
    /// is what turns shuffle *volume skew* into *wall-clock* skew — the
    /// paper's central Q1 observation that the worker producing 20.8x
    /// the average intermediate result becomes the straggler. The
    /// default, 500 ns/tuple, is conservative against Myria's
    /// JVM-serialization + 10 GbE stack.
    pub shuffle_tuple_cost: std::time::Duration,
    /// How shuffles move tuples between workers. `Local` (default)
    /// replays the original in-memory loop; `InProcess`/`Tcp` stream
    /// encoded batches through the worker runtime, yielding real
    /// `bytes_sent`/`bytes_received` tallies on every shuffle.
    pub transport: TransportKind,
    /// Rows per streamed batch under the streaming transports; ignored
    /// by `Local`. The analyzer pre-flights degenerate values.
    pub batch_tuples: usize,
    /// Frame encoding under the streaming transports; ignored by
    /// `Local`. The vectored default writes batches scatter/gather from
    /// borrowed slices; [`WireFormat::Varint`] is the legacy
    /// owned-buffer encoding, kept readable for cross-version
    /// round-trips — output is byte-identical either way.
    pub wire_format: WireFormat,
}

impl Cluster {
    /// A cluster with `workers` workers, no memory budget, seed 0.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        Cluster {
            workers,
            memory_budget: None,
            seed: 0,
            round_latency: std::time::Duration::ZERO,
            shuffle_tuple_cost: std::time::Duration::from_nanos(500),
            transport: TransportKind::Local,
            batch_tuples: parjoin_runtime::DEFAULT_BATCH_TUPLES,
            wire_format: WireFormat::default(),
        }
    }

    /// Sets the shuffle transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the streaming-shuffle wire format.
    pub fn with_wire_format(mut self, format: WireFormat) -> Self {
        self.wire_format = format;
        self
    }

    /// Sets the streaming-shuffle batch size (rows per batch).
    pub fn with_batch_tuples(mut self, batch: usize) -> Self {
        self.batch_tuples = batch;
        self
    }

    /// Sets the per-tuple shuffle cost (0 disables network-time modeling).
    pub fn with_shuffle_tuple_cost(mut self, d: std::time::Duration) -> Self {
        self.shuffle_tuple_cost = d;
        self
    }

    /// Sets the per-round latency.
    pub fn with_round_latency(mut self, d: std::time::Duration) -> Self {
        self.round_latency = d;
        self
    }

    /// Sets the per-worker memory budget (tuples).
    pub fn with_memory_budget(mut self, tuples: u64) -> Self {
        self.memory_budget = Some(tuples);
        self
    }

    /// Sets the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = Cluster::new(8)
            .with_memory_budget(1000)
            .with_seed(7)
            .with_transport(TransportKind::InProcess)
            .with_batch_tuples(512);
        assert_eq!(c.workers, 8);
        assert_eq!(c.memory_budget, Some(1000));
        assert_eq!(c.seed, 7);
        assert_eq!(c.transport, TransportKind::InProcess);
        assert_eq!(c.batch_tuples, 512);
    }

    #[test]
    fn default_transport_is_local() {
        let c = Cluster::new(2);
        assert_eq!(c.transport, TransportKind::Local);
        assert!(c.batch_tuples > 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        Cluster::new(0);
    }
}
