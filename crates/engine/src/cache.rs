//! Generic keyed LRU cache shared by [`SortCache`](crate::SortCache)
//! and [`TrieCache`](crate::TrieCache).
//!
//! Both caches implement the same policy — content-fingerprint keys,
//! per-route certified entries, LRU eviction under a byte capacity,
//! build-outside-the-lock, racing inserts keep the incumbent — over
//! different payloads (sorted `Relation` views vs prepared
//! `ColumnarTrie`s). [`KeyedCache`] is that policy once; the public
//! cache types are thin wrappers choosing the payload and the build
//! function.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a cache lookup, for per-run stat tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The payload was served from the cache.
    Hit,
    /// The payload was built fresh (and possibly inserted).
    Miss,
}

/// Cumulative cache counters (process lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build fresh.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Hits whose stored route signature matched the requested one —
    /// the placement identity was *proved*, not assumed.
    pub certified_hits: u64,
    /// Certified lookups that found matching content under a different
    /// (or unknown) route signature and refused the hit.
    pub route_rejects: u64,
}

/// Where a cached payload came from: which query's run shuffled the
/// fragment, and the canonical *route signature* of the placement
/// function that put it on this worker (see
/// `parjoin_analyze::policy::Policy::route_signature`). A content
/// fingerprint proves one worker's fragment matches; only equal route
/// signatures prove every worker's fragment matches — which is what a
/// cross-query cache hit actually asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Name of the query whose run produced the payload.
    pub query: String,
    /// Canonical placement-function signature of the fragment's shuffle.
    pub route: String,
}

/// What a cache payload must expose: its resident size, for the byte
/// capacity and the per-run memory budget.
pub(crate) trait CachePayload {
    /// Approximate heap footprint in bytes.
    fn approx_bytes(&self) -> usize;
}

impl CachePayload for parjoin_common::Relation {
    fn approx_bytes(&self) -> usize {
        parjoin_common::Relation::approx_bytes(self)
    }
}

impl CachePayload for parjoin_core::tributary::ColumnarTrie {
    fn approx_bytes(&self) -> usize {
        parjoin_core::tributary::ColumnarTrie::approx_bytes(self)
    }
}

struct Entry<P> {
    payload: Arc<P>,
    bytes: usize,
    last_used: u64,
    /// Stamp of the certified lookup that inserted the payload; `None`
    /// for entries inserted through an uncertified lookup.
    prov: Option<Provenance>,
}

struct Inner<P> {
    map: HashMap<(u128, Vec<usize>, Option<String>), Entry<P>>,
    resident: usize,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    certified_hits: u64,
    route_rejects: u64,
}

/// An LRU cache mapping `(content fingerprint, column permutation,
/// optional route signature)` to payloads.
pub(crate) struct KeyedCache<P> {
    inner: Mutex<Inner<P>>,
}

impl<P: CachePayload> KeyedCache<P> {
    /// Creates a cache with the given byte capacity (0 disables caching:
    /// every lookup misses and nothing is inserted).
    pub(crate) fn with_capacity(capacity: usize) -> KeyedCache<P> {
        KeyedCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                resident: 0,
                capacity,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                certified_hits: 0,
                route_rejects: 0,
            }),
        }
    }

    /// The one lookup path. `fp` is the content fingerprint of the
    /// *source* data (callers compute it once and reuse it across
    /// layered caches). With `prov = None` this is an uncertified
    /// lookup: identical content under *any* route is enough for a hit.
    /// With `prov = Some(..)` the hit condition is *certified*: the
    /// cached entry is served only when its stored route signature
    /// equals `prov.route`; matching content under a different (or
    /// unknown) route is counted as a route reject and rebuilt fresh
    /// into the requested route's own cache slot — certified entries
    /// are keyed per route, so concurrent routes never evict each
    /// other's stamps.
    ///
    /// `max_entry_bytes` caps the size of any *inserted* payload — pass
    /// the run's memory budget so a payload too large for a worker's
    /// memory is returned but never pinned in the cache.
    ///
    /// The third return is `true` exactly on a certified hit. `build`
    /// runs outside the lock.
    pub(crate) fn lookup_or_build<F>(
        &self,
        fp: u128,
        cols: &[usize],
        max_entry_bytes: Option<usize>,
        prov: Option<Provenance>,
        build: F,
    ) -> (Arc<P>, Lookup, bool)
    where
        F: FnOnce() -> P,
    {
        // Certified entries are keyed per route signature: payloads
        // built under *different* placement functions are different
        // cache citizens (their fragments disagree on other workers),
        // so one route's traffic must never evict another's stamp.
        // Mixed query streams — a serving workload — would otherwise
        // thrash a shared `(content, cols)` slot between routes forever.
        let key = (fp, cols.to_vec(), prov.as_ref().map(|p| p.route.clone()));
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&key) {
                e.last_used = tick;
                let payload = Arc::clone(&e.payload);
                inner.hits += 1;
                let certified = prov.is_some();
                if certified {
                    inner.certified_hits += 1;
                }
                return (payload, Lookup::Hit, certified);
            }
            match &prov {
                // Uncertified lookups keep their historical contract:
                // identical content under *any* route is enough.
                None => {
                    let found = inner
                        .map
                        .iter_mut()
                        .find(|((efp, ecols, _), _)| *efp == fp && ecols == cols)
                        .map(|(_, e)| {
                            e.last_used = tick;
                            Arc::clone(&e.payload)
                        });
                    if let Some(payload) = found {
                        inner.hits += 1;
                        return (payload, Lookup::Hit, false);
                    }
                    inner.misses += 1;
                }
                // A certified lookup that found matching content only
                // under a different (or unknown) route refuses the hit
                // and rebuilds under its own key.
                Some(_) => {
                    if inner
                        .map
                        .keys()
                        .any(|(efp, ecols, _)| *efp == fp && ecols == cols)
                    {
                        inner.route_rejects += 1;
                    }
                    inner.misses += 1;
                }
            }
        }
        // Build outside the lock: concurrent workers preparing different
        // relations must not serialize on the cache mutex.
        let payload = Arc::new(build());
        let bytes = payload.approx_bytes();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let fits_budget = max_entry_bytes.is_none_or(|cap| bytes <= cap);
        if bytes <= inner.capacity && fits_budget {
            // An insert racing a concurrent identical insert keeps the
            // incumbent (the payloads are identical by construction).
            if inner.map.contains_key(&key) {
                return (payload, Lookup::Miss, false);
            }
            while inner.resident + bytes > inner.capacity {
                let Some(victim) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                if let Some(e) = inner.map.remove(&victim) {
                    inner.resident -= e.bytes;
                    inner.evictions += 1;
                }
            }
            inner.tick += 1;
            let tick = inner.tick;
            inner.resident += bytes;
            inner.map.insert(
                key,
                Entry {
                    payload: Arc::clone(&payload),
                    bytes,
                    last_used: tick,
                    prov,
                },
            );
        }
        (payload, Lookup::Miss, false)
    }

    /// Cumulative counters since process start (or [`KeyedCache::clear`]).
    pub(crate) fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.resident as u64,
            entries: inner.map.len() as u64,
            certified_hits: inner.certified_hits,
            route_rejects: inner.route_rejects,
        }
    }

    /// Provenance stamps of the resident *certified* entries, sorted by
    /// (route, query) — which queries' runs left which placement
    /// functions' payloads behind. Introspection only; hits never
    /// consult the query name.
    pub(crate) fn resident_provenance(&self) -> Vec<Provenance> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut stamps: Vec<Provenance> =
            inner.map.values().filter_map(|e| e.prov.clone()).collect();
        stamps.sort_by(|a, b| (&a.route, &a.query).cmp(&(&b.route, &b.query)));
        stamps
    }

    /// Drops every entry and resets the counters.
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.map.clear();
        inner.resident = 0;
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
        inner.certified_hits = 0;
        inner.route_rejects = 0;
    }
}
