//! Per-worker local join operators: binary hash join, binary sort-merge
//! join, and hash semijoin. These run inside worker tasks; the engine
//! times them to produce per-worker busy times.

use parjoin_common::{hash, Relation, Value};
use parjoin_query::{Filter, VarId};
use std::time::{Duration, Instant};

/// A relation whose columns are bound to query variables — the unit local
/// operators work on.
#[derive(Debug, Clone)]
pub struct SchemaRel {
    /// One variable per column.
    pub vars: Vec<VarId>,
    /// The data.
    pub rel: Relation,
}

impl SchemaRel {
    /// Column index of `v`, if bound.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// True when every variable of `f` is bound by this schema.
    pub fn covers_filter(&self, f: &Filter) -> bool {
        f.vars().iter().all(|v| self.col_of(*v).is_some())
    }

    /// Applies the given filters (all of which must be covered).
    pub fn filter(&self, filters: &[Filter]) -> SchemaRel {
        if filters.is_empty() {
            return self.clone();
        }
        let lookups: Vec<(usize, parjoin_query::CmpOp, Operand2)> = filters
            .iter()
            .map(|f| {
                let l = self.col_of(f.left).expect("filter var bound");
                let r = match f.right {
                    parjoin_query::Operand::Var(v) => {
                        Operand2::Col(self.col_of(v).expect("filter var bound"))
                    }
                    parjoin_query::Operand::Const(c) => Operand2::Const(c),
                };
                (l, f.op, r)
            })
            .collect();
        let rel = self.rel.filter(|row| {
            lookups.iter().all(|&(l, op, ref r)| {
                let rv = match *r {
                    Operand2::Col(c) => row[c],
                    Operand2::Const(c) => c,
                };
                op.eval(row[l], rv)
            })
        });
        SchemaRel {
            vars: self.vars.clone(),
            rel,
        }
    }

    /// Projects onto `keep` variables (all must be bound).
    pub fn project(&self, keep: &[VarId]) -> SchemaRel {
        let cols: Vec<usize> = keep
            .iter()
            .map(|&v| self.col_of(v).expect("projection var bound"))
            .collect();
        SchemaRel {
            vars: keep.to_vec(),
            rel: self.rel.project(&cols),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Operand2 {
    Col(usize),
    Const(Value),
}

/// An open-chaining hash table over composite `u64` keys, allocation-free
/// per row (head/next index chains into flat buffers).
pub struct JoinTable {
    key_arity: usize,
    keys: Vec<Value>,
    rows: Vec<u32>,
    heads: Vec<i64>,
    next: Vec<i64>,
    mask: usize,
    seed: u64,
}

impl JoinTable {
    /// Builds a table over `rel`'s `key_cols` values.
    pub fn build(rel: &Relation, key_cols: &[usize], seed: u64) -> Self {
        let n = rel.len();
        let cap = (2 * n).next_power_of_two().max(16);
        let mut t = JoinTable {
            key_arity: key_cols.len(),
            keys: Vec::with_capacity(n * key_cols.len()),
            rows: Vec::with_capacity(n),
            heads: vec![-1; cap],
            next: Vec::with_capacity(n),
            mask: cap - 1,
            seed,
        };
        for (i, row) in rel.rows().enumerate() {
            let mut acc = t.seed;
            for &c in key_cols {
                acc = hash::hash64(row[c], acc);
                t.keys.push(row[c]);
            }
            let slot = (acc as usize) & t.mask;
            t.next.push(t.heads[slot]);
            t.heads[slot] = i as i64;
            t.rows.push(i as u32);
        }
        t
    }

    /// Iterates the row indices whose key equals `key`.
    pub fn probe<'a>(&'a self, key: &'a [Value]) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(key.len(), self.key_arity);
        let mut acc = self.seed;
        for &v in key {
            acc = hash::hash64(v, acc);
        }
        let mut cur = self.heads[(acc as usize) & self.mask];
        std::iter::from_fn(move || {
            while cur >= 0 {
                let e = cur as usize;
                cur = self.next[e];
                let stored = &self.keys[e * self.key_arity..(e + 1) * self.key_arity];
                if stored == key {
                    return Some(self.rows[e] as usize);
                }
            }
            None
        })
    }

    /// True when some row matches `key`.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.probe(key).next().is_some()
    }
}

/// The join variables two schemas share.
pub fn shared_vars(a: &SchemaRel, b: &SchemaRel) -> Vec<VarId> {
    a.vars
        .iter()
        .copied()
        .filter(|v| b.col_of(*v).is_some())
        .collect()
}

fn output_schema(a: &SchemaRel, b: &SchemaRel) -> (Vec<VarId>, Vec<usize>) {
    // Output vars: a's vars then b's vars not already bound; also return
    // the b-columns to append.
    let mut vars = a.vars.clone();
    let mut b_cols = Vec::new();
    for (c, &v) in b.vars.iter().enumerate() {
        if a.col_of(v).is_none() {
            vars.push(v);
            b_cols.push(c);
        }
    }
    (vars, b_cols)
}

/// Binary hash join (the paper's symmetric-hash-join stand-in: we build
/// on the smaller input and probe with the larger, which produces the
/// same output and the same asymptotic CPU work as pulling both sides
/// round-robin into two tables).
///
/// Join keys are the shared variables; with no shared variable this is a
/// cartesian product (allowed, used by selection-only atoms of Q3/Q7).
pub fn hash_join(a: &SchemaRel, b: &SchemaRel, seed: u64) -> SchemaRel {
    let on = shared_vars(a, b);
    // Build on the smaller side; normalize so `build` is the smaller.
    let (build, probe, build_is_a) = if a.rel.len() <= b.rel.len() {
        (a, b, true)
    } else {
        (b, a, false)
    };
    let build_cols: Vec<usize> = on
        .iter()
        .map(|&v| build.col_of(v).expect("shared"))
        .collect();
    let probe_cols: Vec<usize> = on
        .iter()
        .map(|&v| probe.col_of(v).expect("shared"))
        .collect();
    let table = JoinTable::build(&build.rel, &build_cols, seed);

    // Assemble output as (a ++ b-only) regardless of build side.
    let (vars, b_only_cols) = output_schema(a, b);
    let mut out = Relation::new(vars.len().max(1));
    let mut key = Vec::with_capacity(on.len());
    let mut row_buf: Vec<Value> = Vec::with_capacity(vars.len());
    for prow in probe.rel.rows() {
        key.clear();
        key.extend(probe_cols.iter().map(|&c| prow[c]));
        for bidx in table.probe(&key) {
            let brow = build.rel.row(bidx);
            let (arow, brow2) = if build_is_a {
                (brow, prow)
            } else {
                (prow, brow)
            };
            row_buf.clear();
            row_buf.extend_from_slice(arow);
            row_buf.extend(b_only_cols.iter().map(|&c| brow2[c]));
            out.push_row(&row_buf);
        }
    }
    SchemaRel { vars, rel: out }
}

/// Binary sort-merge join: sorts both inputs by the shared variables and
/// merges. This is what "Tributary join with regular shuffle" degenerates
/// to — "a binary Tributary join, which is a merge-join" (§3).
///
/// Returns the result, the number of tuples materialized in sort buffers
/// (for memory accounting: both inputs are copied and sorted), and the
/// time spent sorting — the prep component of `RS_TJ`'s prep-vs-probe
/// breakdown (paper Table 5 reports "both sorts: 5%" for `RS_TJ`).
pub fn merge_join(a: &SchemaRel, b: &SchemaRel, _seed: u64) -> (SchemaRel, u64, Duration) {
    let on = shared_vars(a, b);
    if on.is_empty() {
        // Degenerate to a cartesian product via hash join with empty key.
        return (hash_join(a, b, 0), 0, Duration::ZERO);
    }
    let a_cols: Vec<usize> = on.iter().map(|&v| a.col_of(v).expect("shared")).collect();
    let b_cols: Vec<usize> = on.iter().map(|&v| b.col_of(v).expect("shared")).collect();

    let sort_indices = |r: &Relation, cols: &[usize]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..r.len() as u32).collect();
        idx.sort_unstable_by(|&x, &y| {
            let rx = r.row(x as usize);
            let ry = r.row(y as usize);
            cols.iter()
                .map(|&c| rx[c].cmp(&ry[c]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    };
    let t_sort = Instant::now();
    let ia = sort_indices(&a.rel, &a_cols);
    let ib = sort_indices(&b.rel, &b_cols);
    let sort_time = t_sort.elapsed();
    let sort_buffer_tuples = (a.rel.len() + b.rel.len()) as u64;

    let key_of = |r: &Relation, cols: &[usize], i: u32| -> Vec<Value> {
        cols.iter().map(|&c| r.row(i as usize)[c]).collect()
    };

    let (vars, b_only_cols) = output_schema(a, b);
    let mut out = Relation::new(vars.len().max(1));
    let mut row_buf: Vec<Value> = Vec::with_capacity(vars.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let ka = key_of(&a.rel, &a_cols, ia[i]);
        let kb = key_of(&b.rel, &b_cols, ib[j]);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Extent of equal-key runs on both sides.
                let mut ie = i;
                while ie < ia.len() && key_of(&a.rel, &a_cols, ia[ie]) == ka {
                    ie += 1;
                }
                let mut je = j;
                while je < ib.len() && key_of(&b.rel, &b_cols, ib[je]) == kb {
                    je += 1;
                }
                for &xa in &ia[i..ie] {
                    let arow = a.rel.row(xa as usize);
                    for &yb in &ib[j..je] {
                        let brow = b.rel.row(yb as usize);
                        row_buf.clear();
                        row_buf.extend_from_slice(arow);
                        row_buf.extend(b_only_cols.iter().map(|&c| brow[c]));
                        out.push_row(&row_buf);
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    (SchemaRel { vars, rel: out }, sort_buffer_tuples, sort_time)
}

/// Hash semijoin `a ⋉ b` on their shared variables: keeps the `a` rows
/// with at least one match in `b`.
pub fn semijoin(a: &SchemaRel, b: &SchemaRel, seed: u64) -> SchemaRel {
    let on = shared_vars(a, b);
    if on.is_empty() {
        return if b.rel.is_empty() {
            SchemaRel {
                vars: a.vars.clone(),
                rel: Relation::new(a.vars.len().max(1)),
            }
        } else {
            a.clone()
        };
    }
    let b_cols: Vec<usize> = on.iter().map(|&v| b.col_of(v).expect("shared")).collect();
    let a_cols: Vec<usize> = on.iter().map(|&v| a.col_of(v).expect("shared")).collect();
    let table = JoinTable::build(&b.rel, &b_cols, seed);
    let mut key = Vec::with_capacity(on.len());
    let rel = a.rel.filter(|row| {
        key.clear();
        key.extend(a_cols.iter().map(|&c| row[c]));
        table.contains(&key)
    });
    SchemaRel {
        vars: a.vars.clone(),
        rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::CmpOp;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn sr(vars: &[u32], rows: &[&[u64]]) -> SchemaRel {
        let mut rel = Relation::new(vars.len());
        for r in rows {
            rel.push_row(r);
        }
        SchemaRel {
            vars: vars.iter().map(|&i| v(i)).collect(),
            rel,
        }
    }

    fn sorted_rows(s: &SchemaRel) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = s.rel.rows().map(|r| r.to_vec()).collect();
        out.sort();
        out
    }

    #[test]
    fn hash_join_basic() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20], &[3, 10]]);
        let b = sr(&[1, 2], &[&[10, 7], &[10, 8], &[30, 9]]);
        let j = hash_join(&a, &b, 5);
        assert_eq!(j.vars, vec![v(0), v(1), v(2)]);
        assert_eq!(
            sorted_rows(&j),
            vec![
                vec![1, 10, 7],
                vec![1, 10, 8],
                vec![3, 10, 7],
                vec![3, 10, 8]
            ]
        );
    }

    #[test]
    fn hash_join_build_side_invariance() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20]]);
        let b = sr(&[1, 2], &[&[10, 7], &[20, 8], &[20, 9], &[5, 5]]);
        let ab = hash_join(&a, &b, 1);
        // Force the other build side by making `a` the bigger input.
        let mut big_a = a.clone();
        for _ in 0..5 {
            big_a.rel.push_row(&[99, 99]);
        }
        let ab2 = hash_join(&big_a, &b, 1);
        // The common results must coincide (the 99s join nothing).
        assert_eq!(sorted_rows(&ab), sorted_rows(&ab2));
    }

    #[test]
    fn hash_join_multi_key() {
        let a = sr(&[0, 1], &[&[1, 2], &[1, 3]]);
        let b = sr(&[0, 1, 2], &[&[1, 2, 77], &[1, 9, 88]]);
        let j = hash_join(&a, &b, 2);
        assert_eq!(sorted_rows(&j), vec![vec![1, 2, 77]]);
        assert_eq!(j.vars, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn hash_join_cartesian_when_disjoint() {
        let a = sr(&[0], &[&[1], &[2]]);
        let b = sr(&[1], &[&[7], &[8]]);
        let j = hash_join(&a, &b, 3);
        assert_eq!(j.rel.len(), 4);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let a = sr(&[0, 1], &[&[3, 10], &[1, 10], &[2, 20], &[9, 30]]);
        let b = sr(&[1, 2], &[&[20, 1], &[10, 7], &[10, 8], &[40, 2]]);
        let h = hash_join(&a, &b, 4);
        let (m, sorted, _) = merge_join(&a, &b, 4);
        assert_eq!(sorted_rows(&h), sorted_rows(&m));
        assert_eq!(sorted, 8);
    }

    #[test]
    fn merge_join_duplicate_keys_cross_product() {
        let a = sr(&[0, 1], &[&[1, 5], &[2, 5]]);
        let b = sr(&[1, 2], &[&[5, 8], &[5, 9]]);
        let (m, _, _) = merge_join(&a, &b, 0);
        assert_eq!(m.rel.len(), 4);
    }

    #[test]
    fn semijoin_keeps_matching() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let b = sr(&[1], &[&[10], &[30]]);
        let s = semijoin(&a, &b, 6);
        assert_eq!(sorted_rows(&s), vec![vec![1, 10], vec![3, 30]]);
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let a = sr(&[0], &[&[1]]);
        let b_empty = sr(&[1], &[]);
        assert!(semijoin(&a, &b_empty, 0).rel.is_empty());
        let b_full = sr(&[1], &[&[9]]);
        assert_eq!(semijoin(&a, &b_full, 0).rel.len(), 1);
    }

    #[test]
    fn filter_and_project() {
        let a = sr(&[0, 1], &[&[1, 10], &[20, 2]]);
        let f = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Var(v(1)),
        };
        let out = a.filter(&[f]);
        assert_eq!(out.rel.len(), 1);
        let p = out.project(&[v(1)]);
        assert_eq!(p.vars, vec![v(1)]);
        assert_eq!(p.rel.row(0), &[10]);
    }

    #[test]
    fn join_table_probe_exact() {
        let r = Relation::from_rows(2, [[1u64, 2], [1, 3], [4, 2]].iter());
        let t = JoinTable::build(&r, &[0], 9);
        let hits: Vec<usize> = t.probe(&[1]).collect();
        assert_eq!(hits.len(), 2);
        assert!(t.contains(&[4]));
        assert!(!t.contains(&[9]));
    }

    #[test]
    fn join_table_empty() {
        let r = Relation::new(1);
        let t = JoinTable::build(&r, &[0], 1);
        assert!(!t.contains(&[5]));
    }

    #[test]
    fn covers_filter_checks_schema() {
        let a = sr(&[0, 1], &[]);
        let f = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Var(v(2)),
        };
        assert!(!a.covers_filter(&f));
        let g = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Const(5),
        };
        assert!(a.covers_filter(&g));
    }
}
