//! Per-worker local join operators: binary hash join, binary sort-merge
//! join, and hash semijoin. These run inside worker tasks; the engine
//! times them to produce per-worker busy times.

use parjoin_common::sort::sorted_indices;
use parjoin_common::{hash, Relation, Value};
use parjoin_query::{Filter, VarId};
use std::time::{Duration, Instant};

/// A relation whose columns are bound to query variables — the unit local
/// operators work on.
#[derive(Debug, Clone)]
pub struct SchemaRel {
    /// One variable per column.
    pub vars: Vec<VarId>,
    /// The data.
    pub rel: Relation,
}

impl SchemaRel {
    /// Column index of `v`, if bound.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// True when every variable of `f` is bound by this schema.
    pub fn covers_filter(&self, f: &Filter) -> bool {
        f.vars().iter().all(|v| self.col_of(*v).is_some())
    }

    /// Applies the given filters (all of which must be covered).
    pub fn filter(&self, filters: &[Filter]) -> SchemaRel {
        if filters.is_empty() {
            return self.clone();
        }
        let lookups: Vec<(usize, parjoin_query::CmpOp, Operand2)> = filters
            .iter()
            .map(|f| {
                let l = self.col_of(f.left).expect("filter var bound"); // xtask: allow(expect): analyzer-verified binding
                let r = match f.right {
                    parjoin_query::Operand::Var(v) => {
                        // xtask: allow(expect): analyzer-verified binding
                        Operand2::Col(self.col_of(v).expect("filter var bound"))
                    }
                    parjoin_query::Operand::Const(c) => Operand2::Const(c),
                };
                (l, f.op, r)
            })
            .collect();
        let rel = self.rel.filter(|row| {
            lookups.iter().all(|&(l, op, ref r)| {
                let rv = match *r {
                    Operand2::Col(c) => row[c],
                    Operand2::Const(c) => c,
                };
                op.eval(row[l], rv)
            })
        });
        SchemaRel {
            vars: self.vars.clone(),
            rel,
        }
    }

    /// Projects onto `keep` variables (all must be bound).
    pub fn project(&self, keep: &[VarId]) -> SchemaRel {
        let cols: Vec<usize> = keep
            .iter()
            .map(|&v| self.col_of(v).expect("projection var bound")) // xtask: allow(expect): analyzer-verified binding
            .collect();
        SchemaRel {
            vars: keep.to_vec(),
            rel: self.rel.project(&cols),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Operand2 {
    Col(usize),
    Const(Value),
}

/// An open-chaining hash table over composite `u64` keys, allocation-free
/// per row (head/next index chains into flat buffers).
pub struct JoinTable {
    key_arity: usize,
    keys: Vec<Value>,
    rows: Vec<u32>,
    heads: Vec<i64>,
    next: Vec<i64>,
    mask: usize,
    seed: u64,
}

impl JoinTable {
    /// Builds a table over `rel`'s `key_cols` values.
    pub fn build(rel: &Relation, key_cols: &[usize], seed: u64) -> Self {
        let n = rel.len();
        let cap = (2 * n).next_power_of_two().max(16);
        let mut t = JoinTable {
            key_arity: key_cols.len(),
            keys: Vec::with_capacity(n * key_cols.len()),
            rows: Vec::with_capacity(n),
            heads: vec![-1; cap],
            next: Vec::with_capacity(n),
            mask: cap - 1,
            seed,
        };
        for (i, row) in rel.rows().enumerate() {
            let mut acc = t.seed;
            for &c in key_cols {
                acc = hash::hash64(row[c], acc);
                t.keys.push(row[c]);
            }
            let slot = (acc as usize) & t.mask;
            t.next.push(t.heads[slot]);
            t.heads[slot] = i as i64;
            t.rows.push(i as u32);
        }
        t
    }

    /// Iterates the row indices whose key equals `key`.
    pub fn probe<'a>(&'a self, key: &'a [Value]) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(key.len(), self.key_arity);
        let mut acc = self.seed;
        for &v in key {
            acc = hash::hash64(v, acc);
        }
        let mut cur = self.heads[(acc as usize) & self.mask];
        std::iter::from_fn(move || {
            while cur >= 0 {
                let e = cur as usize;
                cur = self.next[e];
                let stored = &self.keys[e * self.key_arity..(e + 1) * self.key_arity];
                if stored == key {
                    return Some(self.rows[e] as usize);
                }
            }
            None
        })
    }

    /// True when some row matches `key`.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.probe(key).next().is_some()
    }

    /// [`JoinTable::probe`] specialized to single-column keys (the common
    /// Q1–Q8 case): the key is one `u64`, so the chain walk compares a
    /// scalar instead of a slice and the caller skips building a key
    /// buffer per probe row.
    ///
    /// # Panics
    /// Panics (debug) if the table's key arity is not 1.
    #[inline]
    pub fn probe1(&self, key: Value) -> impl Iterator<Item = usize> + '_ {
        debug_assert_eq!(self.key_arity, 1, "probe1 needs key arity 1");
        let mut cur = self.heads[(hash::hash64(key, self.seed) as usize) & self.mask];
        std::iter::from_fn(move || {
            while cur >= 0 {
                let e = cur as usize;
                cur = self.next[e];
                if self.keys[e] == key {
                    return Some(self.rows[e] as usize);
                }
            }
            None
        })
    }

    /// [`JoinTable::contains`] for single-column keys.
    ///
    /// # Panics
    /// Panics (debug) if the table's key arity is not 1.
    #[inline]
    pub fn contains1(&self, key: Value) -> bool {
        self.probe1(key).next().is_some()
    }
}

/// The join variables two schemas share.
pub fn shared_vars(a: &SchemaRel, b: &SchemaRel) -> Vec<VarId> {
    a.vars
        .iter()
        .copied()
        .filter(|v| b.col_of(*v).is_some())
        .collect()
}

fn output_schema(a: &SchemaRel, b: &SchemaRel) -> (Vec<VarId>, Vec<usize>) {
    // Output vars: a's vars then b's vars not already bound; also return
    // the b-columns to append.
    let mut vars = a.vars.clone();
    let mut b_cols = Vec::new();
    for (c, &v) in b.vars.iter().enumerate() {
        if a.col_of(v).is_none() {
            vars.push(v);
            b_cols.push(c);
        }
    }
    (vars, b_cols)
}

/// The fixed (per-join, not per-row) state of a binary hash join: side
/// assignment, key columns, built table, and output schema. Splitting
/// this out of [`hash_join`] lets the morsel-parallel probe layer
/// ([`crate::probe`]) build once and probe disjoint row ranges from many
/// threads — `JoinTable` is all flat `Vec`s, so sharing it read-only
/// across scoped threads is free.
pub(crate) struct HashJoinShape<'a> {
    build: &'a SchemaRel,
    probe: &'a SchemaRel,
    build_is_a: bool,
    probe_cols: Vec<usize>,
    /// Output vars: a's vars then b-only vars.
    pub vars: Vec<VarId>,
    b_only_cols: Vec<usize>,
    pub table: JoinTable,
}

impl<'a> HashJoinShape<'a> {
    /// Plans the join (smaller side builds) and builds the hash table.
    pub fn new(a: &'a SchemaRel, b: &'a SchemaRel, seed: u64) -> Self {
        let on = shared_vars(a, b);
        let (build, probe, build_is_a) = if a.rel.len() <= b.rel.len() {
            (a, b, true)
        } else {
            (b, a, false)
        };
        let build_cols: Vec<usize> = on
            .iter()
            .map(|&v| build.col_of(v).expect("shared")) // xtask: allow(expect): analyzer-verified binding
            .collect();
        let probe_cols: Vec<usize> = on
            .iter()
            .map(|&v| probe.col_of(v).expect("shared")) // xtask: allow(expect): analyzer-verified binding
            .collect();
        let table = JoinTable::build(&build.rel, &build_cols, seed);
        let (vars, b_only_cols) = output_schema(a, b);
        HashJoinShape {
            build,
            probe,
            build_is_a,
            probe_cols,
            vars,
            b_only_cols,
            table,
        }
    }

    /// Rows on the probe side.
    pub fn probe_len(&self) -> usize {
        self.probe.rel.len()
    }

    /// Probes rows `[lo, hi)` of the probe side, emitting matches in
    /// probe-row order. Concatenating the outputs of a partition of
    /// `[0, probe_len)` in range order is byte-identical to one full
    /// probe pass — the morsel determinism invariant.
    pub fn probe_range(&self, lo: usize, hi: usize) -> Relation {
        let mut out = Relation::new(self.vars.len().max(1));
        let mut row_buf: Vec<Value> = Vec::with_capacity(self.vars.len());
        let mut emit = |prow: &[Value], bidx: usize, out: &mut Relation| {
            let brow = self.build.rel.row(bidx);
            let (arow, brow2) = if self.build_is_a {
                (brow, prow)
            } else {
                (prow, brow)
            };
            row_buf.clear();
            row_buf.extend_from_slice(arow);
            row_buf.extend(self.b_only_cols.iter().map(|&c| brow2[c]));
            out.push_row(&row_buf);
        };
        if let [pc] = self.probe_cols[..] {
            // Single-key fast path: scalar probe, no key buffer.
            for p in lo..hi {
                let prow = self.probe.rel.row(p);
                for bidx in self.table.probe1(prow[pc]) {
                    emit(prow, bidx, &mut out);
                }
            }
        } else {
            let mut key = Vec::with_capacity(self.probe_cols.len());
            for p in lo..hi {
                let prow = self.probe.rel.row(p);
                key.clear();
                key.extend(self.probe_cols.iter().map(|&c| prow[c]));
                for bidx in self.table.probe(&key) {
                    emit(prow, bidx, &mut out);
                }
            }
        }
        out
    }
}

/// Binary hash join (the paper's symmetric-hash-join stand-in: we build
/// on the smaller input and probe with the larger, which produces the
/// same output and the same asymptotic CPU work as pulling both sides
/// round-robin into two tables).
///
/// Join keys are the shared variables; with no shared variable this is a
/// cartesian product (allowed, used by selection-only atoms of Q3/Q7).
pub fn hash_join(a: &SchemaRel, b: &SchemaRel, seed: u64) -> SchemaRel {
    let shape = HashJoinShape::new(a, b, seed);
    let rel = shape.probe_range(0, shape.probe_len());
    SchemaRel {
        vars: shape.vars,
        rel,
    }
}

/// Binary sort-merge join: sorts both inputs by the shared variables and
/// merges. This is what "Tributary join with regular shuffle" degenerates
/// to — "a binary Tributary join, which is a merge-join" (§3).
///
/// Returns the result, the number of tuples materialized in sort buffers
/// (for memory accounting: both inputs are copied and sorted), and the
/// time spent sorting — the prep component of `RS_TJ`'s prep-vs-probe
/// breakdown (paper Table 5 reports "both sorts: 5%" for `RS_TJ`).
pub fn merge_join(a: &SchemaRel, b: &SchemaRel, _seed: u64) -> (SchemaRel, u64, Duration) {
    let on = shared_vars(a, b);
    if on.is_empty() {
        // Degenerate to a cartesian product via hash join with empty key.
        return (hash_join(a, b, 0), 0, Duration::ZERO);
    }
    let a_cols: Vec<usize> = on.iter().map(|&v| a.col_of(v).expect("shared")).collect(); // xtask: allow(expect): analyzer-verified binding
    let b_cols: Vec<usize> = on.iter().map(|&v| b.col_of(v).expect("shared")).collect(); // xtask: allow(expect): analyzer-verified binding

    // Index-sort both sides with the radix kernels of `common::sort`:
    // project the key columns into a contiguous row-major buffer (radix
    // needs key-major layout) and sort its index array. The kernels are
    // stable, so equal-key runs keep input row order — a determinism
    // upgrade over the old unstable comparator closure.
    let t_sort = Instant::now();
    let pa = a.rel.project(&a_cols);
    let ia = sorted_indices(pa.raw(), pa.arity(), 0, pa.len());
    let pb = b.rel.project(&b_cols);
    let ib = sorted_indices(pb.raw(), pb.arity(), 0, pb.len());
    let sort_time = t_sort.elapsed();
    let sort_buffer_tuples = (a.rel.len() + b.rel.len()) as u64;

    let key_of = |r: &Relation, cols: &[usize], i: u32| -> Vec<Value> {
        cols.iter().map(|&c| r.row(i as usize)[c]).collect()
    };

    let (vars, b_only_cols) = output_schema(a, b);
    let mut out = Relation::new(vars.len().max(1));
    let mut row_buf: Vec<Value> = Vec::with_capacity(vars.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let ka = key_of(&a.rel, &a_cols, ia[i]);
        let kb = key_of(&b.rel, &b_cols, ib[j]);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Extent of equal-key runs on both sides.
                let mut ie = i;
                while ie < ia.len() && key_of(&a.rel, &a_cols, ia[ie]) == ka {
                    ie += 1;
                }
                let mut je = j;
                while je < ib.len() && key_of(&b.rel, &b_cols, ib[je]) == kb {
                    je += 1;
                }
                for &xa in &ia[i..ie] {
                    let arow = a.rel.row(xa as usize);
                    for &yb in &ib[j..je] {
                        let brow = b.rel.row(yb as usize);
                        row_buf.clear();
                        row_buf.extend_from_slice(arow);
                        row_buf.extend(b_only_cols.iter().map(|&c| brow[c]));
                        out.push_row(&row_buf);
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    (SchemaRel { vars, rel: out }, sort_buffer_tuples, sort_time)
}

/// The fixed state of a hash semijoin `a ⋉ b`: key columns on the `a`
/// side and the membership table over `b`. `None` when the schemas share
/// no variable (the caller handles that degenerate case). Like
/// [`HashJoinShape`], this exists so [`crate::probe`] can build once and
/// filter disjoint `a`-row ranges concurrently.
pub(crate) struct SemijoinShape {
    a_cols: Vec<usize>,
    table: JoinTable,
}

impl SemijoinShape {
    /// Plans the semijoin and builds the membership table over `b`.
    pub fn new(a: &SchemaRel, b: &SchemaRel, seed: u64) -> Option<Self> {
        let on = shared_vars(a, b);
        if on.is_empty() {
            return None;
        }
        let b_cols: Vec<usize> = on.iter().map(|&v| b.col_of(v).expect("shared")).collect(); // xtask: allow(expect): analyzer-verified binding
        let a_cols: Vec<usize> = on.iter().map(|&v| a.col_of(v).expect("shared")).collect(); // xtask: allow(expect): analyzer-verified binding
        Some(SemijoinShape {
            a_cols,
            table: JoinTable::build(&b.rel, &b_cols, seed),
        })
    }

    /// Keeps the matching rows of `a[lo..hi]`, in input row order —
    /// concatenating a partition of `[0, a.len)` in range order equals
    /// one full pass.
    pub fn filter_range(&self, a: &SchemaRel, lo: usize, hi: usize) -> Relation {
        let mut out = Relation::new(a.rel.arity().max(1));
        if let [ac] = self.a_cols[..] {
            for i in lo..hi {
                let row = a.rel.row(i);
                if self.table.contains1(row[ac]) {
                    out.push_row(row);
                }
            }
        } else {
            let mut key = Vec::with_capacity(self.a_cols.len());
            for i in lo..hi {
                let row = a.rel.row(i);
                key.clear();
                key.extend(self.a_cols.iter().map(|&c| row[c]));
                if self.table.contains(&key) {
                    out.push_row(row);
                }
            }
        }
        out
    }
}

/// Hash semijoin `a ⋉ b` on their shared variables: keeps the `a` rows
/// with at least one match in `b`.
pub fn semijoin(a: &SchemaRel, b: &SchemaRel, seed: u64) -> SchemaRel {
    let Some(shape) = SemijoinShape::new(a, b, seed) else {
        return if b.rel.is_empty() {
            SchemaRel {
                vars: a.vars.clone(),
                rel: Relation::new(a.vars.len().max(1)),
            }
        } else {
            a.clone()
        };
    };
    SchemaRel {
        vars: a.vars.clone(),
        rel: shape.filter_range(a, 0, a.rel.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::CmpOp;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn sr(vars: &[u32], rows: &[&[u64]]) -> SchemaRel {
        let mut rel = Relation::new(vars.len());
        for r in rows {
            rel.push_row(r);
        }
        SchemaRel {
            vars: vars.iter().map(|&i| v(i)).collect(),
            rel,
        }
    }

    fn sorted_rows(s: &SchemaRel) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = s.rel.rows().map(|r| r.to_vec()).collect();
        out.sort();
        out
    }

    #[test]
    fn hash_join_basic() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20], &[3, 10]]);
        let b = sr(&[1, 2], &[&[10, 7], &[10, 8], &[30, 9]]);
        let j = hash_join(&a, &b, 5);
        assert_eq!(j.vars, vec![v(0), v(1), v(2)]);
        assert_eq!(
            sorted_rows(&j),
            vec![
                vec![1, 10, 7],
                vec![1, 10, 8],
                vec![3, 10, 7],
                vec![3, 10, 8]
            ]
        );
    }

    #[test]
    fn hash_join_build_side_invariance() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20]]);
        let b = sr(&[1, 2], &[&[10, 7], &[20, 8], &[20, 9], &[5, 5]]);
        let ab = hash_join(&a, &b, 1);
        // Force the other build side by making `a` the bigger input.
        let mut big_a = a.clone();
        for _ in 0..5 {
            big_a.rel.push_row(&[99, 99]);
        }
        let ab2 = hash_join(&big_a, &b, 1);
        // The common results must coincide (the 99s join nothing).
        assert_eq!(sorted_rows(&ab), sorted_rows(&ab2));
    }

    #[test]
    fn hash_join_multi_key() {
        let a = sr(&[0, 1], &[&[1, 2], &[1, 3]]);
        let b = sr(&[0, 1, 2], &[&[1, 2, 77], &[1, 9, 88]]);
        let j = hash_join(&a, &b, 2);
        assert_eq!(sorted_rows(&j), vec![vec![1, 2, 77]]);
        assert_eq!(j.vars, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn hash_join_cartesian_when_disjoint() {
        let a = sr(&[0], &[&[1], &[2]]);
        let b = sr(&[1], &[&[7], &[8]]);
        let j = hash_join(&a, &b, 3);
        assert_eq!(j.rel.len(), 4);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let a = sr(&[0, 1], &[&[3, 10], &[1, 10], &[2, 20], &[9, 30]]);
        let b = sr(&[1, 2], &[&[20, 1], &[10, 7], &[10, 8], &[40, 2]]);
        let h = hash_join(&a, &b, 4);
        let (m, sorted, _) = merge_join(&a, &b, 4);
        assert_eq!(sorted_rows(&h), sorted_rows(&m));
        assert_eq!(sorted, 8);
    }

    #[test]
    fn merge_join_duplicate_keys_cross_product() {
        let a = sr(&[0, 1], &[&[1, 5], &[2, 5]]);
        let b = sr(&[1, 2], &[&[5, 8], &[5, 9]]);
        let (m, _, _) = merge_join(&a, &b, 0);
        assert_eq!(m.rel.len(), 4);
    }

    #[test]
    fn semijoin_keeps_matching() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let b = sr(&[1], &[&[10], &[30]]);
        let s = semijoin(&a, &b, 6);
        assert_eq!(sorted_rows(&s), vec![vec![1, 10], vec![3, 30]]);
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let a = sr(&[0], &[&[1]]);
        let b_empty = sr(&[1], &[]);
        assert!(semijoin(&a, &b_empty, 0).rel.is_empty());
        let b_full = sr(&[1], &[&[9]]);
        assert_eq!(semijoin(&a, &b_full, 0).rel.len(), 1);
    }

    #[test]
    fn filter_and_project() {
        let a = sr(&[0, 1], &[&[1, 10], &[20, 2]]);
        let f = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Var(v(1)),
        };
        let out = a.filter(&[f]);
        assert_eq!(out.rel.len(), 1);
        let p = out.project(&[v(1)]);
        assert_eq!(p.vars, vec![v(1)]);
        assert_eq!(p.rel.row(0), &[10]);
    }

    #[test]
    fn join_table_probe_exact() {
        let r = Relation::from_rows(2, [[1u64, 2], [1, 3], [4, 2]].iter());
        let t = JoinTable::build(&r, &[0], 9);
        let hits: Vec<usize> = t.probe(&[1]).collect();
        assert_eq!(hits.len(), 2);
        assert!(t.contains(&[4]));
        assert!(!t.contains(&[9]));
    }

    #[test]
    fn probe1_matches_generic_probe() {
        let r = Relation::from_rows(2, [[1u64, 2], [1, 3], [4, 2], [7, 7]].iter());
        let t = JoinTable::build(&r, &[0], 9);
        for k in 0..10u64 {
            let fast: Vec<usize> = t.probe1(k).collect();
            let slow: Vec<usize> = t.probe(&[k]).collect();
            assert_eq!(fast, slow, "key {k}");
            assert_eq!(t.contains1(k), t.contains(&[k]), "key {k}");
        }
    }

    #[test]
    fn hash_join_range_probe_concatenates() {
        let a = sr(&[0, 1], &[&[1, 10], &[2, 20], &[3, 10], &[4, 20]]);
        let b = sr(&[1, 2], &[&[10, 7], &[20, 8], &[10, 9]]);
        let full = hash_join(&a, &b, 5);
        let shape = HashJoinShape::new(&a, &b, 5);
        let n = shape.probe_len();
        for split in 0..=n {
            let mut out = shape.probe_range(0, split);
            out.extend_from(&shape.probe_range(split, n));
            assert_eq!(out.raw(), full.rel.raw(), "split at {split}");
        }
    }

    #[test]
    fn join_table_empty() {
        let r = Relation::new(1);
        let t = JoinTable::build(&r, &[0], 1);
        assert!(!t.contains(&[5]));
    }

    #[test]
    fn covers_filter_checks_schema() {
        let a = sr(&[0, 1], &[]);
        let f = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Var(v(2)),
        };
        assert!(!a.covers_filter(&f));
        let g = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Const(5),
        };
        assert!(a.covers_filter(&g));
    }
}
