//! A cost-based plan advisor.
//!
//! The paper's summary is that *"there is no overall best query plan"*:
//! regular shuffles win when intermediates are small and skew is mild
//! (Q3), HyperCube+Tributary wins when intermediates blow up or skew
//! bites (Q1/Q2/Q4/Q5/Q6), and broadcast wins when the replication factor
//! of a high-dimensional cube gets too large (Q4 in the paper). This
//! module turns that analysis into an optimizer: it estimates, per
//! configuration, the network volume and the busiest worker's load from
//! the same statistics the share optimizer and the §5 cost model already
//! use, and picks the cheapest plan.
//!
//! Estimates (all in tuples):
//!
//! * **RS** — walk the fanout-greedy join order, estimating each
//!   intermediate as `|cur| · |atom| / V(atom, key)`; network = inputs +
//!   intermediates (each step reshuffles both); the busiest worker's
//!   share of each shuffled relation is `1/p` inflated by a skew factor
//!   estimated from the hashed key's hottest value.
//! * **BR** — network = (Σ non-largest atoms) · p; every worker holds all
//!   broadcast atoms plus `1/p` of the largest.
//! * **HC** — Algorithm 1's own objective: the expected per-worker
//!   workload of the optimal integral configuration, plus its exact
//!   replication volume.

use crate::cluster::Cluster;
use crate::plans::{JoinAlg, ShuffleAlg};
use parjoin_analyze::{self as analyze, Diagnostic};
use parjoin_common::{Database, Relation};
use parjoin_core::hypercube::{AtomShape, HcConfig, ShareProblem};
use parjoin_query::{resolve_atoms, ConjunctiveQuery, VarId};

/// The advisor's verdict: a configuration plus its cost estimates.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Chosen shuffle algorithm.
    pub shuffle: ShuffleAlg,
    /// Chosen local join algorithm.
    pub join: JoinAlg,
    /// Estimated cost (see [`PlanEstimate`]) per shuffle algorithm, in
    /// the order `[Regular, Broadcast, HyperCube]`.
    pub estimates: [PlanEstimate; 3],
}

/// Cost estimate for one shuffle strategy.
#[derive(Debug, Clone, Copy)]
pub struct PlanEstimate {
    /// Estimated total tuples placed on the network.
    pub network_tuples: f64,
    /// Estimated tuples handled by the busiest worker.
    pub max_worker_tuples: f64,
}

impl PlanEstimate {
    /// The scalar objective: the busiest worker's send/receive/compute
    /// load dominates a one-round plan's latency (§4), and the network
    /// volume amortized over workers approximates everyone's
    /// serialization work.
    fn cost(&self, workers: usize) -> f64 {
        self.max_worker_tuples + self.network_tuples / workers as f64
    }
}

/// Per-atom statistics the estimates need.
struct AtomInfo {
    vars: Vec<VarId>,
    card: f64,
    /// Distinct count per column.
    distinct: Vec<f64>,
    /// Hottest value frequency per column.
    top_freq: Vec<f64>,
}

fn atom_info(rel: &Relation, vars: &[VarId]) -> AtomInfo {
    let mut distinct = Vec::with_capacity(vars.len());
    let mut top_freq = Vec::with_capacity(vars.len());
    for c in 0..rel.arity() {
        let col = rel.project(&[c]);
        let mut sorted = col.clone();
        sorted.sort_lex();
        let mut best = 0u64;
        let mut run = 0u64;
        let mut prev: Option<u64> = None;
        let mut d = 0u64;
        for row in sorted.rows() {
            if prev == Some(row[0]) {
                run += 1;
            } else {
                d += 1;
                run = 1;
                prev = Some(row[0]);
            }
            best = best.max(run);
        }
        distinct.push(d.max(1) as f64);
        top_freq.push(best as f64);
    }
    AtomInfo {
        vars: vars.to_vec(),
        card: rel.len() as f64,
        distinct,
        top_freq,
    }
}

/// Estimates the regular-shuffle plan by walking a fanout-greedy order.
fn estimate_rs(atoms: &[AtomInfo], workers: usize) -> PlanEstimate {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Start from the smallest atom.
    let first = *remaining
        .iter()
        .min_by(|&&a, &&b| atoms[a].card.total_cmp(&atoms[b].card))
        // `remaining` starts as 0..atoms.len() and the query has atoms.
        // xtask: allow(expect)
        .expect("non-empty");
    remaining.retain(|&i| i != first);
    let mut bound: Vec<VarId> = atoms[first].vars.clone();
    let mut cur_size = atoms[first].card;

    let mut network = cur_size;
    let mut max_worker = cur_size / workers as f64;

    while !remaining.is_empty() {
        // Fanout-greedy next atom, mirroring the executor.
        let score = |i: usize| -> f64 {
            let a = &atoms[i];
            let shared: f64 = a
                .vars
                .iter()
                .enumerate()
                .filter(|(_, v)| bound.contains(v))
                .map(|(c, _)| a.distinct[c])
                .product();
            if a.vars.iter().any(|v| bound.contains(v)) {
                a.card / shared
            } else {
                f64::INFINITY
            }
        };
        let next = *remaining
            .iter()
            .min_by(|&&a, &&b| score(a).total_cmp(&score(b)))
            // The enclosing `while !remaining.is_empty()` guards this.
            // xtask: allow(expect)
            .expect("non-empty");
        remaining.retain(|&i| i != next);
        let a = &atoms[next];

        // Shuffle both sides on (one of) the shared variables.
        let shared_cols: Vec<usize> = a
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| bound.contains(v))
            .map(|(c, _)| c)
            .collect();
        network += cur_size + a.card;
        // Skew factor of the hashed single attribute: the hottest key's
        // frequency relative to the average key (capped at p — one worker
        // can at most receive everything). A power-law hub makes this
        // large; near-unique keys give ≈ 1.
        let skew = shared_cols
            .last()
            .map(|&c| {
                let avg_freq = (a.card / a.distinct[c]).max(1.0);
                (a.top_freq[c] / avg_freq).clamp(1.0, workers as f64)
            })
            .unwrap_or(1.0);
        max_worker = max_worker.max((cur_size + a.card) / workers as f64 * skew);

        // Estimated join output.
        let fanout: f64 = if shared_cols.is_empty() {
            a.card // cartesian: degenerate
        } else {
            let shared_distinct: f64 = shared_cols.iter().map(|&c| a.distinct[c]).product();
            a.card / shared_distinct.max(1.0)
        };
        cur_size *= fanout;
        for &v in &a.vars {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        // The output is reshuffled at the next step (or projected at the
        // end); its production concentrates on the worker holding the hot
        // key ("the skew factors are multiplied", §3.1).
        max_worker = max_worker.max(cur_size / workers as f64 * skew);
    }
    PlanEstimate {
        network_tuples: network,
        max_worker_tuples: max_worker,
    }
}

fn estimate_br(atoms: &[AtomInfo], workers: usize) -> PlanEstimate {
    let largest = atoms.iter().map(|a| a.card).fold(0.0f64, f64::max);
    let total: f64 = atoms.iter().map(|a| a.card).sum();
    let broadcast = total - largest;
    PlanEstimate {
        network_tuples: broadcast * workers as f64,
        max_worker_tuples: broadcast + largest / workers as f64,
    }
}

fn estimate_hc(query: &ConjunctiveQuery, atoms: &[AtomInfo], workers: usize) -> PlanEstimate {
    let problem = ShareProblem {
        vars: query.all_vars(),
        atoms: atoms
            .iter()
            .map(|a| AtomShape {
                vars: a.vars.clone(),
                cardinality: a.card as u64,
            })
            .collect(),
    };
    let config = problem.optimize(workers);
    PlanEstimate {
        network_tuples: config.expected_tuples_shuffled(&problem),
        max_worker_tuples: config.workload(&problem),
    }
}

/// Chooses a configuration for `query` on `db`.
///
/// The join algorithm follows the paper's findings: one-round plans pair
/// with the Tributary join (it needs all inputs co-located and beats a
/// local hash tree on multi-join queries), while regular-shuffle plans
/// pair with pipelined hash joins (the blocking sort-merge variant risks
/// memory blow-ups — Figure 9's FAIL — and rarely wins).
///
/// # Panics
/// Panics if the query does not resolve against `db` (missing relations).
pub fn advise(query: &ConjunctiveQuery, db: &Database, cluster: &Cluster) -> Advice {
    // Documented API contract (see `# Panics`). xtask: allow(expect)
    let (resolved, _) = resolve_atoms(query, db).expect("query resolves against catalog");
    let infos: Vec<AtomInfo> = resolved
        .iter()
        .map(|a| atom_info(a.rel.as_ref(), &a.vars))
        .collect();
    let workers = cluster.workers;

    let rs = estimate_rs(&infos, workers);
    let br = estimate_br(&infos, workers);
    let hc = estimate_hc(query, &infos, workers);
    let estimates = [rs, br, hc];

    let algs = [
        ShuffleAlg::Regular,
        ShuffleAlg::Broadcast,
        ShuffleAlg::HyperCube,
    ];
    let best = (0..3)
        .min_by(|&a, &b| {
            estimates[a]
                .cost(workers)
                .total_cmp(&estimates[b].cost(workers))
        })
        // The range 0..3 is never empty. xtask: allow(expect)
        .expect("three candidates");
    let shuffle = algs[best];
    let join = match shuffle {
        ShuffleAlg::Regular => {
            if query.atoms.len() <= 2 {
                JoinAlg::Tributary // a single merge join is fine
            } else {
                JoinAlg::Hash
            }
        }
        _ => JoinAlg::Tributary,
    };
    Advice {
        shuffle,
        join,
        estimates,
    }
}

/// [`advise`] extended with a certified-transfer check against a
/// previous query's placement (see [`advise_followup`]).
#[derive(Debug, Clone)]
pub struct Followup {
    /// The chosen configuration (possibly the previous query's, when
    /// its placement transfers and is not badly suboptimal).
    pub advice: Advice,
    /// `Some(policy label)` when the previous query's placement was
    /// *certified* parallel-correct for this query and the advisor
    /// chose to reuse it — the follow-up can then skip re-shuffling
    /// the shared relations entirely.
    pub transferred: Option<String>,
    /// The transfer check's R424/R425 diagnostics (empty when the
    /// previous plan left no persistent placement to inherit).
    pub diagnostics: Vec<Diagnostic>,
}

/// The distribution policy a one-round plan of `prev` left behind, or
/// `None` when nothing persistent remains: regular plans re-partition
/// at every step on keys of *that* query's join order, so their final
/// placement is an intermediate's, not the base relations'.
fn one_round_policy(
    prev: &ConjunctiveQuery,
    prev_shuffle: ShuffleAlg,
    prev_hc_config: Option<&HcConfig>,
    db: &Database,
    cluster: &Cluster,
) -> Option<analyze::Policy> {
    let kind = match prev_shuffle {
        ShuffleAlg::Regular => return None,
        ShuffleAlg::Broadcast => analyze::ShuffleKind::Broadcast,
        ShuffleAlg::HyperCube => analyze::ShuffleKind::HyperCube,
    };
    let (resolved, _) = resolve_atoms(prev, db).ok()?;
    let cards: Vec<u64> = resolved.iter().map(|a| a.len() as u64).collect();
    let mut spec =
        analyze::PlanSpec::new(prev, cluster.workers, kind, analyze::JoinKind::Tributary)
            .with_cards(cards)
            .with_seed(cluster.seed);
    if let Some(c) = prev_hc_config {
        spec = spec.with_hc_config(c.clone());
    }
    let planned = analyze::planned_policy(&spec)?;
    let [unit] = &planned.units[..] else {
        return None;
    };
    Some(unit.policy.clone())
}

/// [`advise`] for a follow-up query, given the plan the *previous*
/// query ran (its shuffle strategy and, for HyperCube plans, the share
/// configuration actually used — [`crate::RunResult::hc_config`]).
///
/// When the previous plan's placement is statically certified
/// parallel-correct for `query` ([`analyze::transfer`], diagnostic
/// R424) *and* that strategy's own cost estimate is within 2× of the
/// best fresh plan, the advisor keeps the previous configuration —
/// answering the follow-up on the data where it already sits beats a
/// re-shuffle unless the inherited plan is badly suboptimal. In every
/// other case the verdict is exactly [`advise`]'s, with the transfer
/// counterexample or non-derivability reason carried in
/// [`Followup::diagnostics`] (R425).
///
/// # Panics
/// Panics if `query` does not resolve against `db` (missing relations);
/// an unresolvable `prev` yields a fresh-plan verdict instead.
pub fn advise_followup(
    prev: &ConjunctiveQuery,
    prev_shuffle: ShuffleAlg,
    prev_hc_config: Option<&HcConfig>,
    query: &ConjunctiveQuery,
    db: &Database,
    cluster: &Cluster,
) -> Followup {
    let mut advice = advise(query, db, cluster);
    let mut diagnostics = Vec::new();
    let mut transferred = None;
    if let Some(policy) = one_round_policy(prev, prev_shuffle, prev_hc_config, db, cluster) {
        let certified =
            analyze::transfer::transfer_diagnostics(prev, &policy, query, &mut diagnostics);
        if certified {
            let workers = cluster.workers;
            let idx = match prev_shuffle {
                ShuffleAlg::Regular => 0,
                ShuffleAlg::Broadcast => 1,
                ShuffleAlg::HyperCube => 2,
            };
            let prev_cost = advice.estimates[idx].cost(workers);
            let best_cost = advice
                .estimates
                .iter()
                .map(|e| e.cost(workers))
                .fold(f64::INFINITY, f64::min);
            if prev_cost <= 2.0 * best_cost {
                advice.shuffle = prev_shuffle;
                advice.join = JoinAlg::Tributary;
                transferred = Some(policy.label.clone());
            }
        }
    }
    Followup {
        advice,
        transferred,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_datagen::{workloads, Scale};

    #[test]
    fn triangle_on_skewed_graph_prefers_hypercube() {
        let spec = workloads::q1();
        let db = Scale::small().twitter_db(42);
        let advice = advise(&spec.query, &db, &Cluster::new(64));
        assert_eq!(
            advice.shuffle,
            ShuffleAlg::HyperCube,
            "{:?}",
            advice.estimates
        );
        assert_eq!(advice.join, JoinAlg::Tributary);
    }

    #[test]
    fn selective_acyclic_query_prefers_regular() {
        // Q3: tiny selections keep every intermediate small.
        let spec = workloads::q3();
        let db = Scale::small().freebase_db(42);
        let advice = advise(&spec.query, &db, &Cluster::new(64));
        assert_eq!(
            advice.shuffle,
            ShuffleAlg::Regular,
            "{:?}",
            advice.estimates
        );
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        for spec in parjoin_datagen::all_queries() {
            let db = Scale::tiny().db_for(spec.dataset, 3);
            let advice = advise(&spec.query, &db, &Cluster::new(16));
            for e in &advice.estimates {
                assert!(e.network_tuples.is_finite() && e.network_tuples >= 0.0);
                assert!(e.max_worker_tuples.is_finite() && e.max_worker_tuples >= 0.0);
            }
        }
    }

    /// ActorPerform(a,p) ⋈ PerformFilm(p,f): each relation occurs once,
    /// so a one-round placement unambiguously determines each
    /// relation's routing.
    fn path_query(name: &str) -> ConjunctiveQuery {
        let mut b = parjoin_query::QueryBuilder::new(name);
        let (a, p, f) = (b.var("a"), b.var("p"), b.var("f"));
        b.atom("ActorPerform", [a, p]).atom("PerformFilm", [p, f]);
        b.build()
    }

    #[test]
    fn followup_reuses_certified_hypercube_placement() {
        // Re-running an isomorphic pattern query over an existing
        // placement (the paper's graphlet-counting setting): the HC
        // placement transfers, so the advisor keeps it.
        let db = Scale::small().freebase_db(42);
        let cluster = Cluster::new(64);
        let prev = path_query("P1");
        let next = path_query("P2");
        let f = advise_followup(&prev, ShuffleAlg::HyperCube, None, &next, &db, &cluster);
        assert!(
            f.diagnostics.iter().any(|d| d.code.code() == "R424"),
            "{:?}",
            f.diagnostics
        );
        assert!(f.transferred.is_some(), "{:?}", f.advice.estimates);
        assert_eq!(f.advice.shuffle, ShuffleAlg::HyperCube);
    }

    #[test]
    fn followup_after_regular_plan_starts_fresh() {
        // Regular plans leave only intermediate placements behind;
        // there is nothing to transfer and no diagnostics to emit.
        let spec = workloads::q3();
        let db = Scale::small().freebase_db(42);
        let cluster = Cluster::new(64);
        let f = advise_followup(
            &spec.query,
            ShuffleAlg::Regular,
            None,
            &spec.query,
            &db,
            &cluster,
        );
        assert!(f.transferred.is_none());
        assert!(f.diagnostics.is_empty());
    }

    #[test]
    fn followup_flags_non_transferable_placement() {
        // The path placement pins the share dimension on *its* join
        // variable; Q3 joins the same relations through different
        // variables per atom, so the inherited routing is not
        // parallel-correct for it — the advisor reports R425 and the
        // follow-up re-shuffles.
        let prev = path_query("P1");
        let q3 = workloads::q3();
        let db = Scale::small().freebase_db(42);
        let cluster = Cluster::new(64);
        let f = advise_followup(&prev, ShuffleAlg::HyperCube, None, &q3.query, &db, &cluster);
        assert!(f.transferred.is_none());
        assert!(
            f.diagnostics.iter().any(|d| d.code.code() == "R425"),
            "{:?}",
            f.diagnostics
        );
    }

    #[test]
    fn advice_is_never_catastrophic() {
        // The advisor's pick must be within a small factor of the best
        // measured configuration for every workload query.
        use crate::plans::{run_config, PlanOptions};
        let scale = Scale {
            twitter_nodes: 300,
            twitter_m: 3,
            freebase_performances: 250,
        };
        for spec in parjoin_datagen::all_queries() {
            let db = scale.db_for(spec.dataset, 7);
            let cluster = Cluster::new(8).with_seed(7);
            let advice = advise(&spec.query, &db, &cluster);
            let run = |s, j| {
                run_config(&spec.query, &db, &cluster, s, j, &PlanOptions::default())
                    .expect("runs")
                    .wall
                    .as_secs_f64()
            };
            let picked = run(advice.shuffle, advice.join);
            let candidates = [
                run(ShuffleAlg::Regular, JoinAlg::Hash),
                run(ShuffleAlg::Broadcast, JoinAlg::Tributary),
                run(ShuffleAlg::HyperCube, JoinAlg::Tributary),
            ];
            let best = candidates.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(
                picked <= best * 6.0 + 2e-3,
                "{}: picked {picked:.5}s vs best {best:.5}s",
                spec.name
            );
        }
    }
}
