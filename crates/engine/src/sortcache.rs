//! Worker-level cache of sorted relation views.
//!
//! The experiment harness runs the same base relations through 8 queries
//! × 6 configs; without a cache every `SortedAtom::prepare` re-sorts
//! from scratch even when an identical `(relation, column permutation)`
//! pair was sorted seconds ago — and the prepare phase dominates local
//! time (paper Table 5). Entries are keyed by the relation's 128-bit
//! content fingerprint plus the column permutation, so a cache hit is a
//! *content* match: mutating or regenerating a relation changes its
//! fingerprint and naturally invalidates stale views. Certified
//! entries (see [`SortCache::get_or_sort_certified`]) additionally key
//! by their route signature, so views proved under different placement
//! functions coexist instead of evicting each other — what keeps the
//! hit rate of a mixed served query stream from collapsing.
//!
//! The cache is a process-wide singleton (simulated workers are threads
//! of one process, so "worker-level" and "process-wide" coincide here)
//! with LRU eviction under a byte capacity. Runs with an explicit memory
//! budget additionally refuse to cache any single view larger than that
//! budget — the budget models per-worker memory, and a view that
//! wouldn't fit a worker's memory must not be pinned by the cache either
//! (see [`SortCache::get_or_sort`]).
//!
//! The lookup/eviction machinery itself lives in
//! [`crate::cache::KeyedCache`], shared with the columnar
//! [`TrieCache`](crate::TrieCache) that layers on top of this cache on
//! the columnar probe path.

use crate::cache::KeyedCache;
pub use crate::cache::{CacheStats, Lookup, Provenance};
use parjoin_common::Relation;
use std::sync::{Arc, OnceLock};

/// Default cache capacity in bytes. Sorted views of the paper's largest
/// inputs are tens of MiB; 256 MiB comfortably holds a full six-config
/// sweep's working set without mattering next to the host's RAM.
pub const DEFAULT_CAPACITY_BYTES: usize = 256 << 20;

/// An LRU cache mapping `(relation fingerprint, column permutation)` to
/// sorted views. See the module docs for the invalidation story.
pub struct SortCache {
    cache: KeyedCache<Relation>,
}

impl SortCache {
    /// Creates a cache with the given byte capacity (0 disables caching:
    /// every lookup misses and nothing is inserted).
    pub fn with_capacity(capacity: usize) -> SortCache {
        SortCache {
            cache: KeyedCache::with_capacity(capacity),
        }
    }

    /// The process-wide cache shared by all engine runs.
    pub fn global() -> &'static SortCache {
        static GLOBAL: OnceLock<SortCache> = OnceLock::new();
        GLOBAL.get_or_init(|| SortCache::with_capacity(DEFAULT_CAPACITY_BYTES))
    }

    /// Returns the sorted view of `rel` permuted by `cols`, serving it
    /// from the cache when the same content was sorted before, and
    /// sorting it via `sort` otherwise. The returned [`Lookup`] lets the
    /// caller tally per-run hit/miss counts.
    ///
    /// `max_entry_bytes` caps the size of any *inserted* view — pass the
    /// run's memory budget so a view too large for a worker's memory is
    /// returned but never pinned in the cache.
    pub fn get_or_sort<F>(
        &self,
        rel: &Relation,
        cols: &[usize],
        max_entry_bytes: Option<usize>,
        sort: F,
    ) -> (Arc<Relation>, Lookup)
    where
        F: FnOnce(&Relation, &[usize]) -> Relation,
    {
        let (view, lookup, _) =
            self.get_or_sort_keyed(rel.fingerprint(), rel, cols, max_entry_bytes, None, sort);
        (view, lookup)
    }

    /// [`SortCache::get_or_sort`] with a *certified* hit condition: the
    /// cached view is served only when the stored [`Provenance`]'s route
    /// signature equals `prov.route` — i.e. when the placement function
    /// that shuffled the cached fragment is provably the same one that
    /// would shuffle this request, so *every* worker's fragment matches,
    /// not just the one whose content fingerprint happened to agree.
    /// Matching content under a different or unknown route is counted
    /// as a route reject and re-sorted fresh into the requested route's
    /// own cache slot — certified entries are keyed per route, so
    /// concurrent routes never evict each other's stamps. The third
    /// return is `true` exactly on a certified hit.
    pub fn get_or_sort_certified<F>(
        &self,
        rel: &Relation,
        cols: &[usize],
        max_entry_bytes: Option<usize>,
        prov: Provenance,
        sort: F,
    ) -> (Arc<Relation>, Lookup, bool)
    where
        F: FnOnce(&Relation, &[usize]) -> Relation,
    {
        self.get_or_sort_keyed(
            rel.fingerprint(),
            rel,
            cols,
            max_entry_bytes,
            Some(prov),
            sort,
        )
    }

    /// Lookup with a caller-supplied fingerprint, so layered caches (the
    /// TrieCache keys by the same base-relation fingerprint) hash the
    /// relation once per prepare instead of once per layer.
    pub(crate) fn get_or_sort_keyed<F>(
        &self,
        fp: u128,
        rel: &Relation,
        cols: &[usize],
        max_entry_bytes: Option<usize>,
        prov: Option<Provenance>,
        sort: F,
    ) -> (Arc<Relation>, Lookup, bool)
    where
        F: FnOnce(&Relation, &[usize]) -> Relation,
    {
        self.cache
            .lookup_or_build(fp, cols, max_entry_bytes, prov, || sort(rel, cols))
    }

    /// Cumulative counters since process start (or [`SortCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Provenance stamps of the resident *certified* entries, sorted by
    /// (route, query) — which queries' runs left which placement
    /// functions' views behind. Introspection only; hits never consult
    /// the query name.
    pub fn resident_provenance(&self) -> Vec<Provenance> {
        self.cache.resident_provenance()
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(rel: &Relation, cols: &[usize]) -> Relation {
        rel.sorted_by_columns(cols)
    }

    fn sample(seed: u64) -> Relation {
        Relation::from_rows(
            2,
            (0..64u64).map(|i| [parjoin_common::hash::hash64(i, seed) % 16, i]),
        )
    }

    #[test]
    fn second_lookup_hits_and_view_matches_fresh_sort() {
        let cache = SortCache::with_capacity(1 << 20);
        let rel = sample(1);
        let (v1, l1) = cache.get_or_sort(&rel, &[1, 0], None, sorted);
        let (v2, l2) = cache.get_or_sort(&rel, &[1, 0], None, sorted);
        assert_eq!(l1, Lookup::Miss);
        assert_eq!(l2, Lookup::Hit);
        assert_eq!(v1.raw(), rel.sorted_by_columns(&[1, 0]).raw());
        assert!(Arc::ptr_eq(&v1, &v2), "hit must share the cached view");
    }

    #[test]
    fn different_permutations_are_distinct_entries() {
        let cache = SortCache::with_capacity(1 << 20);
        let rel = sample(2);
        let (_, l1) = cache.get_or_sort(&rel, &[0, 1], None, sorted);
        let (_, l2) = cache.get_or_sort(&rel, &[1, 0], None, sorted);
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Miss));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn content_change_invalidates() {
        let cache = SortCache::with_capacity(1 << 20);
        let mut rel = sample(3);
        let (_, l1) = cache.get_or_sort(&rel, &[0, 1], None, sorted);
        rel.push_row(&[99, 99]);
        let (v, l2) = cache.get_or_sort(&rel, &[0, 1], None, sorted);
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Miss));
        assert_eq!(v.raw(), rel.sorted_by_columns(&[0, 1]).raw());
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let rel = sample(4);
        let bytes = rel.sorted_by_columns(&[0, 1]).approx_bytes();
        // Room for exactly two views.
        let cache = SortCache::with_capacity(2 * bytes + bytes / 2);
        let a = sample(10);
        let b = sample(11);
        let c = sample(12);
        cache.get_or_sort(&a, &[0, 1], None, sorted);
        cache.get_or_sort(&b, &[0, 1], None, sorted);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        cache.get_or_sort(&a, &[0, 1], None, sorted);
        cache.get_or_sort(&c, &[0, 1], None, sorted);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        let (_, la) = cache.get_or_sort(&a, &[0, 1], None, sorted);
        let (_, lb) = cache.get_or_sort(&b, &[0, 1], None, sorted);
        assert_eq!((la, lb), (Lookup::Hit, Lookup::Miss), "b was evicted");
    }

    #[test]
    fn budget_caps_inserted_entries() {
        let cache = SortCache::with_capacity(1 << 20);
        let rel = sample(5);
        let (_, l1) = cache.get_or_sort(&rel, &[0, 1], Some(8), sorted);
        let (_, l2) = cache.get_or_sort(&rel, &[0, 1], Some(8), sorted);
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Miss), "view over budget");
        assert_eq!(cache.stats().entries, 0);
    }

    fn prov(query: &str, route: &str) -> Provenance {
        Provenance {
            query: query.to_string(),
            route: route.to_string(),
        }
    }

    #[test]
    fn certified_hit_requires_matching_route() {
        let cache = SortCache::with_capacity(1 << 20);
        let rel = sample(7);
        let (_, l1, c1) =
            cache.get_or_sort_certified(&rel, &[0, 1], None, prov("Q1", "hA(v0)/4"), sorted);
        assert_eq!((l1, c1), (Lookup::Miss, false));
        // Same content, same route, *different query*: the certified
        // cross-query hit the transfer machinery promises.
        let (_, l2, c2) =
            cache.get_or_sort_certified(&rel, &[0, 1], None, prov("Q2", "hA(v0)/4"), sorted);
        assert_eq!((l2, c2), (Lookup::Hit, true));
        // Same content but a different placement function: refused.
        let (_, l3, c3) =
            cache.get_or_sort_certified(&rel, &[0, 1], None, prov("Q3", "hB(v0)/4"), sorted);
        assert_eq!((l3, c3), (Lookup::Miss, false));
        let s = cache.stats();
        assert_eq!(s.certified_hits, 1);
        assert_eq!(s.route_rejects, 1);
        // The reject inserted the view under its own route key, so the
        // new route now hits…
        let (_, l4, c4) =
            cache.get_or_sort_certified(&rel, &[0, 1], None, prov("Q4", "hB(v0)/4"), sorted);
        assert_eq!((l4, c4), (Lookup::Hit, true));
        // …and the original route's entry survived alongside it: routes
        // never evict each other's stamps.
        let (_, l5, c5) =
            cache.get_or_sort_certified(&rel, &[0, 1], None, prov("Q5", "hA(v0)/4"), sorted);
        assert_eq!((l5, c5), (Lookup::Hit, true));
        assert_eq!(cache.stats().entries, 2);
        // The stamps record the runs that *inserted* each route's view.
        let stamps = cache.resident_provenance();
        assert_eq!(stamps, vec![prov("Q1", "hA(v0)/4"), prov("Q3", "hB(v0)/4")]);
    }

    #[test]
    fn certified_lookup_rejects_unstamped_entries() {
        let cache = SortCache::with_capacity(1 << 20);
        let rel = sample(8);
        // Inserted through the uncertified path: no provenance stamp.
        cache.get_or_sort(&rel, &[0, 1], None, sorted);
        let (_, l, c) = cache.get_or_sort_certified(&rel, &[0, 1], None, prov("Q1", "r"), sorted);
        assert_eq!((l, c), (Lookup::Miss, false), "unknown route must not hit");
        // Uncertified lookups still hit the (now stamped) entry.
        let (_, l2) = cache.get_or_sort(&rel, &[0, 1], None, sorted);
        assert_eq!(l2, Lookup::Hit);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SortCache::with_capacity(0);
        let rel = sample(6);
        let (_, l1) = cache.get_or_sort(&rel, &[0, 1], None, sorted);
        let (_, l2) = cache.get_or_sort(&rel, &[0, 1], None, sorted);
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Miss));
    }
}
