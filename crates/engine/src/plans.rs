//! Distributed query plans: the six shuffle×join configurations of §3.
//!
//! * **Regular shuffle (RS)** plans evaluate a left-deep tree of binary
//!   joins, re-shuffling the running intermediate result and the next
//!   base relation on their shared variables before every join — the
//!   "traditional" plan of Figure 1a, with per-step shuffle stats
//!   (Table 2's skew factors fall out of these).
//! * **Broadcast (BR)** plans keep the largest relation partitioned,
//!   broadcast every other relation, and run the whole multiway join
//!   locally on each worker.
//! * **HyperCube (HC)** plans shuffle every relation once through the
//!   hypercube chosen by Algorithm 1 and run the whole multiway join
//!   locally (Figure 1b).
//!
//! The local join is either a tree of binary hash joins (`JoinAlg::Hash`)
//! or the Tributary join (`JoinAlg::Tributary`); under RS the Tributary
//! join degenerates to binary sort-merge joins, as in the paper.
//!
//! Wall-clock is simulated as the sum over phases of the slowest worker's
//! compute time (see [`crate::exec`]); network transfer time is not
//! modeled, but shuffle volume and skew are reported exactly.

use crate::cluster::Cluster;
use crate::dist::DistRel;
use crate::error::EngineError;
use crate::exec::{parallelism_warning, run_phase_traced};
use crate::local::{hash_join, merge_join, SchemaRel};
use crate::prepare;
use crate::probe;
use crate::shuffle;
use crate::sortcache::{Lookup, Provenance, SortCache};
use crate::triecache::TrieCache;
use parjoin_analyze::{self as analyze, Diagnostic};
use parjoin_common::{Relation, ShuffleStats};
use parjoin_core::hypercube::{HcConfig, ShareProblem};
use parjoin_core::order::{best_order, OrderCostModel};
use parjoin_core::tributary::{ColumnarAtom, ColumnarTrie, SortedAtom, Tributary};
use parjoin_obs::{Registry, TraceSink, COORDINATOR_LANE};
use parjoin_query::{resolve_atoms, ConjunctiveQuery, Filter, VarId};
use parjoin_runtime::{Runtime, RuntimeConfig, RuntimeObs};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shuffle algorithm (§3's three contenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleAlg {
    /// Hash-partition on the join attributes, one join at a time.
    Regular,
    /// Keep the largest relation in place; broadcast the others.
    Broadcast,
    /// One-round HyperCube shuffle.
    HyperCube,
}

/// Local join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlg {
    /// Binary hash joins (left-deep tree).
    Hash,
    /// Tributary join (sort-merge under RS).
    Tributary,
}

impl ShuffleAlg {
    fn tag(self) -> &'static str {
        match self {
            ShuffleAlg::Regular => "RS",
            ShuffleAlg::Broadcast => "BR",
            ShuffleAlg::HyperCube => "HC",
        }
    }
}

impl JoinAlg {
    fn tag(self) -> &'static str {
        match self {
            JoinAlg::Hash => "HJ",
            JoinAlg::Tributary => "TJ",
        }
    }
}

impl From<ShuffleAlg> for analyze::ShuffleKind {
    fn from(s: ShuffleAlg) -> Self {
        match s {
            ShuffleAlg::Regular => analyze::ShuffleKind::Regular,
            ShuffleAlg::Broadcast => analyze::ShuffleKind::Broadcast,
            ShuffleAlg::HyperCube => analyze::ShuffleKind::HyperCube,
        }
    }
}

impl From<JoinAlg> for analyze::JoinKind {
    fn from(j: JoinAlg) -> Self {
        match j {
            JoinAlg::Hash => analyze::JoinKind::Hash,
            JoinAlg::Tributary => analyze::JoinKind::Tributary,
        }
    }
}

/// Which trie representation Tributary plans prepare and probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrieLayout {
    /// Row-major sorted arrays walked by `TrieIter` (the PR 1 layout) —
    /// kept as the A/B baseline and reachable via
    /// [`PlanOptions::trie_layout`].
    Row,
    /// Columnar level-segmented tries (`ColumnarTrie`): per-level
    /// contiguous key arrays + CSR child offsets, branch-free chunked
    /// galloping, and cross-query reuse through the process-wide
    /// [`TrieCache`](crate::TrieCache). Byte-identical output to `Row`.
    #[default]
    Columnar,
}

/// Plan-level knobs.
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// Left-deep join order (atom indices) for RS plans and local hash
    /// trees; `None` uses a greedy smallest-relation-first order.
    pub join_order: Option<Vec<usize>>,
    /// HyperCube configuration override; `None` runs Algorithm 1.
    pub hc_config: Option<HcConfig>,
    /// Tributary global variable order; `None` runs the §5 cost-model
    /// optimizer.
    pub tj_order: Option<Vec<VarId>>,
    /// Materialize the (projected) output at the coordinator.
    pub collect_output: bool,
    /// Deduplicate the collected output (set semantics for projected
    /// heads, e.g. Q3's `CastMember(cast)`).
    pub distinct_output: bool,
    /// Use the heavy-hitter-resilient shuffle for regular-shuffle steps
    /// (the paper's footnote 2): hot keys are spread on one side and
    /// replicated on the other, bounding per-worker load. Only affects
    /// `ShuffleAlg::Regular` plans.
    pub skew_resilient: bool,
    /// Aggregate the output into `(head…, count)` groups — the paper's §1
    /// motivation is exactly this shape ("the frequencies of graphlets in
    /// the network"). Groups are pre-aggregated per worker, combined with
    /// one extra hash shuffle on the head variables (counted in the
    /// metrics), and the result replaces the projected output. The count
    /// column is appended after the head columns.
    pub group_count: bool,
    /// Prepare Tributary atoms serially and without the sorted-view
    /// cache (plain [`SortedAtom::prepare`]). The default (`false`)
    /// prepare path serves sorted views from the process-wide
    /// [`SortCache`] and sorts misses with the intra-worker parallel
    /// sort; both are byte-identical to the sequential path — this knob
    /// exists so tests can assert exactly that, and as an escape hatch.
    pub sequential_prepare: bool,
    /// Probe sequentially: run the Tributary leapfrog, the hash-join
    /// probe, and the semijoin single-threaded per worker instead of
    /// morsel-parallel ([`crate::probe`]). The morsel path is
    /// byte-identical to this baseline — the A/B switch exists so tests
    /// can assert exactly that, and as an escape hatch.
    pub sequential_probe: bool,
    /// Override the per-worker probe thread count; `None` derives it
    /// from the host (`host_cores / workers`, at least 1). Ignored when
    /// [`PlanOptions::sequential_probe`] is set. Mainly for tests and
    /// benchmarks that must exercise a fixed thread count regardless of
    /// the machine they run on.
    pub probe_threads: Option<usize>,
    /// Certify the plan's distribution policy before running: the
    /// pre-flight analyzer models the shuffle strategy (regular steps,
    /// broadcast, or the actual HyperCube share assignment) as an
    /// explicit policy and statically *proves* it parallel-correct,
    /// attaching the R420 proof certificate (per-dimension hash-agreement
    /// obligations) to [`RunResult::diagnostics`] — or refuses to run
    /// with a concrete R421 counterexample valuation. This replaces the
    /// sampled co-location asserts of the `strict-invariants` feature
    /// (which are skipped when certifying: the proof covers *all*
    /// valuations, the samples only the shuffled ones) and additionally
    /// upgrades Tributary sort-cache lookups to *certified* hits keyed
    /// by the placement's route signature.
    pub certify: bool,
    /// Provenance stamp for SortCache entries this run creates; `None`
    /// stamps views with the query's own name. A serving catalog sets
    /// this to a catalog-aware tag (e.g. `catalog@v3/Q1`) so cached
    /// sorted views are traceable to the resident-relation epoch that
    /// produced them — a relation reloaded under the same name gets a
    /// new fingerprint *and* a new stamp, keeping cache forensics honest
    /// under sustained traffic. The stamp never affects hit/miss
    /// decisions (those key on content fingerprint + columns, plus the
    /// route signature for certified hits).
    pub provenance: Option<String>,
    /// Write a chrome://tracing / Perfetto-loadable JSON trace of the run
    /// to this path. Tracing is enabled **only** when this is set; with
    /// `None` the span machinery stays disabled and costs nothing on the
    /// hot path. Per-worker phase spans (`shuffle` on streaming
    /// transports, `prepare`, `probe`) appear one chrome "thread" per
    /// simulated worker, coordinator work on its own lane.
    pub trace_path: Option<PathBuf>,
    /// Trie representation for Tributary plans (default
    /// [`TrieLayout::Columnar`]). Output is byte-identical across
    /// layouts — the `layout_parity` suite asserts exactly that; `Row`
    /// remains as the A/B baseline and escape hatch.
    pub trie_layout: TrieLayout,
    /// Compress shuffled batches on the wire (column-major delta+varint;
    /// vectored format only, ignored by the legacy varint format and the
    /// Local transport). Off by default; flipping it changes
    /// `bytes_shuffled` but never the output —
    /// [`RunResult::bytes_shuffled_raw`] keeps the uncompressed
    /// equivalent so the A/B ratio is always visible.
    pub wire_compression: bool,
}

impl PlanOptions {
    /// The per-worker probe thread count this plan will use on `workers`
    /// simulated workers.
    pub fn effective_probe_threads(&self, workers: usize) -> usize {
        if self.sequential_probe {
            1
        } else {
            self.probe_threads
                .unwrap_or_else(|| probe::probe_threads_for_host(workers))
                .max(1)
        }
    }
}

/// Everything measured about one plan execution — the quantities behind
/// the paper's bar charts and tables.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Configuration name, e.g. `"HC_TJ"`.
    pub config: String,
    /// Simulated wall-clock: Σ over phases of the slowest worker.
    pub wall: Duration,
    /// Total CPU time across all workers and phases.
    pub total_cpu: Duration,
    /// Total tuples placed on the network.
    pub tuples_shuffled: u64,
    /// Total encoded bytes placed on the network. Zero under the Local
    /// transport (nothing is encoded); real payload bytes under the
    /// streaming transports, identical for InProcess and Tcp.
    pub bytes_shuffled: u64,
    /// Uncompressed-equivalent bytes of the shuffled batches — equals
    /// [`bytes_shuffled`](Self::bytes_shuffled) unless
    /// [`PlanOptions::wire_compression`] shrank the frames; under a
    /// streaming transport it reconciles exactly with
    /// `runtime.tx.bytes_raw`.
    pub bytes_shuffled_raw: u64,
    /// Per-shuffle metrics (Tables 2–4).
    pub shuffles: Vec<ShuffleStats>,
    /// Number of result tuples (bag semantics over the head projection).
    pub output_tuples: u64,
    /// The collected output, when requested.
    pub output: Option<Relation>,
    /// Per-worker total busy time (Figure 8's utilization profile).
    pub per_worker_busy: Vec<Duration>,
    /// Per-worker time spent sorting (TJ preparation; Figure 10c).
    pub per_worker_sort: Vec<Duration>,
    /// Per-worker time spent joining (Figure 10c).
    pub per_worker_join: Vec<Duration>,
    /// The hypercube configuration used, for HC plans.
    pub hc_config: Option<HcConfig>,
    /// Largest number of live tuples observed on one worker.
    pub peak_worker_tuples: u64,
    /// Communication rounds executed (shuffle barriers).
    pub rounds: u32,
    /// Per-worker time charged for shuffle send/receive (part of
    /// `per_worker_busy`).
    pub per_worker_net: Vec<Duration>,
    /// Warnings the pre-flight analyzer attached to this plan (plans
    /// with analyzer *errors* never run; see
    /// [`EngineError::InvalidPlan`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Tributary prepare lookups served from the sorted-view cache
    /// during this run.
    pub sort_cache_hits: u64,
    /// Tributary prepare lookups that sorted fresh during this run.
    pub sort_cache_misses: u64,
    /// Subset of [`RunResult::sort_cache_hits`](Self::sort_cache_hits)
    /// served under a *certified* route-signature match (only possible
    /// with [`PlanOptions::certify`]): the cached view's placement
    /// function was proved identical to this plan's, so the hit is sound
    /// on every worker, not assumed from one fragment's content match.
    pub sort_cache_certified_hits: u64,
    /// Process-wide [`SortCache`] evictions that happened *during this
    /// run* (the cumulative counter's delta between run start and
    /// finish). Non-zero values under sustained traffic mean the
    /// working set of sorted views exceeds the cache budget — the
    /// signal to watch when tuning the cache for a served workload.
    pub sort_cache_evictions: u64,
    /// Bytes resident in the process-wide [`SortCache`] when the run
    /// finished (a gauge, not a per-run delta: concurrent runs share
    /// the cache, so the absolute level is the meaningful number).
    pub sort_cache_resident_bytes: u64,
    /// Per-worker probe threads the plan ran with (1 = sequential probe;
    /// see [`crate::probe`]).
    pub probe_threads: u64,
    /// Total probe morsels executed across workers and join steps. Every
    /// probe operation counts at least 1 (its sequential pass); values
    /// above the number of probe operations mean morsel parallelism
    /// actually split work.
    pub probe_morsels: u64,
    /// Probe morsels a thread claimed from another thread's deque under
    /// the work-stealing scheduler (see
    /// [`MorselSched`](crate::probe::MorselSched)). Zero when the
    /// sequential path ran or no imbalance arose; a high
    /// steals-to-morsels ratio means the initial contiguous deal was
    /// skewed and the stealer rebalanced it.
    pub probe_steals: u64,
    /// Columnar trie prepare lookups served from the process-wide
    /// [`TrieCache`](crate::TrieCache) during this run (always 0 on the
    /// [`TrieLayout::Row`] path, which has no trie to cache).
    pub trie_cache_hits: u64,
    /// Columnar trie prepare lookups that built the trie fresh.
    pub trie_cache_misses: u64,
    /// Subset of [`RunResult::trie_cache_hits`](Self::trie_cache_hits)
    /// served under a *certified* route-signature match — same contract
    /// as [`RunResult::sort_cache_certified_hits`](Self::sort_cache_certified_hits),
    /// applied to whole prepared tries.
    pub trie_cache_certified_hits: u64,
    /// Process-wide [`TrieCache`](crate::TrieCache) evictions during
    /// this run (cumulative counter delta, like
    /// [`RunResult::sort_cache_evictions`](Self::sort_cache_evictions)).
    pub trie_cache_evictions: u64,
    /// Bytes resident in the process-wide
    /// [`TrieCache`](crate::TrieCache) when the run finished (a gauge).
    pub trie_cache_resident_bytes: u64,
    /// Name-sorted snapshot of the run's metrics registry: the
    /// `runtime.*` transport counters plus `engine.*` mirrors of the
    /// legacy fields above (see [`metric_names`]). The mirrors reconcile
    /// exactly — e.g. `engine.bytes.shuffled` equals [`bytes_shuffled`]
    /// (self.bytes_shuffled), and under a streaming transport both equal
    /// `runtime.tx.bytes`.
    pub metrics: Vec<(String, u64)>,
}

/// Canonical names of the `engine.*` registry metrics every run snapshots
/// into [`RunResult::metrics`] (alongside the runtime's
/// [`parjoin_runtime::metrics::names`]).
pub mod metric_names {
    /// Mirror of [`RunResult::tuples_shuffled`](super::RunResult).
    pub const TUPLES_SHUFFLED: &str = "engine.tuples.shuffled";
    /// Mirror of [`RunResult::bytes_shuffled`](super::RunResult).
    pub const BYTES_SHUFFLED: &str = "engine.bytes.shuffled";
    /// Mirror of [`RunResult::bytes_shuffled_raw`](super::RunResult).
    pub const BYTES_SHUFFLED_RAW: &str = "engine.bytes.shuffled_raw";
    /// Mirror of [`RunResult::output_tuples`](super::RunResult).
    pub const OUTPUT_TUPLES: &str = "engine.output.tuples";
    /// Mirror of [`RunResult::rounds`](super::RunResult).
    pub const ROUNDS: &str = "engine.rounds";
    /// Number of shuffles executed (`RunResult::shuffles.len()`).
    pub const SHUFFLES: &str = "engine.shuffles";
    /// Mirror of [`RunResult::sort_cache_hits`](super::RunResult).
    pub const SORT_CACHE_HITS: &str = "engine.sortcache.hits";
    /// Mirror of [`RunResult::sort_cache_misses`](super::RunResult).
    pub const SORT_CACHE_MISSES: &str = "engine.sortcache.misses";
    /// Mirror of [`RunResult::sort_cache_certified_hits`](super::RunResult).
    pub const SORT_CACHE_CERTIFIED: &str = "engine.sortcache.certified_hits";
    /// Mirror of [`RunResult::sort_cache_evictions`](super::RunResult):
    /// process-wide cache evictions during this run.
    pub const SORT_CACHE_EVICTIONS: &str = "engine.sortcache.evictions";
    /// Mirror of [`RunResult::sort_cache_resident_bytes`](super::RunResult):
    /// bytes resident in the process-wide cache at run end (a gauge).
    pub const SORT_CACHE_RESIDENT_BYTES: &str = "engine.sortcache.resident_bytes";
    /// Mirror of [`RunResult::probe_morsels`](super::RunResult).
    pub const PROBE_MORSELS: &str = "engine.probe.morsels";
    /// Mirror of [`RunResult::probe_steals`](super::RunResult).
    pub const PROBE_STEALS: &str = "engine.probe.steals";
    /// Mirror of [`RunResult::probe_threads`](super::RunResult).
    pub const PROBE_THREADS: &str = "engine.probe.threads";
    /// Mirror of [`RunResult::trie_cache_hits`](super::RunResult).
    pub const TRIE_CACHE_HITS: &str = "engine.triecache.hits";
    /// Mirror of [`RunResult::trie_cache_misses`](super::RunResult).
    pub const TRIE_CACHE_MISSES: &str = "engine.triecache.misses";
    /// Mirror of [`RunResult::trie_cache_certified_hits`](super::RunResult).
    pub const TRIE_CACHE_CERTIFIED: &str = "engine.triecache.certified_hits";
    /// Mirror of [`RunResult::trie_cache_evictions`](super::RunResult):
    /// process-wide trie-cache evictions during this run.
    pub const TRIE_CACHE_EVICTIONS: &str = "engine.triecache.evictions";
    /// Mirror of [`RunResult::trie_cache_resident_bytes`](super::RunResult):
    /// bytes resident in the process-wide trie cache at run end (a gauge).
    pub const TRIE_CACHE_RESIDENT_BYTES: &str = "engine.triecache.resident_bytes";
    /// Mirror of [`RunResult::peak_worker_tuples`](super::RunResult).
    pub const PEAK_WORKER_TUPLES: &str = "engine.peak_worker_tuples";
}

/// Per-run observability state: one [`Registry`] and one [`TraceSink`],
/// created by [`run_config`] and threaded through the plan. Deliberately
/// per-run rather than process-global — parallel tests (and parallel
/// plans) would otherwise race their tallies, breaking the exact
/// reconciliation `RunResult::metrics` promises.
pub(crate) struct RunObs {
    pub(crate) registry: Registry,
    pub(crate) trace: Arc<TraceSink>,
    /// Process-wide [`SortCache`] eviction count when the run started;
    /// [`RunObs::finalize`] reports the delta as this run's eviction
    /// pressure.
    evictions_at_start: u64,
    /// Same snapshot for the process-wide [`TrieCache`].
    trie_evictions_at_start: u64,
}

impl RunObs {
    pub(crate) fn new(trace_enabled: bool) -> RunObs {
        RunObs {
            registry: Registry::new(),
            trace: if trace_enabled {
                TraceSink::enabled()
            } else {
                TraceSink::disabled()
            },
            evictions_at_start: SortCache::global().stats().evictions,
            trie_evictions_at_start: TrieCache::global().stats().evictions,
        }
    }

    /// The bundle the worker runtime reports into.
    pub(crate) fn runtime_obs(&self) -> RuntimeObs {
        RuntimeObs::on_registry(&self.registry, Arc::clone(&self.trace))
    }

    /// Mirrors the legacy `RunResult` tallies onto the registry (under
    /// [`metric_names`]) and snapshots everything into
    /// `result.metrics`. Called exactly once per registry, after all
    /// phases (including any semijoin pre-passes) have been absorbed.
    pub(crate) fn finalize(&self, result: &mut RunResult) {
        let reg = &self.registry;
        reg.add(metric_names::TUPLES_SHUFFLED, result.tuples_shuffled);
        reg.add(metric_names::BYTES_SHUFFLED, result.bytes_shuffled);
        reg.add(metric_names::BYTES_SHUFFLED_RAW, result.bytes_shuffled_raw);
        reg.add(metric_names::OUTPUT_TUPLES, result.output_tuples);
        reg.add(metric_names::ROUNDS, u64::from(result.rounds));
        reg.add(metric_names::SHUFFLES, result.shuffles.len() as u64);
        reg.add(metric_names::SORT_CACHE_HITS, result.sort_cache_hits);
        reg.add(metric_names::SORT_CACHE_MISSES, result.sort_cache_misses);
        reg.add(
            metric_names::SORT_CACHE_CERTIFIED,
            result.sort_cache_certified_hits,
        );
        let cache = SortCache::global().stats();
        result.sort_cache_evictions = cache.evictions.saturating_sub(self.evictions_at_start);
        result.sort_cache_resident_bytes = cache.resident_bytes;
        reg.add(
            metric_names::SORT_CACHE_EVICTIONS,
            result.sort_cache_evictions,
        );
        reg.add(
            metric_names::SORT_CACHE_RESIDENT_BYTES,
            result.sort_cache_resident_bytes,
        );
        reg.add(metric_names::TRIE_CACHE_HITS, result.trie_cache_hits);
        reg.add(metric_names::TRIE_CACHE_MISSES, result.trie_cache_misses);
        reg.add(
            metric_names::TRIE_CACHE_CERTIFIED,
            result.trie_cache_certified_hits,
        );
        let trie = TrieCache::global().stats();
        result.trie_cache_evictions = trie.evictions.saturating_sub(self.trie_evictions_at_start);
        result.trie_cache_resident_bytes = trie.resident_bytes;
        reg.add(
            metric_names::TRIE_CACHE_EVICTIONS,
            result.trie_cache_evictions,
        );
        reg.add(
            metric_names::TRIE_CACHE_RESIDENT_BYTES,
            result.trie_cache_resident_bytes,
        );
        reg.add(metric_names::PROBE_MORSELS, result.probe_morsels);
        reg.add(metric_names::PROBE_STEALS, result.probe_steals);
        reg.add(metric_names::PROBE_THREADS, result.probe_threads);
        reg.add(metric_names::PEAK_WORKER_TUPLES, result.peak_worker_tuples);
        result.metrics = reg.snapshot();
    }

    /// Writes the chrome trace to `path` (no-op when `None`).
    pub(crate) fn write_trace(&self, path: Option<&Path>) -> Result<(), EngineError> {
        let Some(path) = path else { return Ok(()) };
        std::fs::write(path, self.trace.chrome_trace_json())
            .map_err(|e| EngineError::Trace(format!("writing {}: {e}", path.display())))
    }
}

/// Prep-vs-probe decomposition of a run's local-join CPU — the shape of
/// the paper's Table 5 ("BR_TJ: all sorts … 73%" of local-join time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepProbe {
    /// CPU spent preparing inputs (sorting; Table 5's "all sorts").
    pub prep: Duration,
    /// CPU spent in the join proper (probing/leapfrogging).
    pub probe: Duration,
}

impl PrepProbe {
    /// `prep / (prep + probe)`, or 0 when no local-join work ran.
    pub fn prep_fraction(&self) -> f64 {
        let total = (self.prep + self.probe).as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.prep.as_secs_f64() / total
        }
    }
}

impl RunResult {
    fn new(config: String, workers: usize) -> Self {
        RunResult {
            config,
            wall: Duration::ZERO,
            total_cpu: Duration::ZERO,
            tuples_shuffled: 0,
            bytes_shuffled: 0,
            bytes_shuffled_raw: 0,
            shuffles: Vec::new(),
            output_tuples: 0,
            output: None,
            per_worker_busy: vec![Duration::ZERO; workers],
            per_worker_sort: vec![Duration::ZERO; workers],
            per_worker_join: vec![Duration::ZERO; workers],
            hc_config: None,
            peak_worker_tuples: 0,
            rounds: 0,
            per_worker_net: vec![Duration::ZERO; workers],
            diagnostics: Vec::new(),
            sort_cache_hits: 0,
            sort_cache_misses: 0,
            sort_cache_certified_hits: 0,
            sort_cache_evictions: 0,
            sort_cache_resident_bytes: 0,
            probe_threads: 1,
            probe_morsels: 0,
            probe_steals: 0,
            trie_cache_hits: 0,
            trie_cache_misses: 0,
            trie_cache_certified_hits: 0,
            trie_cache_evictions: 0,
            trie_cache_resident_bytes: 0,
            metrics: Vec::new(),
        }
    }

    /// Looks up one metric from [`RunResult::metrics`] by canonical name
    /// (a [`metric_names`] constant or a `runtime.*` name from
    /// [`parjoin_runtime::metrics::names`]). `None` if the run never
    /// registered it (e.g. `runtime.*` counters under the Local
    /// transport, which constructs no runtime).
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A human-readable run report: totals, the per-phase CPU breakdown,
    /// the per-worker load table, the max-vs-mean load skew (the
    /// quantity Algorithm 1 minimizes), and every registry counter.
    pub fn report(&self) -> String {
        let mut s = String::new();
        // Writing into a String cannot fail; discard the fmt plumbing.
        let _ = writeln!(s, "== {} ==", self.config);
        let _ = writeln!(
            s,
            "wall {:?}   cpu {:?}   rounds {}   output {} tuples",
            self.wall, self.total_cpu, self.rounds, self.output_tuples
        );
        let compression = if self.bytes_shuffled_raw != self.bytes_shuffled {
            format!(", {} raw", self.bytes_shuffled_raw)
        } else {
            String::new()
        };
        let _ = writeln!(
            s,
            "shuffled {} tuples ({} bytes{compression}) over {} shuffle(s)",
            self.tuples_shuffled,
            self.bytes_shuffled,
            self.shuffles.len()
        );
        let _ = writeln!(
            s,
            "sort-cache {} hit(s) ({} certified) / {} miss(es)   probe {} thread(s), {} morsel(s), {} steal(s)",
            self.sort_cache_hits,
            self.sort_cache_certified_hits,
            self.sort_cache_misses,
            self.probe_threads,
            self.probe_morsels,
            self.probe_steals
        );
        let _ = writeln!(
            s,
            "trie-cache {} hit(s) ({} certified) / {} miss(es)",
            self.trie_cache_hits, self.trie_cache_certified_hits, self.trie_cache_misses
        );
        let _ = writeln!(
            s,
            "sort-cache pressure: {} eviction(s) during run, {} bytes resident at finish",
            self.sort_cache_evictions, self.sort_cache_resident_bytes
        );
        let _ = writeln!(
            s,
            "trie-cache pressure: {} eviction(s) during run, {} bytes resident at finish",
            self.trie_cache_evictions, self.trie_cache_resident_bytes
        );
        if !self.diagnostics.is_empty() {
            let _ = writeln!(s, "\ndiagnostics:");
            for d in &self.diagnostics {
                let _ = writeln!(s, "  {d}");
            }
        }

        let share = |d: Duration| -> f64 {
            let total = self.total_cpu.as_secs_f64();
            if total == 0.0 {
                0.0
            } else {
                100.0 * d.as_secs_f64() / total
            }
        };
        let _ = writeln!(s, "\n{:<12} {:>14} {:>7}", "phase", "cpu", "share");
        for (name, cpu) in [
            ("network", self.net_cpu()),
            ("sort(prep)", self.sort_cpu()),
            ("join(probe)", self.join_cpu()),
        ] {
            let _ = writeln!(
                s,
                "{name:<12} {:>14} {:>6.1}%",
                format!("{cpu:?}"),
                share(cpu)
            );
        }

        let _ = writeln!(
            s,
            "\n{:<7} {:>14} {:>14} {:>14} {:>14}",
            "worker", "busy", "net", "sort", "join"
        );
        for w in 0..self.per_worker_busy.len() {
            let _ = writeln!(
                s,
                "{w:<7} {:>14} {:>14} {:>14} {:>14}",
                format!("{:?}", self.per_worker_busy[w]),
                format!("{:?}", self.per_worker_net[w]),
                format!("{:?}", self.per_worker_sort[w]),
                format!("{:?}", self.per_worker_join[w]),
            );
        }
        let workers = self.per_worker_busy.len().max(1);
        let max = self
            .per_worker_busy
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
            .as_secs_f64();
        let mean = self.total_cpu.as_secs_f64() / workers as f64;
        if mean > 0.0 {
            // The load-balance quantity of the paper's Algorithm 1: how
            // much the straggler exceeds the average worker.
            let _ = writeln!(s, "load skew (max/mean busy): {:.2}", max / mean);
        }

        if !self.metrics.is_empty() {
            let width = self.metrics.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            let _ = writeln!(s, "\ncounters:");
            for (name, value) in &self.metrics {
                let _ = writeln!(s, "  {name:<width$}  {value}");
            }
        }
        s
    }

    /// Total network-handling CPU across workers.
    pub fn net_cpu(&self) -> Duration {
        self.per_worker_net.iter().sum()
    }

    /// Charges per-tuple send/receive costs for a group of shuffles that
    /// execute as one parallel phase; the slowest worker extends the
    /// simulated wall-clock.
    pub(crate) fn absorb_network(&mut self, stats: &[&ShuffleStats], tuple_cost: Duration) {
        if tuple_cost.is_zero() || stats.is_empty() {
            return;
        }
        let workers = self.per_worker_busy.len();
        let mut per_worker = vec![0u64; workers];
        for s in stats {
            for (w, &c) in s.per_producer.iter().enumerate() {
                per_worker[w] += c;
            }
            for (w, &c) in s.per_consumer.iter().enumerate() {
                per_worker[w] += c;
            }
        }
        let mut max = Duration::ZERO;
        for (w, &tuples) in per_worker.iter().enumerate() {
            let cost = scale_duration(tuple_cost, tuples);
            self.per_worker_busy[w] += cost;
            self.per_worker_net[w] += cost;
            self.total_cpu += cost;
            max = max.max(cost);
        }
        self.wall += max;
    }

    /// Total sorting CPU (Table 5's "all sorts" row).
    pub fn sort_cpu(&self) -> Duration {
        self.per_worker_sort.iter().sum()
    }

    /// Total joining CPU.
    pub fn join_cpu(&self) -> Duration {
        self.per_worker_join.iter().sum()
    }

    /// The prep-vs-probe breakdown of local-join CPU (Table 5's shape):
    /// prep is the sort CPU, probe the remaining join CPU. Network
    /// handling time is excluded from both.
    pub fn prep_probe(&self) -> PrepProbe {
        PrepProbe {
            prep: self.sort_cpu(),
            probe: self.join_cpu(),
        }
    }

    fn absorb_phase(&mut self, busy: &[Duration], sort: Option<&[Duration]>) {
        let wall = busy.iter().copied().max().unwrap_or_default();
        self.wall += wall;
        for (w, &d) in busy.iter().enumerate() {
            self.per_worker_busy[w] += d;
            self.total_cpu += d;
            match sort {
                Some(s) => {
                    self.per_worker_sort[w] += s[w];
                    self.per_worker_join[w] += d.saturating_sub(s[w]);
                }
                None => self.per_worker_join[w] += d,
            }
        }
    }

    fn absorb_shuffle(&mut self, s: ShuffleStats) {
        self.tuples_shuffled += s.tuples_sent;
        self.bytes_shuffled += s.bytes_sent;
        self.bytes_shuffled_raw += s.bytes_sent_raw;
        self.shuffles.push(s);
    }
}

/// `d * times` in u64-tuple-count precision. `Duration`'s `Mul<u32>`
/// would silently saturate the count at `u32::MAX` (≈4.3 billion tuples
/// — reachable for replicated shuffles of large inputs); this widens to
/// 128-bit nanosecond math and only clamps at `Duration::MAX`, which
/// represents over 10²² tuple-sends at any realistic per-tuple cost.
fn scale_duration(d: Duration, times: u64) -> Duration {
    let nanos = d.as_nanos().saturating_mul(u128::from(times));
    let secs = nanos / 1_000_000_000;
    let Ok(secs) = u64::try_from(secs) else {
        return Duration::MAX;
    };
    Duration::new(secs, (nanos % 1_000_000_000) as u32)
}

/// A greedy left-deep join order: smallest relation first, then repeatedly
/// the smallest relation sharing a variable with the running schema
/// (falling back to the smallest remaining one if the query disconnects).
pub fn default_join_order(atom_vars: &[Vec<VarId>], cards: &[u64]) -> Vec<usize> {
    let n = atom_vars.len();
    assert_eq!(cards.len(), n);
    let mut remaining: Vec<usize> = (0..n).collect();
    // Callers pass resolved queries, which have at least one atom.
    let first = *remaining
        .iter()
        .min_by_key(|&&i| cards[i])
        .expect("at least one atom"); // xtask: allow(expect)
    let mut order = vec![first];
    remaining.retain(|&i| i != first);
    let mut bound: Vec<VarId> = atom_vars[first].clone();
    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| atom_vars[i].iter().any(|v| bound.contains(v)))
            .collect();
        let pool = if connected.is_empty() {
            remaining.clone()
        } else {
            connected
        };
        let next = *pool
            .iter()
            .min_by_key(|&&i| cards[i])
            .expect("non-empty pool"); // xtask: allow(expect)
        order.push(next);
        remaining.retain(|&i| i != next);
        for &v in &atom_vars[next] {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    order
}

/// A fanout-aware greedy left-deep order: start from the smallest
/// relation, then repeatedly pick the connected atom with the smallest
/// *expected fanout* — its cardinality divided by the number of distinct
/// values of the shared join key. Pure cardinality ordering fails on
/// queries like Q3, where a selective `ObjectName` atom must be joined in
/// as soon as its variable binds; fanout ordering pulls low-multiplicity
/// extensions (and selections) forward, like the paper's Figure 5 plan.
pub fn greedy_join_order(atoms: &[(Vec<VarId>, &Relation)]) -> Vec<usize> {
    let n = atoms.len();
    // Distinct counts per (atom, column).
    let distinct: Vec<Vec<f64>> = atoms
        .iter()
        .map(|(vars, rel)| {
            (0..vars.len())
                .map(|c| rel.project(&[c]).distinct().len().max(1) as f64)
                .collect()
        })
        .collect();
    let card = |i: usize| atoms[i].1.len() as f64;

    let mut remaining: Vec<usize> = (0..n).collect();
    // total_cmp needs no finiteness assumption (scores can be +inf for
    // disconnected atoms), and resolved queries have at least one atom.
    let first = *remaining
        .iter()
        .min_by(|&&a, &&b| card(a).total_cmp(&card(b)))
        .expect("at least one atom"); // xtask: allow(expect)
    let mut order = vec![first];
    remaining.retain(|&i| i != first);
    let mut bound: Vec<VarId> = atoms[first].0.clone();
    while !remaining.is_empty() {
        let score = |i: usize| -> f64 {
            let (vars, _) = &atoms[i];
            let shared_distinct: f64 = vars
                .iter()
                .enumerate()
                .filter(|(_, v)| bound.contains(v))
                .map(|(c, _)| distinct[i][c])
                .product();
            if shared_distinct <= 1.0 && !vars.iter().any(|v| bound.contains(v)) {
                // Disconnected: cartesian product, worst possible.
                f64::INFINITY
            } else {
                card(i) / shared_distinct
            }
        };
        let connected_exists = remaining
            .iter()
            .any(|&i| atoms[i].0.iter().any(|v| bound.contains(v)));
        let next = *remaining
            .iter()
            .min_by(|&&a, &&b| {
                let (sa, sb) = (score(a), score(b));
                sa.total_cmp(&sb).then(card(a).total_cmp(&card(b)))
            })
            .expect("non-empty"); // xtask: allow(expect)
                                  // If everything is disconnected, fall back to the smallest atom.
        let next = if connected_exists {
            next
        } else {
            *remaining
                .iter()
                .min_by(|&&a, &&b| card(a).total_cmp(&card(b)))
                .expect("non-empty") // xtask: allow(expect)
        };
        order.push(next);
        remaining.retain(|&i| i != next);
        for &v in &atoms[next].0 {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    order
}

/// A left-deep order rooted at `root`, growing by connectivity (used by
/// broadcast plans to start from the partitioned fragment).
pub(crate) fn rooted_order(atom_vars: &[Vec<VarId>], root: usize) -> Vec<usize> {
    let n = atom_vars.len();
    let mut order = vec![root];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != root).collect();
    let mut bound: Vec<VarId> = atom_vars[root].clone();
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .copied()
            .find(|&i| atom_vars[i].iter().any(|v| bound.contains(v)))
            .unwrap_or(remaining[0]);
        order.push(next);
        remaining.retain(|&i| i != next);
        for &v in &atom_vars[next] {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    order
}

fn check_budget(cluster: &Cluster, worker: usize, needed: u64) -> Result<(), EngineError> {
    if let Some(budget) = cluster.memory_budget {
        if needed > budget {
            return Err(EngineError::MemoryBudget {
                worker,
                needed,
                budget,
            });
        }
    }
    Ok(())
}

/// Filters whose variables are fully bound by `schema`, removed from
/// `pending`.
pub(crate) fn take_ready_filters(pending: &mut Vec<Filter>, schema: &[VarId]) -> Vec<Filter> {
    let (ready, keep): (Vec<Filter>, Vec<Filter>) = pending
        .iter()
        .copied()
        .partition(|f| f.vars().iter().all(|v| schema.contains(v)));
    *pending = keep;
    ready
}

/// Runs `query` on `db` under the given shuffle×join configuration.
///
/// ```
/// use parjoin_common::{Database, Relation};
/// use parjoin_engine::{run_config, Cluster, JoinAlg, PlanOptions, ShuffleAlg};
/// use parjoin_query::parser;
///
/// let q = parser::parse("P(x, y, z) :- E(x, y), E(y, z)").unwrap();
/// let mut db = Database::new();
/// db.insert("E", Relation::from_rows(2, [[1u64, 2], [2, 3], [3, 4]].iter()));
/// let r = run_config(
///     &q, &db, &Cluster::new(4),
///     ShuffleAlg::HyperCube, JoinAlg::Tributary,
///     &PlanOptions::default(),
/// ).unwrap();
/// assert_eq!(r.output_tuples, 2); // 1→2→3 and 2→3→4
/// ```
///
/// # Errors
/// Returns [`EngineError::InvalidPlan`] when the pre-flight analyzer
/// rejects the plan (malformed join order, unexecutable HyperCube
/// configuration, filters that would be dropped, …),
/// [`EngineError::MemoryBudget`] when a worker exceeds the cluster's
/// budget, or [`EngineError::Resolve`] for catalog mismatches. Analyzer
/// *warnings* do not fail the run; they are carried on
/// [`RunResult::diagnostics`].
pub fn run_config(
    query: &ConjunctiveQuery,
    db: &parjoin_common::Database,
    cluster: &Cluster,
    shuffle_alg: ShuffleAlg,
    join_alg: JoinAlg,
    opts: &PlanOptions,
) -> Result<RunResult, EngineError> {
    let obs = RunObs::new(opts.trace_path.is_some());
    let mut result = run_config_with_obs(query, db, cluster, shuffle_alg, join_alg, opts, &obs)?;
    obs.finalize(&mut result);
    obs.write_trace(opts.trace_path.as_deref())?;
    Ok(result)
}

/// [`run_config`] against a caller-owned [`RunObs`]. The caller finalizes
/// (and exports) — this is how the semijoin plan shares one registry and
/// one trace between its reduction passes and the final join.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_config_with_obs(
    query: &ConjunctiveQuery,
    db: &parjoin_common::Database,
    cluster: &Cluster,
    shuffle_alg: ShuffleAlg,
    join_alg: JoinAlg,
    opts: &PlanOptions,
    obs: &RunObs,
) -> Result<RunResult, EngineError> {
    let (resolved, residual) = resolve_atoms(query, db)?;
    let atom_vars: Vec<Vec<VarId>> = resolved.iter().map(|a| a.vars.clone()).collect();
    let cards: Vec<u64> = resolved.iter().map(|a| a.len() as u64).collect();
    let join_order = opts.join_order.clone().unwrap_or_else(|| {
        let shapes: Vec<(Vec<VarId>, &Relation)> = resolved
            .iter()
            .map(|a| (a.vars.clone(), a.rel.as_ref()))
            .collect();
        greedy_join_order(&shapes)
    });
    let name = format!("{}_{}", shuffle_alg.tag(), join_alg.tag());
    let mut result = RunResult::new(name, cluster.workers);

    // Pre-flight static analysis: refuse to run plans the analyzer
    // proves broken (instead of panicking mid-flight); carry warnings
    // through on the result. The *effective* join order — explicit or
    // greedy — is what gets vetted.
    let spec = analyze::PlanSpec {
        query,
        cards: cards.clone(),
        workers: cluster.workers,
        memory_budget: cluster.memory_budget,
        shuffle: shuffle_alg.into(),
        join: join_alg.into(),
        join_order: Some(join_order.clone()),
        hc_config: opts.hc_config.clone(),
        tj_order: opts.tj_order.clone(),
        batch_tuples: cluster
            .transport
            .is_streaming()
            .then_some(cluster.batch_tuples as u64),
        wire_format: cluster.wire_format,
        max_frame_bytes: cluster
            .transport
            .is_streaming()
            .then_some(u64::from(parjoin_runtime::transport::MAX_FRAME_BYTES)),
        host_cores: parjoin_common::threads::host_parallelism(),
        seed: cluster.seed,
    };
    let diagnostics = analyze::analyze(&spec);
    if analyze::has_errors(&diagnostics) {
        return Err(EngineError::InvalidPlan(diagnostics));
    }
    result.diagnostics = diagnostics;
    result.diagnostics.extend(parallelism_warning());

    // Certify mode: statically prove the plan's distribution policy
    // parallel-correct (R420) or refuse to run with a concrete
    // counterexample valuation (R421). One-round plans additionally get
    // the per-atom route signatures of the certified placement, which
    // upgrade Tributary sort-cache lookups to certified hits.
    let route_sigs: Option<Vec<String>> = if opts.certify {
        let (planned, mut cert_diags) = analyze::certify_spec(&spec);
        if analyze::has_errors(&cert_diags) {
            return Err(EngineError::InvalidPlan(cert_diags));
        }
        if opts.skew_resilient && shuffle_alg == ShuffleAlg::Regular {
            // The certificate covers the plain hash route. The PRPD
            // fallback the skew_resilient knob adds for heavy keys
            // (spread one side, replicate the other) preserves
            // co-location by construction, so the verdict stands; the
            // note keeps the certificate honest about what it models.
            for d in &mut cert_diags {
                if d.code == analyze::DiagCode::PolicyCertified {
                    d.context.push((
                        "note".to_string(),
                        "skew_resilient: heavy keys take the PRPD spread/replicate \
                         route, which co-locates every joining pair by construction; \
                         the hash-route proof covers light keys"
                            .to_string(),
                    ));
                }
            }
        }
        let sigs = planned.as_ref().filter(|p| p.units.len() == 1).map(|p| {
            let unit = &p.units[0];
            (0..unit.atom_vars.len())
                .map(|i| unit.policy.route_signature(i))
                .collect()
        });
        result.diagnostics.extend(cert_diags);
        sigs
    } else {
        None
    };
    analyze::sort_diagnostics(&mut result.diagnostics);
    result.probe_threads = opts.effective_probe_threads(cluster.workers) as u64;

    // A streaming transport gets a live worker runtime for the plan's
    // duration; Local (the degenerate case) needs none.
    let rt: Option<Runtime> = if cluster.transport.is_streaming() {
        Some(Runtime::new(RuntimeConfig {
            workers: cluster.workers,
            transport: cluster.transport,
            batch_tuples: cluster.batch_tuples,
            wire_format: cluster.wire_format,
            wire_compression: opts.wire_compression,
            obs: obs.runtime_obs(),
            ..RuntimeConfig::default()
        })?)
    } else {
        None
    };

    // Seed each atom round-robin, as the initial data placement.
    let seeded: Vec<DistRel> = resolved
        .iter()
        .map(|a| DistRel::round_robin(&a.rel, a.vars.clone(), cluster.workers))
        .collect();

    match shuffle_alg {
        ShuffleAlg::Regular => run_regular(
            query,
            cluster,
            join_alg,
            opts,
            &join_order,
            seeded,
            residual,
            rt.as_ref(),
            obs,
            &mut result,
        )?,
        ShuffleAlg::Broadcast | ShuffleAlg::HyperCube => run_one_round(
            query,
            cluster,
            shuffle_alg,
            join_alg,
            opts,
            &atom_vars,
            &cards,
            &join_order,
            seeded,
            residual,
            rt.as_ref(),
            obs,
            route_sigs.as_deref(),
            &mut result,
        )?,
    }

    if let Some(rt) = rt {
        rt.shutdown()?;
    }

    result.wall += cluster.round_latency * result.rounds;

    if opts.collect_output {
        if let Some(out) = result.output.take() {
            result.output = Some(if opts.distinct_output {
                out.distinct()
            } else {
                out
            });
        }
    }
    Ok(result)
}

/// Left-deep tree of binary joins with a regular shuffle per step.
#[allow(clippy::too_many_arguments)]
fn run_regular(
    query: &ConjunctiveQuery,
    cluster: &Cluster,
    join_alg: JoinAlg,
    opts: &PlanOptions,
    order: &[usize],
    seeded: Vec<DistRel>,
    mut pending: Vec<Filter>,
    rt: Option<&Runtime>,
    obs: &RunObs,
    result: &mut RunResult,
) -> Result<(), EngineError> {
    assert_eq!(
        order.len(),
        seeded.len(),
        "join order must cover every atom"
    );

    let mut seeded: Vec<Option<DistRel>> = seeded.into_iter().map(Some).collect();
    // The analyzer vets the join order (a permutation of the atoms), so
    // these lookups cannot miss through `run_config`; a malformed order
    // reaching this internal function directly is still a typed error.
    let Some(mut cur) = seeded[order[0]].take() else {
        return Err(EngineError::Unsupported(format!(
            "join order reuses atom {}",
            order[0]
        )));
    };
    let mut cur_label = query.atoms[order[0]].relation.clone();

    // Filters already covered by the first atom alone (e.g. a var-var
    // comparison within one atom) apply before any join.
    let ready0 = take_ready_filters(&mut pending, &cur.vars);
    if !ready0.is_empty() {
        let vars = cur.vars.clone();
        cur.parts = cur
            .parts
            .iter()
            .map(|p| {
                SchemaRel {
                    vars: vars.clone(),
                    rel: p.clone(),
                }
                .filter(&ready0)
                .rel
            })
            .collect();
    }

    for &ai in &order[1..] {
        let Some(next) = seeded[ai].take() else {
            return Err(EngineError::Unsupported(format!(
                "join order reuses atom {ai}"
            )));
        };
        let next_label = &query.atoms[ai].relation;
        let shared: Vec<VarId> = cur
            .vars
            .iter()
            .copied()
            .filter(|v| next.vars.contains(v))
            .collect();

        // The paper's regular shuffle "hash partitions a relation on a
        // single attribute" (§3) — pick the most recently bound shared
        // variable (z, not x, for Q1's second join, matching Table 2).
        // Partitioning on one shared variable still co-locates every
        // joining pair; the local join checks the full shared key. This
        // single-attribute hashing is exactly what exposes the plan to
        // power-law skew.
        let shuffle_key: Vec<VarId> = shared.last().copied().into_iter().collect();
        let key_desc = shuffle_key
            .iter()
            .map(|v| query.var_name(*v))
            .collect::<Vec<_>>()
            .join(",");
        let (cur_s, next_s, s1, s2) = if opts.skew_resilient && !shuffle_key.is_empty() {
            let (ca, cb, sa, sb, _heavy) = shuffle::skew_resilient_pair(
                &cur,
                &next,
                &shuffle_key,
                (&cur_label, next_label),
                cluster.seed,
                // Keys above ~1x the average per-worker load are heavy;
                // PRPD-style engines use similar small multiples.
                1.0,
            );
            (ca, cb, sa, sb)
        } else {
            let (cur_s, s1) = shuffle::regular_via(
                &cur,
                &shuffle_key,
                format!("{cur_label} ->h({key_desc})"),
                cluster.seed,
                rt,
            )?;
            let (next_s, s2) = shuffle::regular_via(
                &next,
                &shuffle_key,
                format!("{next_label} ->h({key_desc})"),
                cluster.seed,
                rt,
            )?;
            (cur_s, next_s, s1, s2)
        };
        result.absorb_network(&[&s1, &s2], cluster.shuffle_tuple_cost);
        result.absorb_shuffle(s1);
        result.absorb_shuffle(s2);
        result.rounds += 1;

        // Certify mode replaces the sampled co-location assert: the
        // R420 certificate proves co-location for *all* valuations, so
        // re-checking a sample of shuffled tuples adds nothing.
        #[cfg(feature = "strict-invariants")]
        if !opts.certify {
            crate::strict::assert_colocated(&cur_s, &next_s, &shuffle_key, "regular shuffle");
        }

        // Per-worker binary join.
        let out_schema = {
            let a = SchemaRel {
                vars: cur_s.vars.clone(),
                rel: Relation::new(cur_s.vars.len()),
            };
            let b = SchemaRel {
                vars: next_s.vars.clone(),
                rel: Relation::new(next_s.vars.len()),
            };
            hash_join(&a, &b, 0).vars
        };
        let ready = take_ready_filters(&mut pending, &out_schema);
        let seed = cluster.seed;
        let probe_threads = opts.effective_probe_threads(cluster.workers);
        let phase = run_phase_traced(cluster.workers, &obs.trace, "local-join", |w, lane| {
            let a = SchemaRel {
                vars: cur_s.vars.clone(),
                rel: cur_s.parts[w].clone(),
            };
            let b = SchemaRel {
                vars: next_s.vars.clone(),
                rel: next_s.parts[w].clone(),
            };
            let (joined, sort_buf, sort_time, morsels, steals) = match join_alg {
                JoinAlg::Hash => {
                    let probe_span = lane.span("probe", "engine");
                    let (j, m, st) = probe::hash_join_parallel(&a, &b, seed, probe_threads);
                    drop(probe_span);
                    (j, 0, Duration::ZERO, m, st)
                }
                JoinAlg::Tributary => {
                    // merge_join times its own sorting internally, so the
                    // prepare/probe split is synthesized from its report
                    // rather than measured by RAII spans.
                    let t0 = Instant::now();
                    let (j, buf, t) = merge_join(&a, &b, seed);
                    let elapsed = t0.elapsed();
                    lane.record("prepare", "engine", t0, t);
                    lane.record("probe", "engine", t0 + t, elapsed.saturating_sub(t));
                    (j, buf, t, 1, 0)
                }
            };
            let filtered = if ready.is_empty() {
                joined
            } else {
                joined.filter(&ready)
            };
            // Memory model per the paper's Q4 discussion: the pipelined
            // hash join keeps only its build side (the smaller input)
            // resident plus the output in flight, while the blocking
            // sort-merge join must materialize *both* inputs and their
            // sorted copies — which is why RS_TJ runs out of memory
            // where RS_HJ survives (Figure 9).
            let live = match join_alg {
                JoinAlg::Hash => a.rel.len().min(b.rel.len()) as u64 + filtered.rel.len() as u64,
                JoinAlg::Tributary => {
                    a.rel.len() as u64 + b.rel.len() as u64 + sort_buf + filtered.rel.len() as u64
                }
            };
            (filtered.rel, live, sort_time, morsels, steals)
        });
        let mut parts = Vec::with_capacity(cluster.workers);
        let mut sort_times = Vec::with_capacity(cluster.workers);
        for (w, (rel, live, sort, morsels, steals)) in phase.results.iter().enumerate() {
            check_budget(cluster, w, *live)?;
            result.peak_worker_tuples = result.peak_worker_tuples.max(*live);
            result.probe_morsels += morsels;
            result.probe_steals += steals;
            parts.push(rel.clone());
            sort_times.push(*sort);
        }
        result.absorb_phase(&phase.busy, Some(&sort_times));

        cur = DistRel {
            vars: out_schema,
            parts,
        };
        cur_label = format!("{cur_label}{next_label}");
    }
    // The analyzer rejects plans whose filters never bind
    // (`FilterNeverApplied`), so this is unreachable through `run_config`;
    // it remains a hard error — not a debug assertion — so release builds
    // can never silently drop a filter.
    if !pending.is_empty() {
        return Err(EngineError::InvalidPlan(
            pending
                .iter()
                .map(|f| {
                    Diagnostic::error(
                        analyze::DiagCode::FilterNeverApplied,
                        format!("filter {f:?} was never applied by the join order"),
                    )
                })
                .collect(),
        ));
    }

    finish_output(query, cluster, opts, cur, obs, result);
    Ok(())
}

/// Per-worker tallies of one local multiway join, folded into the
/// [`RunResult`] after the phase joins.
#[derive(Debug, Clone, Copy, Default)]
struct JoinTally {
    live: u64,
    sort_time: Duration,
    sort_cache_hits: u64,
    sort_cache_misses: u64,
    sort_cache_certified: u64,
    trie_cache_hits: u64,
    trie_cache_misses: u64,
    trie_cache_certified: u64,
    morsels: u64,
    steals: u64,
}

/// Broadcast and HyperCube plans: one communication round, then a local
/// multiway join on every worker.
#[allow(clippy::too_many_arguments)]
fn run_one_round(
    query: &ConjunctiveQuery,
    cluster: &Cluster,
    shuffle_alg: ShuffleAlg,
    join_alg: JoinAlg,
    opts: &PlanOptions,
    atom_vars: &[Vec<VarId>],
    cards: &[u64],
    local_order: &[usize],
    seeded: Vec<DistRel>,
    pending: Vec<Filter>,
    rt: Option<&Runtime>,
    obs: &RunObs,
    route_sigs: Option<&[String]>,
    result: &mut RunResult,
) -> Result<(), EngineError> {
    // Tributary global variable order (cost-model optimized once on the
    // global resolved relations, as the paper's optimizer would; computed
    // before the shuffle so statistics see no replication).
    let tj_order: Option<Vec<VarId>> = if join_alg == JoinAlg::Tributary {
        Some(opts.tj_order.clone().unwrap_or_else(|| {
            let gathered: Vec<Relation> = seeded.iter().map(|d| d.gather()).collect();
            let model_atoms: Vec<(&Relation, Vec<VarId>)> = gathered
                .iter()
                .zip(atom_vars)
                .map(|(r, vs)| (r, vs.clone()))
                .collect();
            let model = OrderCostModel::from_atoms(&model_atoms);
            best_order(&model, &query.all_vars()).0
        }))
    } else {
        None
    };

    // --- The single communication round. --------------------------------
    let mut local_order: Vec<usize> = local_order.to_vec();
    let shuffled: Vec<DistRel> = match shuffle_alg {
        ShuffleAlg::Broadcast => {
            // Queries have at least one atom (the parser and analyzer
            // both enforce it), so the max exists.
            let largest = (0..cards.len())
                .max_by_key(|&i| cards[i])
                .expect("at least one atom"); // xtask: allow(expect)
                                              // Root the local hash tree at the partitioned fragment so
                                              // every worker's intermediates stay ~1/p-sized (the broadcast
                                              // plan's whole point); full-copy atoms only extend it. This
                                              // mirrors Myria's fact-table-first broadcast plans.
            local_order = rooted_order(atom_vars, largest);
            let mut out = Vec::with_capacity(seeded.len());
            for (i, d) in seeded.into_iter().enumerate() {
                if i == largest {
                    out.push(d); // stays partitioned, nothing sent
                } else {
                    let (bc, stats) = shuffle::broadcast_via(
                        &d,
                        format!("Broadcast {}", query.atoms[i].relation),
                        rt,
                    )?;
                    result.absorb_shuffle(stats);
                    out.push(bc);
                }
            }
            out
        }
        ShuffleAlg::HyperCube => {
            let problem = ShareProblem {
                vars: query.all_vars(),
                atoms: atom_vars
                    .iter()
                    .zip(cards)
                    .map(|(vs, &c)| parjoin_core::hypercube::AtomShape {
                        vars: vs.clone(),
                        cardinality: c,
                    })
                    .collect(),
            };
            let config = opts
                .hc_config
                .clone()
                .unwrap_or_else(|| problem.optimize(cluster.workers));
            result.hc_config = Some(config.clone());
            let mut out = Vec::with_capacity(seeded.len());
            for (i, d) in seeded.into_iter().enumerate() {
                let (hc, stats) = shuffle::hypercube_via(
                    &d,
                    &config,
                    format!("HCS {}", query.atoms[i].relation),
                    cluster.seed,
                    rt,
                )?;
                result.absorb_shuffle(stats);
                out.push(hc);
            }
            out
        }
        ShuffleAlg::Regular => unreachable!("handled by run_regular"),
    };

    // Certify mode replaces the sampled co-location assert with the
    // static R420 proof (see `PlanOptions::certify`).
    #[cfg(feature = "strict-invariants")]
    if route_sigs.is_none() {
        crate::strict::assert_all_colocated(
            &shuffled,
            match shuffle_alg {
                ShuffleAlg::Broadcast => "broadcast shuffle",
                _ => "hypercube shuffle",
            },
        );
    }

    result.rounds += 1;
    {
        let stats: Vec<&ShuffleStats> = result.shuffles.iter().collect();
        let mut net = RunResult::new(String::new(), cluster.workers);
        net.absorb_network(&stats, cluster.shuffle_tuple_cost);
        result.wall += net.wall;
        result.total_cpu += net.total_cpu;
        for w in 0..cluster.workers {
            result.per_worker_busy[w] += net.per_worker_busy[w];
            result.per_worker_net[w] += net.per_worker_net[w];
        }
    }

    // --- The local multiway join. ----------------------------------------
    let head = query.output_vars();
    let num_vars = query.num_vars();

    let seed = cluster.seed;
    // Each worker's prepare sorts can additionally use the host cores
    // left idle by the phase pool (workers < cores); see crate::prepare.
    let prep_threads = if opts.sequential_prepare {
        1
    } else {
        prepare::prepare_threads_for_host(cluster.workers)
    };
    // The probe phase claims those same leftover cores (crate::probe).
    let probe_threads = opts.effective_probe_threads(cluster.workers);
    let budget = cluster.memory_budget;
    let phase = run_phase_traced(cluster.workers, &obs.trace, "local-join", |w, lane| {
        let locals: Vec<SchemaRel> = shuffled
            .iter()
            .map(|d| SchemaRel {
                vars: d.vars.clone(),
                rel: d.parts[w].clone(),
            })
            .collect();
        match join_alg {
            JoinAlg::Hash => {
                let mut pending = pending.clone();
                let mut cur = locals[local_order[0]].clone();
                let ready0 = take_ready_filters(&mut pending, &cur.vars);
                if !ready0.is_empty() {
                    cur = cur.filter(&ready0);
                }
                let mut live: u64 = locals.iter().map(|l| l.rel.len() as u64).sum();
                let mut tally = JoinTally::default();
                let probe_span = lane.span("probe", "engine");
                for &ai in &local_order[1..] {
                    let (joined, m, st) =
                        probe::hash_join_parallel(&cur, &locals[ai], seed, probe_threads);
                    tally.morsels += m;
                    tally.steals += st;
                    let ready = take_ready_filters(&mut pending, &joined.vars);
                    cur = if ready.is_empty() {
                        joined
                    } else {
                        joined.filter(&ready)
                    };
                    live = live.max(
                        locals.iter().map(|l| l.rel.len() as u64).sum::<u64>()
                            + cur.rel.len() as u64,
                    );
                }
                drop(probe_span);
                let out = cur.project(&head);
                tally.live = live;
                (out.rel, tally)
            }
            JoinAlg::Tributary => {
                // Computed unconditionally above for Tributary plans.
                let order = tj_order.as_ref().expect("TJ order computed"); // xtask: allow(expect)
                let mut tally = JoinTally::default();
                // A view (or trie) too large for a worker's memory budget
                // is returned but never cached — the budget bounds what
                // either cache may pin (budget is in tuples; a sorted
                // view costs `arity` values per tuple, and the
                // deduplicated trie never exceeds the view).
                let entry_cap = |cols: &[usize]| {
                    budget.map(|t| {
                        (t as usize).saturating_mul(cols.len().max(1) * std::mem::size_of::<u64>())
                    })
                };
                // With a certified policy, hits require a route-signature
                // match — the cached view's placement is *proved*
                // identical to this plan's, not assumed from one
                // fragment's content (see
                // `SortCache::get_or_sort_certified`). The same stamp
                // certifies the TrieCache entry layered on top.
                let prov_for = |i: usize| {
                    route_sigs.and_then(|s| s.get(i)).map(|sig| Provenance {
                        query: opts
                            .provenance
                            .clone()
                            .unwrap_or_else(|| query.name.clone()),
                        route: sig.clone(),
                    })
                };
                // Both cache layers key by the *base* fragment's content
                // fingerprint — computed once here, reused by both.
                let cached_view = |tally: &mut JoinTally,
                                   fp: u128,
                                   r: &Relation,
                                   cols: &[usize],
                                   prov: Option<Provenance>| {
                    let sort = |r: &Relation, cols: &[usize]| {
                        prepare::sorted_by_columns_parallel(r, cols, prep_threads)
                    };
                    let (view, lookup, cert) = SortCache::global().get_or_sort_keyed(
                        fp,
                        r,
                        cols,
                        entry_cap(cols),
                        prov,
                        sort,
                    );
                    tally.sort_cache_certified += u64::from(cert);
                    match lookup {
                        Lookup::Hit => tally.sort_cache_hits += 1,
                        Lookup::Miss => tally.sort_cache_misses += 1,
                    }
                    view
                };
                let prep_span = lane.span("prepare", "engine");
                let t_sort = std::time::Instant::now();
                let probed = match opts.trie_layout {
                    TrieLayout::Row => {
                        let prepared: Vec<SortedAtom> = locals
                            .iter()
                            .enumerate()
                            .map(|(i, l)| {
                                if opts.sequential_prepare {
                                    SortedAtom::prepare(&l.rel, &l.vars, order)
                                } else {
                                    SortedAtom::prepare_with(&l.rel, &l.vars, order, |r, cols| {
                                        cached_view(
                                            &mut tally,
                                            r.fingerprint(),
                                            r,
                                            cols,
                                            prov_for(i),
                                        )
                                    })
                                }
                            })
                            .collect();
                        tally.sort_time = t_sort.elapsed();
                        drop(prep_span);
                        #[cfg(feature = "strict-invariants")]
                        for (i, sa) in prepared.iter().enumerate() {
                            assert!(
                                sa.relation().is_sorted_lex(),
                                "strict-invariants: Tributary input {i} is not sorted \
                                 lexicographically after prepare"
                            );
                        }
                        let probe_span = lane.span("probe", "engine");
                        let tj = Tributary::new(&prepared, order, &pending, num_vars);
                        let probed = probe::tributary_probe(&tj, &prepared, &head, probe_threads);
                        drop(probe_span);
                        probed
                    }
                    TrieLayout::Columnar => {
                        let prepared: Vec<ColumnarAtom> = locals
                            .iter()
                            .enumerate()
                            .map(|(i, l)| {
                                if opts.sequential_prepare {
                                    ColumnarAtom::prepare(&l.rel, &l.vars, order)
                                } else {
                                    ColumnarAtom::prepare_with(&l.rel, &l.vars, order, |r, cols| {
                                        let fp = r.fingerprint();
                                        let prov = prov_for(i);
                                        // SortCache first — the sorted
                                        // view stays shared with row-
                                        // layout and merge-join
                                        // consumers of the same
                                        // fragment…
                                        let view =
                                            cached_view(&mut tally, fp, r, cols, prov.clone());
                                        // …then the TrieCache layered
                                        // on top, reusing the whole
                                        // prepared trie across queries
                                        // under the same key
                                        // discipline.
                                        let cap = entry_cap(cols);
                                        let build = || ColumnarTrie::build(&view);
                                        let (trie, lookup, cert) = match prov {
                                            Some(p) => TrieCache::global()
                                                .get_or_build_certified(fp, cols, cap, p, build),
                                            None => {
                                                let (t, l) = TrieCache::global()
                                                    .get_or_build(fp, cols, cap, build);
                                                (t, l, false)
                                            }
                                        };
                                        tally.trie_cache_certified += u64::from(cert);
                                        match lookup {
                                            Lookup::Hit => tally.trie_cache_hits += 1,
                                            Lookup::Miss => tally.trie_cache_misses += 1,
                                        }
                                        trie
                                    })
                                }
                            })
                            .collect();
                        tally.sort_time = t_sort.elapsed();
                        drop(prep_span);
                        #[cfg(feature = "strict-invariants")]
                        for (i, ca) in prepared.iter().enumerate() {
                            if let Err(e) = ca.trie().validate() {
                                // xtask: allow(panic)
                                panic!(
                                    "strict-invariants: columnar trie {i} malformed after \
                                     prepare: {e}"
                                );
                            }
                        }
                        let probe_span = lane.span("probe", "engine");
                        let tj = Tributary::new(&prepared, order, &pending, num_vars);
                        let probed = probe::tributary_probe(&tj, &prepared, &head, probe_threads);
                        drop(probe_span);
                        probed
                    }
                };
                tally.morsels = probed.morsels;
                tally.steals = probed.steals;
                tally.live = locals.iter().map(|l| 2 * l.rel.len() as u64).sum::<u64>()
                    + probed.rel.len() as u64;
                (probed.rel, tally)
            }
        }
    });

    let mut outputs = Vec::with_capacity(cluster.workers);
    let mut sort_times = Vec::with_capacity(cluster.workers);
    for (w, (rel, t)) in phase.results.iter().enumerate() {
        check_budget(cluster, w, t.live)?;
        result.peak_worker_tuples = result.peak_worker_tuples.max(t.live);
        result.probe_morsels += t.morsels;
        result.probe_steals += t.steals;
        outputs.push(rel.clone());
        sort_times.push(t.sort_time);
        result.sort_cache_hits += t.sort_cache_hits;
        result.sort_cache_misses += t.sort_cache_misses;
        result.sort_cache_certified_hits += t.sort_cache_certified;
        result.trie_cache_hits += t.trie_cache_hits;
        result.trie_cache_misses += t.trie_cache_misses;
        result.trie_cache_certified_hits += t.trie_cache_certified;
    }
    result.absorb_phase(&phase.busy, Some(&sort_times));

    let out = DistRel {
        vars: head,
        parts: outputs,
    };
    finish_output(query, cluster, opts, out, obs, result);
    Ok(())
}

/// Projects to the head (RS path still carries the full schema), counts,
/// and optionally gathers the output.
fn finish_output(
    query: &ConjunctiveQuery,
    cluster: &Cluster,
    opts: &PlanOptions,
    cur: DistRel,
    obs: &RunObs,
    result: &mut RunResult,
) {
    // Output projection/aggregation/gathering is coordinator work: it
    // gets the coordinator lane, not a worker lane.
    let lane = obs.trace.lane(COORDINATOR_LANE);
    let _span = lane.span("output", "engine");
    let head = query.output_vars();
    let needs_project = cur.vars != head;
    let projected: DistRel = if needs_project {
        let cols: Vec<usize> = head.iter().map(|&v| cur.col_of(v)).collect();
        DistRel {
            vars: head,
            parts: cur.parts.iter().map(|p| p.project(&cols)).collect(),
        }
    } else {
        cur
    };
    if opts.group_count {
        let grouped = group_count_output(cluster, &projected, result);
        result.output_tuples = grouped.len() as u64;
        if opts.collect_output {
            result.output = Some(grouped);
        }
        return;
    }
    result.output_tuples = projected.total_len();
    if opts.collect_output {
        result.output = Some(projected.gather());
    }
}

/// Pre-aggregates `(head…, count)` per worker, combines partial groups
/// with one hash shuffle on the head values, and gathers the final
/// groups. The combine shuffle is recorded in the run's metrics like any
/// other.
fn group_count_output(cluster: &Cluster, projected: &DistRel, result: &mut RunResult) -> Relation {
    use std::collections::BTreeMap;
    let workers = cluster.workers;
    let arity = projected.vars.len();
    let seed = shuffle::join_key_seed(cluster.seed, &projected.vars);

    // Local pre-aggregation (the classic combiner step: at most one row
    // per distinct group leaves each worker).
    let local: Vec<BTreeMap<Vec<parjoin_common::Value>, u64>> = projected
        .parts
        .iter()
        .map(|p| {
            let mut m = BTreeMap::new();
            for row in p.rows() {
                *m.entry(row.to_vec()).or_insert(0u64) += 1;
            }
            m
        })
        .collect();

    // Route partial groups by hash of the group key.
    let mut dest: Vec<BTreeMap<Vec<parjoin_common::Value>, u64>> = vec![BTreeMap::new(); workers];
    let mut per_producer = vec![0u64; workers];
    let mut per_consumer = vec![0u64; workers];
    for (w, groups) in local.into_iter().enumerate() {
        for (key, count) in groups {
            let d = parjoin_common::hash::bucket_row(&key, seed, workers);
            per_producer[w] += 1;
            per_consumer[d] += 1;
            *dest[d].entry(key).or_insert(0) += count;
        }
    }
    let stats =
        parjoin_common::ShuffleStats::new("group-count combine", per_producer, per_consumer);
    result.rounds += 1;
    result.wall += cluster.round_latency;
    result.absorb_network(&[&stats], cluster.shuffle_tuple_cost);
    result.absorb_shuffle(stats);

    // Gather the final groups (deterministic order: by worker, by key).
    let mut out = Relation::new(arity + 1);
    let mut row = Vec::with_capacity(arity + 1);
    for groups in dest {
        for (key, count) in groups {
            row.clear();
            row.extend_from_slice(&key);
            row.push(count);
            out.push_row(&row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_common::Database;
    use parjoin_query::QueryBuilder;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn triangle_query() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("Tri");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("E1", [x, y]).atom("E2", [y, z]).atom("E3", [z, x]);
        b.build()
    }

    fn ring_db(n: u64) -> Database {
        // A directed ring 0→1→…→n-1→0 plus closing chords (i+2)→i, so
        // every i→(i+1)→(i+2)→i is a directed triangle.
        let mut rel = Relation::new(2);
        for i in 0..n {
            rel.push_row(&[i, (i + 1) % n]);
            rel.push_row(&[(i + 2) % n, i]);
        }
        let rel = rel.distinct();
        let mut db = Database::new();
        db.insert("E1", rel.clone());
        db.insert("E2", rel.clone());
        db.insert("E3", rel);
        db
    }

    fn all_configs() -> Vec<(ShuffleAlg, JoinAlg)> {
        vec![
            (ShuffleAlg::Regular, JoinAlg::Hash),
            (ShuffleAlg::Regular, JoinAlg::Tributary),
            (ShuffleAlg::Broadcast, JoinAlg::Hash),
            (ShuffleAlg::Broadcast, JoinAlg::Tributary),
            (ShuffleAlg::HyperCube, JoinAlg::Hash),
            (ShuffleAlg::HyperCube, JoinAlg::Tributary),
        ]
    }

    fn run_collect(
        q: &ConjunctiveQuery,
        db: &Database,
        workers: usize,
        s: ShuffleAlg,
        j: JoinAlg,
    ) -> Vec<Vec<u64>> {
        let cluster = Cluster::new(workers).with_seed(17);
        let opts = PlanOptions {
            collect_output: true,
            ..Default::default()
        };
        let r = run_config(q, db, &cluster, s, j, &opts).expect("plan runs");
        let mut rows: Vec<Vec<u64>> = r
            .output
            .expect("collected")
            .rows()
            .map(|x| x.to_vec())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn scale_duration_survives_u32_overflowing_tuple_counts() {
        // 5 billion tuples at 1ns each: `Duration * u32` would have
        // saturated the count at ~4.29 billion and charged ~4.29s.
        let tuples = 5_000_000_000u64;
        let cost = scale_duration(Duration::from_nanos(1), tuples);
        assert_eq!(cost, Duration::from_secs(5));
        // And the extreme case clamps instead of wrapping.
        assert_eq!(
            scale_duration(Duration::from_secs(u64::MAX), u64::MAX),
            Duration::MAX
        );
    }

    #[test]
    fn absorb_network_charges_full_tuple_counts() {
        let mut r = RunResult::new("t".into(), 1);
        let stats = ShuffleStats::new("s", vec![5_000_000_000], vec![0]);
        r.absorb_network(&[&stats], Duration::from_nanos(1));
        assert_eq!(r.per_worker_net[0], Duration::from_secs(5));
        assert_eq!(r.wall, Duration::from_secs(5));
    }

    #[test]
    fn all_six_configs_agree_on_triangles() {
        let q = triangle_query();
        let db = ring_db(30);
        let reference = run_collect(&q, &db, 4, ShuffleAlg::Regular, JoinAlg::Hash);
        assert!(!reference.is_empty(), "ring with shortcuts has triangles");
        for (s, j) in all_configs() {
            let got = run_collect(&q, &db, 4, s, j);
            assert_eq!(got, reference, "{s:?}/{j:?} disagrees");
        }
    }

    #[test]
    fn results_invariant_across_worker_counts() {
        let q = triangle_query();
        let db = ring_db(24);
        let reference = run_collect(&q, &db, 1, ShuffleAlg::HyperCube, JoinAlg::Tributary);
        for workers in [2, 3, 8, 16] {
            let got = run_collect(&q, &db, workers, ShuffleAlg::HyperCube, JoinAlg::Tributary);
            assert_eq!(got, reference, "{workers} workers");
        }
    }

    #[test]
    fn hypercube_shuffles_less_than_broadcast_on_triangle() {
        let q = triangle_query();
        let db = ring_db(60);
        let cluster = Cluster::new(8);
        let opts = PlanOptions::default();
        let hc = run_config(
            &q,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &opts,
        )
        .unwrap();
        let br = run_config(
            &q,
            &db,
            &cluster,
            ShuffleAlg::Broadcast,
            JoinAlg::Tributary,
            &opts,
        )
        .unwrap();
        assert!(hc.tuples_shuffled < br.tuples_shuffled);
    }

    #[test]
    fn broadcast_keeps_largest_in_place() {
        let mut b = QueryBuilder::new("Q");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("Big", [x, y]).atom("Small", [y, z]);
        let q = b.build();
        let mut db = Database::new();
        let big = Relation::from_rows(
            2,
            (0..100u64).map(|i| [i, i % 10]).collect::<Vec<_>>().iter(),
        );
        let small = Relation::from_rows(2, (0..10u64).map(|i| [i, i]).collect::<Vec<_>>().iter());
        db.insert("Big", big);
        db.insert("Small", small);
        let r = run_config(
            &q,
            &db,
            &Cluster::new(4),
            ShuffleAlg::Broadcast,
            JoinAlg::Hash,
            &PlanOptions::default(),
        )
        .unwrap();
        // Only Small is broadcast: 10 × 4 workers.
        assert_eq!(r.tuples_shuffled, 40);
        assert_eq!(r.shuffles.len(), 1);
        assert!(r.shuffles[0].label.contains("Small"));
    }

    #[test]
    fn memory_budget_fails_plan() {
        let q = triangle_query();
        let db = ring_db(40);
        let cluster = Cluster::new(2).with_memory_budget(10);
        let err = run_config(
            &q,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Tributary,
            &PlanOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MemoryBudget { .. }));
    }

    #[test]
    fn filters_applied_in_all_configs() {
        let mut b = QueryBuilder::new("Q");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("E1", [x, y]).atom("E2", [y, z]);
        b.filter_vv(x, parjoin_query::CmpOp::Lt, z);
        let q = b.build();
        let db = ring_db(20);
        let reference = run_collect(&q, &db, 3, ShuffleAlg::Regular, JoinAlg::Hash);
        for (s, j) in all_configs() {
            assert_eq!(run_collect(&q, &db, 3, s, j), reference, "{s:?}/{j:?}");
        }
        // And the filter actually prunes: recompute without it.
        let mut b2 = QueryBuilder::new("Q");
        let (x, y, z) = (b2.var("x"), b2.var("y"), b2.var("z"));
        b2.atom("E1", [x, y]).atom("E2", [y, z]);
        let q2 = b2.build();
        let unfiltered = run_collect(&q2, &db, 3, ShuffleAlg::Regular, JoinAlg::Hash);
        assert!(reference.len() < unfiltered.len());
    }

    #[test]
    fn projection_head_respected() {
        let mut b = QueryBuilder::new("Q");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("E1", [x, y]).atom("E2", [y, z]);
        b.head([z]);
        let q = b.build();
        let db = ring_db(10);
        let cluster = Cluster::new(2);
        let opts = PlanOptions {
            collect_output: true,
            ..Default::default()
        };
        let r = run_config(
            &q,
            &db,
            &cluster,
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &opts,
        )
        .unwrap();
        assert_eq!(r.output.unwrap().arity(), 1);
    }

    #[test]
    fn default_join_order_prefers_small_connected() {
        let vars = vec![
            vec![v(0), v(1)], // 0: big
            vec![v(1), v(2)], // 1: small
            vec![v(2), v(3)], // 2: medium
        ];
        let order = default_join_order(&vars, &[100, 5, 50]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn default_join_order_handles_disconnection() {
        let vars = vec![vec![v(0)], vec![v(1)]];
        let order = default_join_order(&vars, &[10, 5]);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn hc_config_recorded() {
        let q = triangle_query();
        let db = ring_db(20);
        let r = run_config(
            &q,
            &db,
            &Cluster::new(8),
            ShuffleAlg::HyperCube,
            JoinAlg::Tributary,
            &PlanOptions::default(),
        )
        .unwrap();
        assert!(r.hc_config.is_some());
        assert!(r.hc_config.unwrap().num_cells() <= 8);
    }

    #[test]
    fn distinct_output_dedups() {
        // Project onto y: many (x,y) pairs share y.
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("E1", [x, y]);
        b.head([y]);
        let q = b.build();
        let db = ring_db(12);
        let cluster = Cluster::new(3);
        let bag = run_config(
            &q,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &PlanOptions {
                collect_output: true,
                ..Default::default()
            },
        )
        .unwrap();
        let set = run_config(
            &q,
            &db,
            &cluster,
            ShuffleAlg::Regular,
            JoinAlg::Hash,
            &PlanOptions {
                collect_output: true,
                distinct_output: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(set.output.unwrap().len() < bag.output.unwrap().len());
    }

    #[test]
    fn streaming_transport_matches_local_and_reports_bytes() {
        let q = triangle_query();
        let db = ring_db(24);
        let opts = PlanOptions {
            collect_output: true,
            ..Default::default()
        };
        for (s, j) in all_configs() {
            let local = run_config(&q, &db, &Cluster::new(4).with_seed(17), s, j, &opts)
                .expect("local plan runs");
            let streamed = run_config(
                &q,
                &db,
                &Cluster::new(4)
                    .with_seed(17)
                    .with_transport(parjoin_runtime::TransportKind::InProcess)
                    .with_batch_tuples(8),
                s,
                j,
                &opts,
            )
            .expect("streaming plan runs");
            assert_eq!(
                local.output.as_ref().expect("collected").raw(),
                streamed.output.as_ref().expect("collected").raw(),
                "{s:?}/{j:?}: streaming output must be byte-identical"
            );
            assert_eq!(local.tuples_shuffled, streamed.tuples_shuffled);
            assert_eq!(local.bytes_shuffled, 0, "{s:?}/{j:?}");
            assert!(streamed.bytes_shuffled > 0, "{s:?}/{j:?}");
        }
    }

    #[test]
    fn single_atom_query_runs() {
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("E1", [x, y]);
        let q = b.build();
        let db = ring_db(10);
        for (s, j) in all_configs() {
            let r = run_config(&q, &db, &Cluster::new(4), s, j, &PlanOptions::default())
                .unwrap_or_else(|e| panic!("{s:?}/{j:?}: {e}"));
            assert_eq!(r.output_tuples, 20, "{s:?}/{j:?}");
        }
    }
}
