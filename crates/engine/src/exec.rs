//! Parallel per-worker execution with per-worker timing.
//!
//! Worker tasks run on a pool of at most `available_parallelism` OS
//! threads; each *task* (one simulated worker's local computation) is
//! timed individually. This keeps per-worker busy times accurate even
//! when the simulated cluster (e.g. 64 workers) exceeds the physical core
//! count: tasks never interleave on a pool thread, so a task's elapsed
//! time is its own compute time.
//!
//! The simulated wall-clock of a phase is the **maximum** per-worker busy
//! time — the straggler determines query latency in a one-round plan,
//! which is exactly the paper's argument for minimizing the max
//! per-worker load (§4: "the runtime of a query is determined by the
//! runtime of the slowest worker").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use parjoin_analyze::{DiagCode, Diagnostic};
use parjoin_obs::{Lane, TraceSink};

/// Pool width for a phase over `workers` simulated workers: the host's
/// available parallelism, clamped to `[1, workers]`. Falls back to a
/// single thread when the host refuses to report its core count.
/// (Shared with the analyzer through `parjoin_common::threads` so the
/// pre-flight checks predict exactly what the executor does.)
fn pool_threads(workers: usize, host: Option<usize>) -> usize {
    parjoin_common::threads::pool_threads(workers, host)
}

/// A [`Diagnostic`] describing the host-parallelism fallback, or `None`
/// when `available_parallelism()` works.
///
/// When the host cannot report its core count (sandboxed cgroups,
/// exotic platforms), every phase silently degrades to one pool thread;
/// per-worker busy times stay correct but real wall-clock balloons.
/// `run_config` surfaces this through the plan's diagnostics instead of
/// leaving users to wonder why the simulator is slow.
pub fn parallelism_warning() -> Option<Diagnostic> {
    parallelism_warning_for(parjoin_common::threads::host_parallelism())
}

fn parallelism_warning_for(host: Option<usize>) -> Option<Diagnostic> {
    match host {
        Some(_) => None,
        None => Some(
            Diagnostic::warning(
                DiagCode::HostParallelismUnknown,
                "available_parallelism() failed; executor falls back to a single pool thread",
            )
            .with("pool_threads", 1u64),
        ),
    }
}

/// Per-worker results and busy times of one parallel phase.
pub struct PhaseResult<T> {
    /// One result per worker.
    pub results: Vec<T>,
    /// Each worker's compute time.
    pub busy: Vec<Duration>,
}

impl<T> PhaseResult<T> {
    /// The phase's simulated wall-clock: the slowest worker.
    pub fn wall(&self) -> Duration {
        self.busy.iter().copied().max().unwrap_or_default()
    }

    /// Total CPU time across workers.
    pub fn total_cpu(&self) -> Duration {
        self.busy.iter().sum()
    }
}

/// Runs `f(worker_index)` for every worker on a bounded thread pool,
/// timing each invocation.
pub fn run_phase<T, F>(workers: usize, f: F) -> PhaseResult<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // One shared disabled sink keeps the untraced path allocation-free.
    static DISABLED: OnceLock<Arc<TraceSink>> = OnceLock::new();
    let sink = DISABLED.get_or_init(TraceSink::disabled);
    run_phase_traced(workers, sink, "phase", |w, _| f(w))
}

/// [`run_phase`] with tracing: each worker task gets a [`Lane`] keyed by
/// its worker id and runs inside a `name` span, so per-phase per-worker
/// slices land in the chrome trace. `f` may open nested spans (or
/// [`Lane::record`] synthesized ones) on the lane it receives. With a
/// disabled sink this is exactly `run_phase` — no clock reads, no
/// allocation beyond it.
pub fn run_phase_traced<T, F>(
    workers: usize,
    trace: &Arc<TraceSink>,
    name: &'static str,
    f: F,
) -> PhaseResult<T>
where
    T: Send,
    F: Fn(usize, &Lane) -> T + Sync,
{
    let threads = pool_threads(workers, parjoin_common::threads::host_parallelism());
    let slots: Mutex<Vec<Option<(T, Duration)>>> = Mutex::new((0..workers).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Worker claim ticket: the counter orders nothing but
                // itself (results go through the mutexed slots), so
                // relaxed ordering is safe. xtask: allow(ordering)
                let w = cursor.fetch_add(1, Ordering::Relaxed);
                if w >= workers {
                    break;
                }
                let lane = trace.lane(w as u32);
                let t0 = Instant::now();
                let span = lane.span(name, "engine");
                let r = f(w, &lane);
                drop(span);
                let dt = t0.elapsed();
                // A poisoned lock here means another worker task panicked,
                // which the scope will re-raise on join; the partial state
                // behind the lock is still internally consistent.
                slots.lock().unwrap_or_else(PoisonError::into_inner)[w] = Some((r, dt));
            });
        }
    });

    let mut results = Vec::with_capacity(workers);
    let mut busy = Vec::with_capacity(workers);
    for slot in slots.into_inner().unwrap_or_else(PoisonError::into_inner) {
        // The cursor hands every index in 0..workers to exactly one pool
        // thread and the scope joins them all, so each slot is filled.
        let (r, d) = slot.expect("every worker ran"); // xtask: allow(expect)
        results.push(r);
        busy.push(d);
    }
    PhaseResult { results, busy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_worker_order() {
        let p = run_phase(16, |w| w * 2);
        assert_eq!(p.results, (0..16).map(|w| w * 2).collect::<Vec<_>>());
        assert_eq!(p.busy.len(), 16);
    }

    #[test]
    fn wall_is_max_busy() {
        let p = run_phase(4, |w| {
            // Worker 3 does measurably more work.
            let n = if w == 3 { 3_000_000u64 } else { 1_000 };
            (0..n).fold(0u64, |a, x| a ^ x.wrapping_mul(0x9e3779b97f4a7c15))
        });
        assert_eq!(p.wall(), *p.busy.iter().max().unwrap());
        assert!(p.total_cpu() >= p.wall());
    }

    #[test]
    fn single_worker() {
        let p = run_phase(1, |_| 42);
        assert_eq!(p.results, vec![42]);
    }

    #[test]
    fn more_workers_than_threads() {
        let p = run_phase(200, |w| w);
        assert_eq!(p.results.len(), 200);
        assert!(p.results.iter().enumerate().all(|(i, &w)| i == w));
    }

    #[test]
    fn pool_threads_clamps() {
        assert_eq!(pool_threads(8, Some(4)), 4);
        assert_eq!(pool_threads(2, Some(16)), 2);
        assert_eq!(pool_threads(8, None), 1);
        assert_eq!(pool_threads(1, Some(0)), 1);
    }

    #[test]
    fn traced_phase_records_one_span_per_worker() {
        let trace = TraceSink::enabled();
        let p = run_phase_traced(4, &trace, "local-join", |w, lane| {
            drop(lane.span("probe", "engine"));
            w
        });
        assert_eq!(p.results, vec![0, 1, 2, 3]);
        let events = trace.events();
        for w in 0..4u32 {
            let on_lane = |n: &str| events.iter().filter(|e| e.name == n && e.lane == w).count();
            assert_eq!(on_lane("local-join"), 1);
            assert_eq!(on_lane("probe"), 1);
        }
        assert!(
            events
                .iter()
                .filter(|e| e.name == "probe")
                .all(|e| e.depth == 1),
            "nested spans sit one level below the phase span"
        );
    }

    #[test]
    fn parallelism_fallback_surfaces_as_warning() {
        assert!(parallelism_warning_for(Some(8)).is_none());
        let d = parallelism_warning_for(None).expect("fallback must warn");
        assert_eq!(d.code, DiagCode::HostParallelismUnknown);
        assert_eq!(d.severity, parjoin_analyze::Severity::Warning);
    }
}
