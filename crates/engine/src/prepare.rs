//! Intra-worker parallel sort for the Tributary prepare phase.
//!
//! The executor pool runs one OS thread per *simulated worker*, capped
//! at the host's core count. A 4-worker run on a 16-core host therefore
//! leaves 12 cores idle during the dominant prepare phase. This module
//! claims those cores: each worker's sort is split into
//! `host_cores / workers` chunks, chunk-sorted concurrently with the
//! kernels in [`parjoin_common::sort`], and merged pairwise with the
//! galloping [`merge_runs`](parjoin_common::sort::merge_runs).
//!
//! When `workers ≥ cores` every core already carries a worker's own
//! sort, so [`prepare_threads`] returns 1 and the serial path runs —
//! worker-level parallelism takes priority because the per-worker sorts
//! are *independent* jobs with no merge overhead, while intra-sort
//! parallelism pays `log(chunks)` merge passes for its speedup.
//!
//! Chunk sorts and the stable merge reproduce the serial stable sort's
//! permutation exactly, so parallel prepare is byte-identical to the
//! serial path (asserted by the `sort_cache` integration suite).

use parjoin_common::sort::{gather, merge_runs, sorted_indices};
use parjoin_common::Relation;

/// Minimum rows before chunking pays for its merge passes.
const PARALLEL_MIN_ROWS: usize = 8192;

/// Sort-chunk threads available to each worker of a phase: the host
/// cores left over after giving every simulated worker one thread
/// (`cores / workers`, at least 1). `None` (unknown host parallelism)
/// degrades to 1, matching the executor pool's own fallback.
pub fn prepare_threads(workers: usize, host: Option<usize>) -> usize {
    parjoin_common::threads::per_worker_threads(workers, host)
}

/// [`prepare_threads`] for the actual host.
pub fn prepare_threads_for_host(workers: usize) -> usize {
    prepare_threads(workers, parjoin_common::threads::host_parallelism())
}

/// `rel.sorted_by_columns(cols)` computed with up to `threads` chunk
/// threads. Output is byte-identical to the serial method; small inputs
/// and `threads <= 1` fall through to the serial path.
pub fn sorted_by_columns_parallel(rel: &Relation, cols: &[usize], threads: usize) -> Relation {
    let n = rel.len();
    if threads <= 1 || n < PARALLEL_MIN_ROWS || cols.is_empty() {
        return rel.sorted_by_columns(cols);
    }
    let proj = rel.project(cols);
    let arity = proj.arity();
    let data = proj.raw();

    // Chunk-sort: each thread index-sorts one contiguous row range.
    let chunks = threads.min(n);
    let per = n.div_ceil(chunks);
    let mut runs: Vec<Vec<u32>> = Vec::with_capacity(chunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..chunks)
            .map(|c| {
                let lo = c * per;
                let hi = ((c + 1) * per).min(n);
                scope.spawn(move || sorted_indices(data, arity, lo, hi))
            })
            .collect();
        for h in handles {
            // A failed join means the sort thread panicked; re-raising
            // the panic here is the correct propagation.
            // xtask: allow(expect)
            runs.push(h.join().expect("chunk sort thread"));
        }
    });

    // Pairwise parallel merge rounds. Merging adjacent runs in chunk
    // order keeps the stable-merge tie rule ("left run first") equal to
    // original row order, which is what makes the result identical to
    // the serial stable sort.
    while runs.len() > 1 {
        let mut next: Vec<Vec<u32>> = Vec::with_capacity(runs.len().div_ceil(2));
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut it = runs.chunks(2);
            for pair in &mut it {
                match pair {
                    [a, b] => {
                        handles.push(Some(scope.spawn(move || merge_runs(data, arity, a, b))));
                    }
                    [_] => handles.push(None),
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"), // xtask: allow(panic)
                }
            }
            for (i, h) in handles.into_iter().enumerate() {
                match h {
                    // Propagates a merge-thread panic. xtask: allow(expect)
                    Some(h) => next.push(h.join().expect("merge thread")),
                    None => next.push(runs[2 * i].clone()),
                }
            }
        });
        runs = next;
    }

    Relation::from_flat(arity, gather(data, arity, &runs[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, domain: u64, seed: u64) -> Relation {
        Relation::from_rows(
            3,
            (0..n as u64).map(|i| {
                [
                    parjoin_common::hash::hash64(i, seed) % domain,
                    parjoin_common::hash::hash64(i, seed ^ 1) % domain,
                    i,
                ]
            }),
        )
    }

    #[test]
    fn prepare_threads_splits_leftover_cores() {
        assert_eq!(prepare_threads(4, Some(16)), 4);
        assert_eq!(prepare_threads(16, Some(16)), 1);
        assert_eq!(prepare_threads(64, Some(16)), 1);
        assert_eq!(prepare_threads(1, Some(8)), 8);
        assert_eq!(prepare_threads(4, None), 1);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // Above the chunking threshold, with duplicates.
        let rel = sample(20_000, 500, 42);
        for cols in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 0]] {
            let serial = rel.sorted_by_columns(&cols);
            for threads in [2, 3, 4, 7] {
                let par = sorted_by_columns_parallel(&rel, &cols, threads);
                assert_eq!(par.raw(), serial.raw(), "cols {cols:?} threads {threads}");
            }
        }
    }

    #[test]
    fn small_inputs_fall_through() {
        let rel = sample(100, 10, 7);
        let par = sorted_by_columns_parallel(&rel, &[1, 0, 2], 8);
        assert_eq!(par.raw(), rel.sorted_by_columns(&[1, 0, 2]).raw());
    }

    #[test]
    fn zero_column_projection() {
        let rel = sample(10, 5, 1);
        let par = sorted_by_columns_parallel(&rel, &[], 4);
        assert_eq!(par.arity(), 0);
        assert_eq!(par.len(), 10);
    }
}
