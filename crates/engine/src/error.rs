//! Engine errors.

use parjoin_analyze::Diagnostic;
use parjoin_query::resolve::ResolveError;
use parjoin_runtime::RuntimeError;

/// Failures during distributed plan execution.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// A worker exceeded the cluster's per-worker memory budget — the
    /// engine-level model of the paper's Q4 `RS_TJ` out-of-memory FAIL.
    MemoryBudget {
        /// The worker that blew the budget.
        worker: usize,
        /// Live tuples the worker would have needed.
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The query could not be bound against the catalog.
    Resolve(ResolveError),
    /// The plan is inapplicable (e.g. a semijoin plan on a cyclic query).
    Unsupported(String),
    /// The pre-flight analyzer rejected the plan. Contains every
    /// diagnostic it produced (errors and accompanying warnings), in
    /// pass order.
    InvalidPlan(Vec<Diagnostic>),
    /// The worker runtime failed mid-shuffle (peer death, timeout, wire
    /// corruption) or could not be constructed.
    Transport(RuntimeError),
    /// The chrome-trace file requested via
    /// [`PlanOptions::trace_path`](crate::PlanOptions) could not be
    /// written. The query itself completed; only the trace export failed.
    Trace(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MemoryBudget {
                worker,
                needed,
                budget,
            } => write!(
                f,
                "worker {worker} exceeded memory budget: needs {needed} tuples, budget {budget}"
            ),
            EngineError::Resolve(e) => write!(f, "resolve error: {e}"),
            EngineError::Unsupported(s) => write!(f, "unsupported plan: {s}"),
            EngineError::InvalidPlan(diags) => {
                write!(f, "invalid plan ({} diagnostic(s))", diags.len())?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            EngineError::Transport(e) => write!(f, "transport error: {e}"),
            EngineError::Trace(m) => write!(f, "trace export failed: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ResolveError> for EngineError {
    fn from(e: ResolveError) -> Self {
        EngineError::Resolve(e)
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Transport(e)
    }
}
