//! Runtime cross-checks behind the `strict-invariants` cargo feature.
//!
//! The static analyzer (`parjoin-analyze`) *argues* that every shuffle
//! the engine performs is parallel-correct — joining tuples always meet
//! on some worker. This module spot-checks that argument at runtime on
//! sampled tuples, and verifies the sortedness precondition of the
//! Tributary join's inputs. The checks cost extra passes over the data
//! and therefore live behind a feature flag; they panic on violation,
//! because a failure here means the engine itself (not the caller's
//! plan) is broken.

use crate::dist::DistRel;
use parjoin_common::Value;
use parjoin_query::VarId;

/// Rows sampled from each side of a co-location check.
const SAMPLE_PER_SIDE: usize = 32;

/// Column indices of `shared` within `vars` (`None` if any is missing —
/// the caller's shared set should always be a subset of both schemas).
fn cols_of(vars: &[VarId], shared: &[VarId]) -> Option<Vec<usize>> {
    shared
        .iter()
        .map(|v| vars.iter().position(|x| x == v))
        .collect()
}

/// Up to [`SAMPLE_PER_SIDE`] distinct rows, drawn evenly across parts so
/// skewed placements are still observed.
fn sample_rows(d: &DistRel) -> Vec<Vec<Value>> {
    let parts = d.parts.len().max(1);
    let per_part = SAMPLE_PER_SIDE.div_ceil(parts);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for p in &d.parts {
        for row in p.rows().take(per_part) {
            let row = row.to_vec();
            if !rows.contains(&row) {
                rows.push(row);
            }
            if rows.len() >= SAMPLE_PER_SIDE {
                return rows;
            }
        }
    }
    rows
}

/// Every worker whose part contains `row` (a row may live on several
/// workers under replicating shuffles).
fn worker_set(d: &DistRel, row: &[Value]) -> Vec<usize> {
    d.parts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.rows().any(|r| r == row))
        .map(|(w, _)| w)
        .collect()
}

/// Asserts that sampled joining pairs of `a` and `b` (rows agreeing on
/// the `shared` variables) are co-located on at least one common worker.
///
/// # Panics
/// Panics when a sampled joining pair meets on no worker — i.e. the
/// shuffle just performed was not parallel-correct.
pub(crate) fn assert_colocated(a: &DistRel, b: &DistRel, shared: &[VarId], what: &str) {
    if shared.is_empty() {
        return;
    }
    let (Some(acols), Some(bcols)) = (cols_of(&a.vars, shared), cols_of(&b.vars, shared)) else {
        return;
    };
    let rows_a = sample_rows(a);
    let rows_b = sample_rows(b);
    for ra in &rows_a {
        let key_a: Vec<Value> = acols.iter().map(|&c| ra[c]).collect();
        for rb in &rows_b {
            let key_b: Vec<Value> = bcols.iter().map(|&c| rb[c]).collect();
            if key_a != key_b {
                continue;
            }
            let wa = worker_set(a, ra);
            let wb = worker_set(b, rb);
            assert!(
                wa.iter().any(|w| wb.contains(w)),
                "strict-invariants: {what}: joining tuples {ra:?} (workers {wa:?}) and \
                 {rb:?} (workers {wb:?}) share no worker"
            );
        }
    }
}

/// Asserts pairwise co-location across every pair of shuffled fragments
/// that share variables (the one-round plans' post-shuffle invariant).
pub(crate) fn assert_all_colocated(shuffled: &[DistRel], what: &str) {
    for (i, a) in shuffled.iter().enumerate() {
        for b in shuffled.iter().skip(i + 1) {
            let shared: Vec<VarId> = a
                .vars
                .iter()
                .copied()
                .filter(|v| b.vars.contains(v))
                .collect();
            assert_colocated(a, b, &shared, what);
        }
    }
}
