//! Worker-level cache of prepared columnar tries.
//!
//! The [`SortCache`](crate::SortCache) amortizes the *sort* across
//! queries; on the columnar probe path the trie *construction* (dedup +
//! CSR offsets over the sorted view) is the next repeated cost, and a
//! prepared [`ColumnarTrie`] is exactly as reusable as the sorted view
//! it was built from: the build is a deterministic function of
//! `(relation content, column permutation)`. The TrieCache therefore
//! layers on top of the SortCache with the *same key discipline* —
//! `(base-relation fingerprint, cols, optional route signature)` — so a
//! served query stream reuses whole tries, not just sorted views, while
//! PR 6's route-signature certification and PR 7's `catalog@v{n}`
//! provenance stamps carry over unchanged.
//!
//! Keying by the *base* relation's fingerprint (not the sorted view's)
//! is sound precisely because the sorted view is itself deterministic
//! from `(base content, cols)` — and it means one fingerprint
//! computation serves both cache layers on a miss.
//!
//! Same policy as the SortCache (both wrap
//! [`crate::cache::KeyedCache`]): process-wide singleton, LRU eviction
//! under a byte capacity, per-route certified entries, build outside
//! the lock, and a per-run `max_entry_bytes` budget cap.

use crate::cache::KeyedCache;
pub use crate::cache::{CacheStats, Lookup, Provenance};
use parjoin_core::tributary::ColumnarTrie;
use std::sync::{Arc, OnceLock};

/// Default capacity in bytes — matches the SortCache default; the
/// deduplicated trie of a view is never larger than the view itself.
pub const DEFAULT_CAPACITY_BYTES: usize = crate::sortcache::DEFAULT_CAPACITY_BYTES;

/// An LRU cache mapping `(base-relation fingerprint, column
/// permutation, optional route)` to prepared [`ColumnarTrie`]s. See the
/// module docs for why the base fingerprint is the right key.
pub struct TrieCache {
    cache: KeyedCache<ColumnarTrie>,
}

impl TrieCache {
    /// Creates a cache with the given byte capacity (0 disables caching).
    pub fn with_capacity(capacity: usize) -> TrieCache {
        TrieCache {
            cache: KeyedCache::with_capacity(capacity),
        }
    }

    /// The process-wide cache shared by all engine runs.
    pub fn global() -> &'static TrieCache {
        static GLOBAL: OnceLock<TrieCache> = OnceLock::new();
        GLOBAL.get_or_init(|| TrieCache::with_capacity(DEFAULT_CAPACITY_BYTES))
    }

    /// Returns the prepared trie for the base relation whose content
    /// fingerprint is `fp` permuted by `cols`, building it via `build`
    /// on a miss. Uncertified: identical content under any route hits.
    ///
    /// `max_entry_bytes` caps the size of any *inserted* trie — pass the
    /// run's memory budget, as with
    /// [`SortCache::get_or_sort`](crate::SortCache::get_or_sort).
    pub fn get_or_build<F>(
        &self,
        fp: u128,
        cols: &[usize],
        max_entry_bytes: Option<usize>,
        build: F,
    ) -> (Arc<ColumnarTrie>, Lookup)
    where
        F: FnOnce() -> ColumnarTrie,
    {
        let (trie, lookup, _) = self
            .cache
            .lookup_or_build(fp, cols, max_entry_bytes, None, build);
        (trie, lookup)
    }

    /// [`TrieCache::get_or_build`] with the certified hit condition of
    /// [`SortCache::get_or_sort_certified`](crate::SortCache::get_or_sort_certified):
    /// the cached trie is served only under an equal route signature;
    /// entries are keyed per route. The third return is `true` exactly
    /// on a certified hit.
    pub fn get_or_build_certified<F>(
        &self,
        fp: u128,
        cols: &[usize],
        max_entry_bytes: Option<usize>,
        prov: Provenance,
        build: F,
    ) -> (Arc<ColumnarTrie>, Lookup, bool)
    where
        F: FnOnce() -> ColumnarTrie,
    {
        self.cache
            .lookup_or_build(fp, cols, max_entry_bytes, Some(prov), build)
    }

    /// Cumulative counters since process start (or [`TrieCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Provenance stamps of the resident *certified* entries, sorted by
    /// (route, query).
    pub fn resident_provenance(&self) -> Vec<Provenance> {
        self.cache.resident_provenance()
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_common::Relation;

    fn sample(seed: u64) -> Relation {
        Relation::from_rows(
            2,
            (0..64u64).map(|i| [parjoin_common::hash::hash64(i, seed) % 16, i]),
        )
    }

    fn build_for<'a>(rel: &'a Relation, cols: &[usize]) -> impl FnOnce() -> ColumnarTrie + 'a {
        let cols = cols.to_vec();
        move || ColumnarTrie::build(&rel.sorted_by_columns(&cols))
    }

    #[test]
    fn second_lookup_hits_and_shares_the_trie() {
        let cache = TrieCache::with_capacity(1 << 20);
        let rel = sample(1);
        let fp = rel.fingerprint();
        let (t1, l1) = cache.get_or_build(fp, &[1, 0], None, build_for(&rel, &[1, 0]));
        let (t2, l2) = cache.get_or_build(fp, &[1, 0], None, build_for(&rel, &[1, 0]));
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Hit));
        assert!(Arc::ptr_eq(&t1, &t2), "hit must share the cached trie");
        assert!(t1.validate().is_ok());
        assert_eq!(t1.rows(), 64);
    }

    #[test]
    fn permutations_and_content_key_separately() {
        let cache = TrieCache::with_capacity(1 << 20);
        let a = sample(2);
        let b = sample(3);
        cache.get_or_build(a.fingerprint(), &[0, 1], None, build_for(&a, &[0, 1]));
        cache.get_or_build(a.fingerprint(), &[1, 0], None, build_for(&a, &[1, 0]));
        cache.get_or_build(b.fingerprint(), &[0, 1], None, build_for(&b, &[0, 1]));
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.misses), (3, 0, 3));
    }

    #[test]
    fn certified_hits_follow_route_keys() {
        let prov = |q: &str, route: &str| Provenance {
            query: q.to_string(),
            route: route.to_string(),
        };
        let cache = TrieCache::with_capacity(1 << 20);
        let rel = sample(4);
        let fp = rel.fingerprint();
        let (_, l1, c1) = cache.get_or_build_certified(
            fp,
            &[0, 1],
            None,
            prov("Q1", "hA(v0)/4"),
            build_for(&rel, &[0, 1]),
        );
        assert_eq!((l1, c1), (Lookup::Miss, false));
        // Same route, different query: certified cross-query hit.
        let (_, l2, c2) = cache.get_or_build_certified(
            fp,
            &[0, 1],
            None,
            prov("Q2", "hA(v0)/4"),
            build_for(&rel, &[0, 1]),
        );
        assert_eq!((l2, c2), (Lookup::Hit, true));
        // Different route: refused, rebuilt under its own key.
        let (_, l3, c3) = cache.get_or_build_certified(
            fp,
            &[0, 1],
            None,
            prov("Q3", "hB(v0)/4"),
            build_for(&rel, &[0, 1]),
        );
        assert_eq!((l3, c3), (Lookup::Miss, false));
        let s = cache.stats();
        assert_eq!(s.certified_hits, 1);
        assert_eq!(s.route_rejects, 1);
        assert_eq!(s.entries, 2);
        let stamps = cache.resident_provenance();
        assert_eq!(stamps, vec![prov("Q1", "hA(v0)/4"), prov("Q3", "hB(v0)/4")]);
    }

    #[test]
    fn budget_caps_inserted_tries() {
        let cache = TrieCache::with_capacity(1 << 20);
        let rel = sample(5);
        let fp = rel.fingerprint();
        let (_, l1) = cache.get_or_build(fp, &[0, 1], Some(8), build_for(&rel, &[0, 1]));
        let (_, l2) = cache.get_or_build(fp, &[0, 1], Some(8), build_for(&rel, &[0, 1]));
        assert_eq!((l1, l2), (Lookup::Miss, Lookup::Miss), "trie over budget");
        assert_eq!(cache.stats().entries, 0);
    }
}
