//! Plan fragments: the per-rank slice of a distributed plan that the
//! coordinator serializes and ships to each worker process.
//!
//! A [`Fragment`] carries everything a worker needs to execute its
//! share of one shuffle×join configuration *without* a database, a
//! catalog, or an optimizer of its own: every global plan decision
//! (effective join order, Tributary variable order, HyperCube shares,
//! probe-thread count) is made **once** on the coordinator and shipped,
//! so all ranks run the same deterministic step loop in lockstep and
//! the multi-process result is byte-identical to the single-process
//! `Transport::Local` run. The only things a worker recomputes are pure
//! functions of the query itself (residual filters, join schemas).
//!
//! The wire form rides inside a `Fragment` control frame of the PJCP
//! protocol (`parjoin_common::wire::control`): little-endian fixed-width
//! scalars, length-prefixed strings and lists, and relations encoded
//! with the same batch codec the data plane uses. [`Fragment::decode`]
//! refuses truncated, malformed, or trailing-garbage payloads with
//! typed [`ControlError`]s — and every decoded fragment is re-vetted by
//! [`Fragment::preflight`] before a single tuple moves.

use crate::cluster::Cluster;
use crate::dist::DistRel;
use crate::error::EngineError;
use crate::plans::{greedy_join_order, rooted_order, JoinAlg, PlanOptions, ShuffleAlg, TrieLayout};
use parjoin_analyze as analyze;
use parjoin_common::wire::control::{self, ControlError, PayloadReader};
use parjoin_common::wire::{decode_batch_into, encode_relation};
use parjoin_common::{Relation, WireFormat};
use parjoin_core::hypercube::{AtomShape, HcConfig, ShareProblem};
use parjoin_core::order::{best_order, OrderCostModel};
use parjoin_query::{resolve_atoms, Atom, CmpOp, ConjunctiveQuery, Filter, Operand, Term, VarId};

/// One rank's share of a distributed plan, self-contained and
/// serializable. See the module docs for the lockstep contract.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// This worker's rank in `0..workers`.
    pub rank: u32,
    /// Mesh width (number of worker processes).
    pub workers: u32,
    /// The cluster's hash seed — all ranks must agree or shuffles
    /// scatter joining tuples apart.
    pub seed: u64,
    /// Shuffle algorithm of the configuration.
    pub shuffle: ShuffleAlg,
    /// Local join algorithm of the configuration.
    pub join: JoinAlg,
    /// Trie representation for Tributary probes.
    pub trie_layout: TrieLayout,
    /// Batch encoding for the data-plane exchange.
    pub wire_format: WireFormat,
    /// Compress shuffled batches on the wire.
    pub wire_compression: bool,
    /// Tuples per exchange batch.
    pub batch_tuples: u32,
    /// Per-worker probe thread count (decided on the coordinator so a
    /// heterogeneous mesh still probes with identical parallelism).
    pub probe_threads: u32,
    /// Per-worker memory budget in tuples, if any.
    pub memory_budget: Option<u64>,
    /// The coordinator's host core count (pre-flight context only).
    pub host_cores: Option<u64>,
    /// Effective left-deep join order (atom indices) — explicit or the
    /// coordinator's greedy choice, never recomputed on the worker.
    pub join_order: Vec<usize>,
    /// Order of the local multiway join: [`Self::join_order`] except
    /// under broadcast, where it is rooted at the partitioned atom.
    pub local_order: Vec<usize>,
    /// Tributary global variable order (Tributary one-round plans).
    pub tj_order: Option<Vec<VarId>>,
    /// The HyperCube share assignment (HyperCube plans).
    pub hc_config: Option<HcConfig>,
    /// Global cardinality of each resolved atom.
    pub cards: Vec<u64>,
    /// The query, shipped structurally (re-parsing source text could
    /// renumber variables; the numbered form is the plan's identity).
    pub query: ConjunctiveQuery,
    /// Schema (variables) of each resolved atom.
    pub atom_vars: Vec<Vec<VarId>>,
    /// This rank's round-robin seed partition of each resolved atom.
    pub parts: Vec<Relation>,
    /// Data-plane addresses of every rank, index-aligned with ranks;
    /// the worker dials these to form the exchange mesh.
    pub data_addrs: Vec<String>,
}

fn put_u32_list(buf: &mut Vec<u8>, vs: impl ExactSizeIterator<Item = u32>) {
    control::put_u32(buf, vs.len() as u32);
    for v in vs {
        control::put_u32(buf, v);
    }
}

fn read_u32_list(r: &mut PayloadReader<'_>) -> Result<Vec<u32>, ControlError> {
    let n = r.u32()? as usize;
    (0..n).map(|_| r.u32()).collect()
}

fn cmp_op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    }
}

fn cmp_op_from(code: u8) -> Result<CmpOp, ControlError> {
    Ok(match code {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        other => {
            return Err(ControlError::Malformed(format!(
                "unknown comparison op code {other}"
            )))
        }
    })
}

fn put_relation(buf: &mut Vec<u8>, rel: &Relation) {
    control::put_u32(buf, rel.arity() as u32);
    let mut body = Vec::new();
    encode_relation(rel, &mut body);
    control::put_u32(buf, body.len() as u32);
    buf.extend_from_slice(&body);
}

fn read_relation(r: &mut PayloadReader<'_>) -> Result<Relation, ControlError> {
    let arity = r.u32()? as usize;
    let len = r.u32()? as usize;
    let body = r.take(len)?;
    let mut rel = Relation::new(arity);
    decode_batch_into(body, &mut rel)
        .map_err(|e| ControlError::Malformed(format!("relation body: {e}")))?;
    Ok(rel)
}

impl Fragment {
    fn encode_query(&self, buf: &mut Vec<u8>) {
        let q = &self.query;
        control::put_str(buf, &q.name);
        control::put_u32(buf, q.var_names.len() as u32);
        for n in &q.var_names {
            control::put_str(buf, n);
        }
        put_u32_list(buf, q.head.iter().map(|v| v.0));
        control::put_u32(buf, q.atoms.len() as u32);
        for atom in &q.atoms {
            control::put_str(buf, &atom.relation);
            control::put_u32(buf, atom.terms.len() as u32);
            for t in &atom.terms {
                match t {
                    Term::Var(v) => {
                        control::put_u8(buf, 0);
                        control::put_u64(buf, u64::from(v.0));
                    }
                    Term::Const(c) => {
                        control::put_u8(buf, 1);
                        control::put_u64(buf, *c);
                    }
                }
            }
        }
        control::put_u32(buf, q.filters.len() as u32);
        for f in &q.filters {
            control::put_u32(buf, f.left.0);
            control::put_u8(buf, cmp_op_code(f.op));
            match f.right {
                Operand::Var(v) => {
                    control::put_u8(buf, 0);
                    control::put_u64(buf, u64::from(v.0));
                }
                Operand::Const(c) => {
                    control::put_u8(buf, 1);
                    control::put_u64(buf, c);
                }
            }
        }
    }

    fn decode_query(r: &mut PayloadReader<'_>) -> Result<ConjunctiveQuery, ControlError> {
        let name = r.str()?;
        let n_vars = r.u32()? as usize;
        let var_names = (0..n_vars)
            .map(|_| r.str())
            .collect::<Result<Vec<_>, _>>()?;
        let head = read_u32_list(r)?.into_iter().map(VarId).collect();
        let n_atoms = r.u32()? as usize;
        let mut atoms = Vec::with_capacity(n_atoms);
        for _ in 0..n_atoms {
            let relation = r.str()?;
            let n_terms = r.u32()? as usize;
            let mut terms = Vec::with_capacity(n_terms);
            for _ in 0..n_terms {
                let tag = r.u8()?;
                let v = r.u64()?;
                terms.push(match tag {
                    0 => Term::Var(VarId(u32::try_from(v).map_err(|_| {
                        ControlError::Malformed(format!("variable id {v} overflows u32"))
                    })?)),
                    1 => Term::Const(v),
                    other => {
                        return Err(ControlError::Malformed(format!("unknown term tag {other}")))
                    }
                });
            }
            atoms.push(Atom { relation, terms });
        }
        let n_filters = r.u32()? as usize;
        let mut filters = Vec::with_capacity(n_filters);
        for _ in 0..n_filters {
            let left = VarId(r.u32()?);
            let op = cmp_op_from(r.u8()?)?;
            let tag = r.u8()?;
            let v = r.u64()?;
            let right = match tag {
                0 => Operand::Var(VarId(u32::try_from(v).map_err(|_| {
                    ControlError::Malformed(format!("variable id {v} overflows u32"))
                })?)),
                1 => Operand::Const(v),
                other => {
                    return Err(ControlError::Malformed(format!(
                        "unknown operand tag {other}"
                    )))
                }
            };
            filters.push(Filter { left, op, right });
        }
        Ok(ConjunctiveQuery {
            name,
            head,
            atoms,
            filters,
            var_names,
        })
    }

    /// Serializes the fragment as a PJCP `Fragment` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        control::put_u32(&mut buf, self.rank);
        control::put_u32(&mut buf, self.workers);
        control::put_u64(&mut buf, self.seed);
        control::put_u8(
            &mut buf,
            match self.shuffle {
                ShuffleAlg::Regular => 0,
                ShuffleAlg::Broadcast => 1,
                ShuffleAlg::HyperCube => 2,
            },
        );
        control::put_u8(
            &mut buf,
            match self.join {
                JoinAlg::Hash => 0,
                JoinAlg::Tributary => 1,
            },
        );
        control::put_u8(
            &mut buf,
            match self.trie_layout {
                TrieLayout::Row => 0,
                TrieLayout::Columnar => 1,
            },
        );
        control::put_u8(
            &mut buf,
            match self.wire_format {
                WireFormat::Varint => 0,
                WireFormat::Vectored => 1,
            },
        );
        control::put_u8(&mut buf, u8::from(self.wire_compression));
        control::put_u32(&mut buf, self.batch_tuples);
        control::put_u32(&mut buf, self.probe_threads);
        control::put_opt_u64(&mut buf, self.memory_budget);
        control::put_opt_u64(&mut buf, self.host_cores);
        put_u32_list(&mut buf, self.join_order.iter().map(|&i| i as u32));
        put_u32_list(&mut buf, self.local_order.iter().map(|&i| i as u32));
        match &self.tj_order {
            None => control::put_u8(&mut buf, 0),
            Some(order) => {
                control::put_u8(&mut buf, 1);
                put_u32_list(&mut buf, order.iter().map(|v| v.0));
            }
        }
        match &self.hc_config {
            None => control::put_u8(&mut buf, 0),
            Some(cfg) => {
                control::put_u8(&mut buf, 1);
                control::put_u32(&mut buf, cfg.vars().len() as u32);
                for (v, &d) in cfg.vars().iter().zip(cfg.dims()) {
                    control::put_u32(&mut buf, v.0);
                    control::put_u32(&mut buf, d as u32);
                }
            }
        }
        control::put_u32(&mut buf, self.cards.len() as u32);
        for &c in &self.cards {
            control::put_u64(&mut buf, c);
        }
        self.encode_query(&mut buf);
        control::put_u32(&mut buf, self.atom_vars.len() as u32);
        for vs in &self.atom_vars {
            put_u32_list(&mut buf, vs.iter().map(|v| v.0));
        }
        control::put_u32(&mut buf, self.parts.len() as u32);
        for p in &self.parts {
            put_relation(&mut buf, p);
        }
        control::put_u32(&mut buf, self.data_addrs.len() as u32);
        for a in &self.data_addrs {
            control::put_str(&mut buf, a);
        }
        buf
    }

    /// Decodes a fragment from a PJCP `Fragment` frame payload.
    ///
    /// # Errors
    /// [`ControlError::Truncated`] / [`ControlError::Malformed`] on a
    /// short payload, an unknown enum code, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Fragment, ControlError> {
        let mut r = PayloadReader::new(bytes);
        let rank = r.u32()?;
        let workers = r.u32()?;
        let seed = r.u64()?;
        let shuffle = match r.u8()? {
            0 => ShuffleAlg::Regular,
            1 => ShuffleAlg::Broadcast,
            2 => ShuffleAlg::HyperCube,
            other => {
                return Err(ControlError::Malformed(format!(
                    "unknown shuffle code {other}"
                )))
            }
        };
        let join = match r.u8()? {
            0 => JoinAlg::Hash,
            1 => JoinAlg::Tributary,
            other => {
                return Err(ControlError::Malformed(format!(
                    "unknown join code {other}"
                )))
            }
        };
        let trie_layout = match r.u8()? {
            0 => TrieLayout::Row,
            1 => TrieLayout::Columnar,
            other => {
                return Err(ControlError::Malformed(format!(
                    "unknown trie layout code {other}"
                )))
            }
        };
        let wire_format = match r.u8()? {
            0 => WireFormat::Varint,
            1 => WireFormat::Vectored,
            other => {
                return Err(ControlError::Malformed(format!(
                    "unknown wire format code {other}"
                )))
            }
        };
        let wire_compression = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(ControlError::Malformed(format!(
                    "invalid bool byte {other}"
                )))
            }
        };
        let batch_tuples = r.u32()?;
        let probe_threads = r.u32()?;
        let memory_budget = r.opt_u64()?;
        let host_cores = r.opt_u64()?;
        let join_order: Vec<usize> = read_u32_list(&mut r)?
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let local_order: Vec<usize> = read_u32_list(&mut r)?
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let tj_order = match r.u8()? {
            0 => None,
            1 => Some(read_u32_list(&mut r)?.into_iter().map(VarId).collect()),
            other => {
                return Err(ControlError::Malformed(format!(
                    "invalid option tag {other} (expected 0 or 1)"
                )))
            }
        };
        let hc_config = match r.u8()? {
            0 => None,
            1 => {
                let k = r.u32()? as usize;
                let mut vars = Vec::with_capacity(k);
                let mut dims = Vec::with_capacity(k);
                for _ in 0..k {
                    vars.push(VarId(r.u32()?));
                    let d = r.u32()? as usize;
                    if d == 0 {
                        return Err(ControlError::Malformed(
                            "hypercube dimension of zero".to_string(),
                        ));
                    }
                    dims.push(d);
                }
                Some(HcConfig::new(vars, dims))
            }
            other => {
                return Err(ControlError::Malformed(format!(
                    "invalid option tag {other} (expected 0 or 1)"
                )))
            }
        };
        let n_cards = r.u32()? as usize;
        let cards = (0..n_cards)
            .map(|_| r.u64())
            .collect::<Result<Vec<_>, _>>()?;
        let query = Self::decode_query(&mut r)?;
        let n_atom_vars = r.u32()? as usize;
        let atom_vars = (0..n_atom_vars)
            .map(|_| Ok(read_u32_list(&mut r)?.into_iter().map(VarId).collect()))
            .collect::<Result<Vec<Vec<VarId>>, ControlError>>()?;
        let n_parts = r.u32()? as usize;
        let parts = (0..n_parts)
            .map(|_| read_relation(&mut r))
            .collect::<Result<Vec<_>, _>>()?;
        let n_addrs = r.u32()? as usize;
        let data_addrs = (0..n_addrs)
            .map(|_| r.str())
            .collect::<Result<Vec<_>, _>>()?;
        r.done()?;
        Ok(Fragment {
            rank,
            workers,
            seed,
            shuffle,
            join,
            trie_layout,
            wire_format,
            wire_compression,
            batch_tuples,
            probe_threads,
            memory_budget,
            host_cores,
            join_order,
            local_order,
            tj_order,
            hc_config,
            cards,
            query,
            atom_vars,
            parts,
            data_addrs,
        })
    }

    /// The analyzer's [`PlanSpec`](analyze::PlanSpec) for this fragment
    /// — the same spec the coordinator vetted before shipping, rebuilt
    /// from the decoded bytes so a worker re-runs the identical
    /// pre-flight gate on what actually arrived.
    pub fn plan_spec(&self) -> analyze::PlanSpec<'_> {
        analyze::PlanSpec {
            query: &self.query,
            cards: self.cards.clone(),
            workers: self.workers as usize,
            memory_budget: self.memory_budget,
            shuffle: self.shuffle.into(),
            join: self.join.into(),
            join_order: Some(self.join_order.clone()),
            hc_config: self.hc_config.clone(),
            tj_order: self.tj_order.clone(),
            batch_tuples: Some(u64::from(self.batch_tuples)),
            wire_format: self.wire_format,
            max_frame_bytes: Some(u64::from(parjoin_runtime::transport::MAX_FRAME_BYTES)),
            host_cores: self.host_cores.map(|c| c as usize),
            seed: self.seed,
        }
    }

    /// Re-runs the pre-flight analyzer on the decoded fragment and
    /// sanity-checks the rank/mesh geometry. Workers call this before
    /// joining the exchange mesh so a corrupt or stale fragment is
    /// refused instead of executed.
    ///
    /// # Errors
    /// [`EngineError::InvalidPlan`] when the analyzer finds errors;
    /// [`EngineError::Unsupported`] when the fragment's geometry is
    /// inconsistent (rank out of range, address list of the wrong
    /// width, atom lists out of alignment).
    pub fn preflight(&self) -> Result<(), EngineError> {
        if self.rank >= self.workers {
            return Err(EngineError::Unsupported(format!(
                "fragment rank {} outside mesh of {} workers",
                self.rank, self.workers
            )));
        }
        if self.data_addrs.len() != self.workers as usize {
            return Err(EngineError::Unsupported(format!(
                "fragment lists {} data addresses for {} workers",
                self.data_addrs.len(),
                self.workers
            )));
        }
        let atoms = self.query.atoms.len();
        if self.atom_vars.len() != atoms || self.parts.len() != atoms || self.cards.len() != atoms {
            return Err(EngineError::Unsupported(format!(
                "fragment atom lists out of alignment: query has {atoms} atoms, \
                 {} schemas, {} partitions, {} cardinalities",
                self.atom_vars.len(),
                self.parts.len(),
                self.cards.len()
            )));
        }
        for (vs, p) in self.atom_vars.iter().zip(&self.parts) {
            if vs.len() != p.arity() {
                return Err(EngineError::Unsupported(format!(
                    "fragment partition arity {} does not match its {}-variable schema",
                    p.arity(),
                    vs.len()
                )));
            }
        }
        analyze::preflight(&self.plan_spec()).map_err(EngineError::InvalidPlan)?;
        Ok(())
    }
}

/// Plans `query` for remote execution: makes every global decision the
/// local `run_config` path would make (effective join order, Tributary
/// variable order on the *pre-shuffle* seeded relations, HyperCube
/// shares, broadcast root, probe threads), vets the plan with the
/// pre-flight analyzer (and, with [`PlanOptions::certify`], the policy
/// certifier), round-robin-seeds the base relations, and returns one
/// [`Fragment`] per rank.
///
/// `data_addrs[r]` must be rank `r`'s data-plane listener address.
///
/// # Errors
/// - [`EngineError::Unsupported`] for plan options the remote path does
///   not carry (`skew_resilient`, `group_count`, `trace_path`) or a
///   mis-sized address list.
/// - [`EngineError::Resolve`] when the query references missing
///   relations.
/// - [`EngineError::InvalidPlan`] when the analyzer or certifier
///   refuses the plan.
pub fn plan_fragments(
    query: &ConjunctiveQuery,
    db: &parjoin_common::Database,
    cluster: &Cluster,
    shuffle_alg: ShuffleAlg,
    join_alg: JoinAlg,
    opts: &PlanOptions,
    data_addrs: &[String],
) -> Result<Vec<Fragment>, EngineError> {
    if opts.skew_resilient {
        return Err(EngineError::Unsupported(
            "skew_resilient shuffles are not supported over the remote mesh".to_string(),
        ));
    }
    if opts.group_count {
        return Err(EngineError::Unsupported(
            "group_count aggregation is not supported over the remote mesh".to_string(),
        ));
    }
    if opts.trace_path.is_some() {
        return Err(EngineError::Unsupported(
            "trace capture is not supported over the remote mesh".to_string(),
        ));
    }
    if data_addrs.len() != cluster.workers {
        return Err(EngineError::Unsupported(format!(
            "{} data addresses for a cluster of {} workers",
            data_addrs.len(),
            cluster.workers
        )));
    }

    let (resolved, _residual) = resolve_atoms(query, db)?;
    let atom_vars: Vec<Vec<VarId>> = resolved.iter().map(|a| a.vars.clone()).collect();
    let cards: Vec<u64> = resolved.iter().map(|a| a.len() as u64).collect();
    let join_order = opts.join_order.clone().unwrap_or_else(|| {
        let shapes: Vec<(Vec<VarId>, &Relation)> = resolved
            .iter()
            .map(|a| (a.vars.clone(), a.rel.as_ref()))
            .collect();
        greedy_join_order(&shapes)
    });

    // The same pre-flight gate `run_config` applies, on the same spec —
    // the *effective* join order is what gets vetted.
    let spec = analyze::PlanSpec {
        query,
        cards: cards.clone(),
        workers: cluster.workers,
        memory_budget: cluster.memory_budget,
        shuffle: shuffle_alg.into(),
        join: join_alg.into(),
        join_order: Some(join_order.clone()),
        hc_config: opts.hc_config.clone(),
        tj_order: opts.tj_order.clone(),
        batch_tuples: Some(cluster.batch_tuples as u64),
        wire_format: cluster.wire_format,
        max_frame_bytes: Some(u64::from(parjoin_runtime::transport::MAX_FRAME_BYTES)),
        host_cores: parjoin_common::threads::host_parallelism(),
        seed: cluster.seed,
    };
    analyze::preflight(&spec).map_err(EngineError::InvalidPlan)?;
    if opts.certify {
        let (_planned, cert_diags) = analyze::certify_spec(&spec);
        if analyze::has_errors(&cert_diags) {
            return Err(EngineError::InvalidPlan(cert_diags));
        }
    }

    // Initial placement, identical to the local path.
    let seeded: Vec<DistRel> = resolved
        .iter()
        .map(|a| DistRel::round_robin(&a.rel, a.vars.clone(), cluster.workers))
        .collect();

    // Global plan decisions, computed exactly as the local executor
    // computes them (run_one_round): the Tributary order is optimized on
    // the gathered *pre-shuffle* relations so statistics see no
    // replication; broadcast roots the local tree at the largest atom.
    let tj_order: Option<Vec<VarId>> =
        if join_alg == JoinAlg::Tributary && shuffle_alg != ShuffleAlg::Regular {
            Some(opts.tj_order.clone().unwrap_or_else(|| {
                let gathered: Vec<Relation> = seeded.iter().map(|d| d.gather()).collect();
                let model_atoms: Vec<(&Relation, Vec<VarId>)> = gathered
                    .iter()
                    .zip(&atom_vars)
                    .map(|(r, vs)| (r, vs.clone()))
                    .collect();
                let model = OrderCostModel::from_atoms(&model_atoms);
                best_order(&model, &query.all_vars()).0
            }))
        } else {
            None
        };
    let local_order = if shuffle_alg == ShuffleAlg::Broadcast {
        // Queries have at least one atom (parser and analyzer both
        // enforce it), so the argmax exists; 0 is unreachable.
        let largest = (0..cards.len()).max_by_key(|&i| cards[i]).unwrap_or(0);
        rooted_order(&atom_vars, largest)
    } else {
        join_order.clone()
    };
    let hc_config: Option<HcConfig> = if shuffle_alg == ShuffleAlg::HyperCube {
        Some(opts.hc_config.clone().unwrap_or_else(|| {
            let problem = ShareProblem {
                vars: query.all_vars(),
                atoms: atom_vars
                    .iter()
                    .zip(&cards)
                    .map(|(vs, &c)| AtomShape {
                        vars: vs.clone(),
                        cardinality: c,
                    })
                    .collect(),
            };
            problem.optimize(cluster.workers)
        }))
    } else {
        None
    };
    let probe_threads = opts.effective_probe_threads(cluster.workers) as u32;
    let host_cores = parjoin_common::threads::host_parallelism().map(|c| c as u64);

    Ok((0..cluster.workers)
        .map(|rank| Fragment {
            rank: rank as u32,
            workers: cluster.workers as u32,
            seed: cluster.seed,
            shuffle: shuffle_alg,
            join: join_alg,
            trie_layout: opts.trie_layout,
            wire_format: cluster.wire_format,
            wire_compression: opts.wire_compression,
            batch_tuples: cluster.batch_tuples as u32,
            probe_threads,
            memory_budget: cluster.memory_budget,
            host_cores,
            join_order: join_order.clone(),
            local_order: local_order.clone(),
            tj_order: tj_order.clone(),
            hc_config: hc_config.clone(),
            cards: cards.clone(),
            query: query.clone(),
            atom_vars: atom_vars.clone(),
            parts: seeded.iter().map(|d| d.parts[rank].clone()).collect(),
            data_addrs: data_addrs.to_vec(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_common::Database;
    use parjoin_query::parser;

    fn triangle_db() -> (ConjunctiveQuery, Database) {
        let q = parser::parse("T(x, y, z) :- R(x, y), S(y, z), U(z, x)").unwrap();
        let mut db = Database::new();
        let edges = Relation::from_rows(
            2,
            (0..40u64)
                .map(|i| [i, (i * 7 + 1) % 40])
                .collect::<Vec<_>>()
                .iter(),
        );
        db.insert("R", edges.clone());
        db.insert("S", edges.clone());
        db.insert("U", edges);
        (q, db)
    }

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|r| format!("127.0.0.1:{}", 9000 + r)).collect()
    }

    fn fragments_for(s: ShuffleAlg, j: JoinAlg) -> Vec<Fragment> {
        let (q, db) = triangle_db();
        let cluster = Cluster::new(4).with_seed(11);
        plan_fragments(&q, &db, &cluster, s, j, &PlanOptions::default(), &addrs(4)).unwrap()
    }

    #[test]
    fn fragments_roundtrip_all_configs() {
        for (s, j) in [
            (ShuffleAlg::Regular, JoinAlg::Hash),
            (ShuffleAlg::Regular, JoinAlg::Tributary),
            (ShuffleAlg::Broadcast, JoinAlg::Hash),
            (ShuffleAlg::Broadcast, JoinAlg::Tributary),
            (ShuffleAlg::HyperCube, JoinAlg::Hash),
            (ShuffleAlg::HyperCube, JoinAlg::Tributary),
        ] {
            for frag in fragments_for(s, j) {
                let bytes = frag.encode();
                let back = Fragment::decode(&bytes).unwrap();
                // The codec is canonical: decode∘encode re-encodes to
                // the identical bytes, which covers every field at once.
                assert_eq!(bytes, back.encode(), "{s:?}/{j:?} round-trip drifted");
                assert_eq!(frag.rank, back.rank);
                assert_eq!(frag.join_order, back.join_order);
                assert_eq!(frag.tj_order, back.tj_order);
                assert_eq!(frag.hc_config, back.hc_config);
                assert_eq!(
                    frag.parts.iter().map(Relation::raw).collect::<Vec<_>>(),
                    back.parts.iter().map(Relation::raw).collect::<Vec<_>>()
                );
                back.preflight().unwrap();
            }
        }
    }

    #[test]
    fn fragments_partition_the_seeded_data() {
        let frags = fragments_for(ShuffleAlg::HyperCube, JoinAlg::Hash);
        let total: usize = frags.iter().map(|f| f.parts[0].len()).sum();
        assert_eq!(total, 40, "round-robin partitions cover the relation");
        assert!(frags.iter().all(|f| f.workers == 4));
        assert!(frags.iter().any(|f| f.hc_config.is_some()));
    }

    #[test]
    fn truncated_fragment_is_a_typed_error() {
        let frag = &fragments_for(ShuffleAlg::Regular, JoinAlg::Hash)[0];
        let bytes = frag.encode();
        let err = Fragment::decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(
            matches!(err, ControlError::Truncated(_)),
            "want Truncated, got {err:?}"
        );
    }

    #[test]
    fn trailing_garbage_is_a_typed_error() {
        let frag = &fragments_for(ShuffleAlg::Regular, JoinAlg::Hash)[0];
        let mut bytes = frag.encode();
        bytes.push(0xAB);
        let err = Fragment::decode(&bytes).unwrap_err();
        assert!(
            matches!(err, ControlError::Malformed(_)),
            "want Malformed, got {err:?}"
        );
    }

    #[test]
    fn corrupt_enum_code_is_a_typed_error() {
        let frag = &fragments_for(ShuffleAlg::Regular, JoinAlg::Hash)[0];
        let mut bytes = frag.encode();
        bytes[16] = 99; // the shuffle-algorithm code
        let err = Fragment::decode(&bytes).unwrap_err();
        assert!(
            matches!(err, ControlError::Malformed(_)),
            "want Malformed, got {err:?}"
        );
    }

    #[test]
    fn unsupported_options_are_refused() {
        let (q, db) = triangle_db();
        let cluster = Cluster::new(4);
        for opts in [
            PlanOptions {
                skew_resilient: true,
                ..Default::default()
            },
            PlanOptions {
                group_count: true,
                ..Default::default()
            },
            PlanOptions {
                trace_path: Some("trace.json".into()),
                ..Default::default()
            },
        ] {
            let err = plan_fragments(
                &q,
                &db,
                &cluster,
                ShuffleAlg::Regular,
                JoinAlg::Hash,
                &opts,
                &addrs(4),
            )
            .unwrap_err();
            assert!(matches!(err, EngineError::Unsupported(_)), "got {err:?}");
        }
    }

    #[test]
    fn rank_geometry_is_checked() {
        let mut frag = fragments_for(ShuffleAlg::Regular, JoinAlg::Hash)[0].clone();
        frag.rank = 9;
        assert!(matches!(
            frag.preflight().unwrap_err(),
            EngineError::Unsupported(_)
        ));
    }
}
