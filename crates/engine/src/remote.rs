//! Remote fragment execution: one rank's side of a distributed plan,
//! run over a real TCP mesh ([`HostMesh`]) instead of the in-process
//! simulator.
//!
//! [`execute_fragment`] is a line-for-line mirror of the local
//! executor's per-worker work (`plans::run_regular` and
//! `plans::run_one_round`): the same router constructors
//! (`shuffle::regular_router_for` / `broadcast_router` /
//! `hypercube_router_for`), the same join primitives
//! (`probe::hash_join_parallel`, `local::merge_join`,
//! `probe::tributary_probe`), the same filter scheduling
//! (`plans::take_ready_filters`), and the same join-schema derivation
//! (an empty `hash_join`). Every *global* decision — join order,
//! Tributary variable order, HyperCube shares, probe threads — arrives
//! pre-made in the [`Fragment`], so all ranks execute the identical
//! deterministic step sequence and the gathered result is byte-identical
//! to a `Transport::Local` run of the same plan.
//!
//! Each shuffle is one exchange round on the mesh: a fresh
//! [`HostMesh::endpoint`] (the mesh's round-sync contract guarantees
//! rounds never interleave), the existing vectored exchange
//! (`exchange::run_worker`) moving encoded batches, and the per-source
//! ascending drain order reproducing the Local loop's row order.

use crate::error::EngineError;
use crate::fragment::Fragment;
use crate::local::{hash_join, merge_join, SchemaRel};
use crate::plans::{take_ready_filters, JoinAlg, ShuffleAlg, TrieLayout};
use crate::probe;
use crate::shuffle;
use parjoin_common::Relation;
use parjoin_core::tributary::{ColumnarAtom, SortedAtom, Tributary};
use parjoin_query::resolve::split_filters;
use parjoin_query::{Filter, VarId};
use parjoin_runtime::exchange::{self, ExchangeOpts};
use parjoin_runtime::pool::DEFAULT_POOL_CAP;
use parjoin_runtime::{BufPool, HostMesh, Router};
use std::sync::Arc;

/// What one rank produced by executing its fragment.
#[derive(Debug)]
pub struct RemoteOutcome {
    /// This rank's partition of the output, projected to the head.
    pub output: Relation,
    /// Tuples this rank sent across all exchange rounds.
    pub tuples_sent: u64,
    /// Exchange rounds this rank participated in.
    pub rounds: u32,
}

/// One exchange round on the mesh: dial peers, stream this rank's
/// partition through `router`, drain what the peers routed here.
struct Exchanger<'a> {
    frag: &'a Fragment,
    mesh: &'a HostMesh,
    pool: Arc<BufPool>,
    tuples_sent: u64,
    rounds: u32,
}

impl Exchanger<'_> {
    fn new<'a>(frag: &'a Fragment, mesh: &'a HostMesh) -> Exchanger<'a> {
        let pool = Arc::new(BufPool::new(
            DEFAULT_POOL_CAP,
            mesh.obs.buf_reuses.clone(),
            mesh.obs.buf_allocs.clone(),
        ));
        Exchanger {
            frag,
            mesh,
            pool,
            tuples_sent: 0,
            rounds: 0,
        }
    }

    fn round(
        &mut self,
        part: &Relation,
        arity: usize,
        router: &Router,
    ) -> Result<Relation, EngineError> {
        let opts = ExchangeOpts {
            batch_tuples: (self.frag.batch_tuples as usize).max(1),
            format: self.frag.wire_format,
            compression: self.frag.wire_compression,
        };
        let endpoint = self.mesh.endpoint(&self.pool)?;
        let outcome = exchange::run_worker(
            self.mesh.rank(),
            part,
            self.mesh.workers(),
            opts,
            endpoint,
            router,
            &self.mesh.obs,
            &self.pool,
        )?;
        self.tuples_sent += outcome.sent_tuples;
        self.rounds += 1;
        let mut rel = outcome.received;
        // Nothing received leaves the arity unknowable from the wire;
        // restore the schema arity (exactly what the local
        // `shuffle::run_router` does for empty partitions).
        if rel.is_empty() && rel.arity() != arity {
            rel = Relation::new(arity);
        }
        Ok(rel)
    }
}

fn check_budget(frag: &Fragment, needed: u64) -> Result<(), EngineError> {
    if let Some(budget) = frag.memory_budget {
        if needed > budget {
            return Err(EngineError::MemoryBudget {
                worker: frag.rank as usize,
                needed,
                budget,
            });
        }
    }
    Ok(())
}

/// Executes `frag` on an already-joined `mesh` and returns this rank's
/// output partition. See the module docs for the lockstep/byte-identity
/// contract.
///
/// # Errors
/// - [`EngineError::Transport`] when an exchange round fails (peer
///   death, handshake timeout, frame errors — all typed
///   `RuntimeError`s).
/// - [`EngineError::MemoryBudget`] when a join step exceeds the
///   fragment's per-worker budget.
/// - [`EngineError::InvalidPlan`] / [`EngineError::Unsupported`] on
///   malformed fragments (callers normally run
///   [`Fragment::preflight`] first).
pub fn execute_fragment(frag: &Fragment, mesh: &HostMesh) -> Result<RemoteOutcome, EngineError> {
    if mesh.workers() != frag.workers as usize || mesh.rank() != frag.rank as usize {
        return Err(EngineError::Unsupported(format!(
            "fragment addressed to rank {}/{} but the mesh is rank {}/{}",
            frag.rank,
            frag.workers,
            mesh.rank(),
            mesh.workers()
        )));
    }
    let mut ex = Exchanger::new(frag, mesh);
    let head = frag.query.output_vars();
    let out = match frag.shuffle {
        ShuffleAlg::Regular => execute_regular(frag, &mut ex)?,
        ShuffleAlg::Broadcast | ShuffleAlg::HyperCube => execute_one_round(frag, &mut ex)?,
    };
    // Project to the head exactly as `finish_output` does (the RS path
    // still carries the full schema; one-round paths are already
    // head-shaped and `project` is then the identity).
    let projected = if out.vars == head {
        out.rel
    } else {
        out.project(&head).rel
    };
    Ok(RemoteOutcome {
        output: projected,
        tuples_sent: ex.tuples_sent,
        rounds: ex.rounds,
    })
}

/// The per-rank body of `plans::run_regular`: a left-deep tree of
/// binary joins, re-shuffling both sides on the step's shared variable
/// before each join.
fn execute_regular(frag: &Fragment, ex: &mut Exchanger<'_>) -> Result<SchemaRel, EngineError> {
    let workers = frag.workers as usize;
    let order = &frag.join_order;
    if order.len() != frag.parts.len() {
        return Err(EngineError::Unsupported(
            "join order must cover every atom".to_string(),
        ));
    }
    let mut pending: Vec<Filter> = split_filters(&frag.query).1;
    let mut atoms: Vec<Option<SchemaRel>> = frag
        .atom_vars
        .iter()
        .zip(&frag.parts)
        .map(|(vs, p)| {
            Some(SchemaRel {
                vars: vs.clone(),
                rel: p.clone(),
            })
        })
        .collect();
    let Some(mut cur) = atoms[order[0]].take() else {
        return Err(EngineError::Unsupported(format!(
            "join order reuses atom {}",
            order[0]
        )));
    };

    let ready0 = take_ready_filters(&mut pending, &cur.vars);
    if !ready0.is_empty() {
        cur = cur.filter(&ready0);
    }

    for &ai in &order[1..] {
        let Some(next) = atoms[ai].take() else {
            return Err(EngineError::Unsupported(format!(
                "join order reuses atom {ai}"
            )));
        };
        let shared: Vec<VarId> = cur
            .vars
            .iter()
            .copied()
            .filter(|v| next.vars.contains(v))
            .collect();
        // Single-attribute hashing on the most recently bound shared
        // variable — identical to the local plan (see run_regular).
        let shuffle_key: Vec<VarId> = shared.last().copied().into_iter().collect();

        let cur_router = shuffle::regular_router_for(&cur.vars, &shuffle_key, frag.seed, workers);
        let cur_rx = ex.round(&cur.rel, cur.vars.len(), &cur_router)?;
        let next_router = shuffle::regular_router_for(&next.vars, &shuffle_key, frag.seed, workers);
        let next_rx = ex.round(&next.rel, next.vars.len(), &next_router)?;

        // Join schema, derived the same way the local path derives it.
        let out_schema = {
            let a = SchemaRel {
                vars: cur.vars.clone(),
                rel: Relation::new(cur.vars.len()),
            };
            let b = SchemaRel {
                vars: next.vars.clone(),
                rel: Relation::new(next.vars.len()),
            };
            hash_join(&a, &b, 0).vars
        };
        let ready = take_ready_filters(&mut pending, &out_schema);
        let a = SchemaRel {
            vars: cur.vars.clone(),
            rel: cur_rx,
        };
        let b = SchemaRel {
            vars: next.vars.clone(),
            rel: next_rx,
        };
        let (joined, sort_buf) = match frag.join {
            JoinAlg::Hash => {
                let (j, _morsels, _steals) =
                    probe::hash_join_parallel(&a, &b, frag.seed, frag.probe_threads as usize);
                (j, 0)
            }
            JoinAlg::Tributary => {
                let (j, buf, _sort_time) = merge_join(&a, &b, frag.seed);
                (j, buf)
            }
        };
        let filtered = if ready.is_empty() {
            joined
        } else {
            joined.filter(&ready)
        };
        // Same memory model as the local path: pipelined hash joins
        // keep the build side + output; blocking sort-merge joins
        // materialize both inputs and their sorted copies.
        let live = match frag.join {
            JoinAlg::Hash => a.rel.len().min(b.rel.len()) as u64 + filtered.rel.len() as u64,
            JoinAlg::Tributary => {
                a.rel.len() as u64 + b.rel.len() as u64 + sort_buf + filtered.rel.len() as u64
            }
        };
        check_budget(frag, live)?;
        cur = filtered;
    }
    if !pending.is_empty() {
        return Err(EngineError::InvalidPlan(
            pending
                .iter()
                .map(|f| {
                    parjoin_analyze::Diagnostic::error(
                        parjoin_analyze::DiagCode::FilterNeverApplied,
                        format!("filter {f:?} was never applied by the join order"),
                    )
                })
                .collect(),
        ));
    }
    Ok(cur)
}

/// The per-rank body of `plans::run_one_round`: one communication round
/// (broadcast or HyperCube), then the whole multiway join locally.
fn execute_one_round(frag: &Fragment, ex: &mut Exchanger<'_>) -> Result<SchemaRel, EngineError> {
    let workers = frag.workers as usize;
    let head = frag.query.output_vars();
    let num_vars = frag.query.num_vars();
    let local_order = &frag.local_order;
    if local_order.len() != frag.parts.len() {
        return Err(EngineError::Unsupported(
            "local order must cover every atom".to_string(),
        ));
    }
    let mut pending: Vec<Filter> = split_filters(&frag.query).1;

    // --- The single communication round. --------------------------------
    let locals: Vec<SchemaRel> = match frag.shuffle {
        ShuffleAlg::Broadcast => {
            // The coordinator rooted `local_order` at the partitioned
            // (largest) atom; reading it back avoids re-deriving the
            // argmax and guarantees agreement with the shipped order.
            let largest = local_order[0];
            let mut out = Vec::with_capacity(frag.parts.len());
            for (i, (vs, p)) in frag.atom_vars.iter().zip(&frag.parts).enumerate() {
                let rel = if i == largest {
                    p.clone() // stays partitioned, nothing sent
                } else {
                    let router = shuffle::broadcast_router(workers);
                    ex.round(p, vs.len(), &router)?
                };
                out.push(SchemaRel {
                    vars: vs.clone(),
                    rel,
                });
            }
            out
        }
        ShuffleAlg::HyperCube => {
            let Some(config) = frag.hc_config.as_ref() else {
                return Err(EngineError::Unsupported(
                    "HyperCube fragment carries no share configuration".to_string(),
                ));
            };
            if config.num_cells() > workers {
                return Err(EngineError::Unsupported(format!(
                    "configuration has {} cells but only {workers} workers",
                    config.num_cells()
                )));
            }
            let mut out = Vec::with_capacity(frag.parts.len());
            for (vs, p) in frag.atom_vars.iter().zip(&frag.parts) {
                let router = shuffle::hypercube_router_for(vs, config, frag.seed);
                let rel = ex.round(p, vs.len(), &router)?;
                out.push(SchemaRel {
                    vars: vs.clone(),
                    rel,
                });
            }
            out
        }
        ShuffleAlg::Regular => {
            return Err(EngineError::Unsupported(
                "regular-shuffle fragments run the multi-round path".to_string(),
            ))
        }
    };

    // --- The local multiway join. ----------------------------------------
    match frag.join {
        JoinAlg::Hash => {
            let mut cur = locals[local_order[0]].clone();
            let ready0 = take_ready_filters(&mut pending, &cur.vars);
            if !ready0.is_empty() {
                cur = cur.filter(&ready0);
            }
            let mut live: u64 = locals.iter().map(|l| l.rel.len() as u64).sum();
            for &ai in &local_order[1..] {
                let (joined, _m, _st) = probe::hash_join_parallel(
                    &cur,
                    &locals[ai],
                    frag.seed,
                    frag.probe_threads as usize,
                );
                let ready = take_ready_filters(&mut pending, &joined.vars);
                cur = if ready.is_empty() {
                    joined
                } else {
                    joined.filter(&ready)
                };
                live = live.max(
                    locals.iter().map(|l| l.rel.len() as u64).sum::<u64>() + cur.rel.len() as u64,
                );
            }
            check_budget(frag, live)?;
            Ok(cur.project(&head))
        }
        JoinAlg::Tributary => {
            let Some(order) = frag.tj_order.as_ref() else {
                return Err(EngineError::Unsupported(
                    "Tributary fragment carries no variable order".to_string(),
                ));
            };
            // Plain (uncached, sequential) prepare: byte-safe because
            // the Tributary sort key covers every atom column, so ties
            // are identical rows and any stable ordering agrees.
            let probed = match frag.trie_layout {
                TrieLayout::Row => {
                    let prepared: Vec<SortedAtom> = locals
                        .iter()
                        .map(|l| SortedAtom::prepare(&l.rel, &l.vars, order))
                        .collect();
                    let tj = Tributary::new(&prepared, order, &pending, num_vars);
                    probe::tributary_probe(&tj, &prepared, &head, frag.probe_threads as usize)
                }
                TrieLayout::Columnar => {
                    let prepared: Vec<ColumnarAtom> = locals
                        .iter()
                        .map(|l| ColumnarAtom::prepare(&l.rel, &l.vars, order))
                        .collect();
                    let tj = Tributary::new(&prepared, order, &pending, num_vars);
                    probe::tributary_probe(&tj, &prepared, &head, frag.probe_threads as usize)
                }
            };
            let live = locals.iter().map(|l| 2 * l.rel.len() as u64).sum::<u64>()
                + probed.rel.len() as u64;
            check_budget(frag, live)?;
            Ok(SchemaRel {
                vars: head,
                rel: probed.rel,
            })
        }
    }
}
