//! Distributed relations: a schema plus one partition per worker.

use parjoin_common::Relation;
use parjoin_query::VarId;

/// A horizontally partitioned relation whose columns are bound to query
/// variables.
#[derive(Debug, Clone)]
pub struct DistRel {
    /// One variable per column.
    pub vars: Vec<VarId>,
    /// One partition per worker.
    pub parts: Vec<Relation>,
}

impl DistRel {
    /// Partitions `rel` round-robin across `workers` workers — the
    /// paper's initial data placement ("all the input relations are
    /// horizontally partitioned across the 64 workers using round-robin
    /// partitioning", §3).
    pub fn round_robin(rel: &Relation, vars: Vec<VarId>, workers: usize) -> Self {
        assert_eq!(rel.arity(), vars.len(), "one variable per column");
        assert!(workers > 0);
        let mut parts: Vec<Relation> = (0..workers)
            .map(|_| Relation::with_capacity(rel.arity(), rel.len() / workers + 1))
            .collect();
        for (i, row) in rel.rows().enumerate() {
            parts[i % workers].push_row(row);
        }
        DistRel { vars, parts }
    }

    /// An empty distributed relation. The partition arity is exactly
    /// `vars.len()` — a nullary schema yields genuine arity-0
    /// partitions, which matter for boolean (empty-head) results whose
    /// only information is the bag row count.
    pub fn empty(vars: Vec<VarId>, workers: usize) -> Self {
        let arity = vars.len();
        DistRel {
            vars,
            parts: (0..workers).map(|_| Relation::new(arity)).collect(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.parts.len()
    }

    /// Total tuples across partitions.
    pub fn total_len(&self) -> u64 {
        self.parts.iter().map(|p| p.len() as u64).sum()
    }

    /// Per-partition tuple counts.
    pub fn part_lens(&self) -> Vec<u64> {
        self.parts.iter().map(|p| p.len() as u64).collect()
    }

    /// Column index of variable `v`.
    ///
    /// # Panics
    /// Panics if `v` is not in the schema.
    pub fn col_of(&self, v: VarId) -> usize {
        self.vars
            .iter()
            .position(|&x| x == v)
            .unwrap_or_else(|| panic!("variable #{} not in schema", v.0)) // xtask: allow(panic)
    }

    /// Gathers all partitions into one relation (coordinator collect).
    pub fn gather(&self) -> Relation {
        let arity = self.parts.first().map_or(self.vars.len(), |p| p.arity());
        let mut out = Relation::with_capacity(arity, self.total_len() as usize);
        for p in &self.parts {
            out.extend_from(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn round_robin_balances() {
        let rel = Relation::from_rows(2, (0..10u64).map(|i| [i, i]).collect::<Vec<_>>().iter());
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 3);
        assert_eq!(d.part_lens(), vec![4, 3, 3]);
        assert_eq!(d.total_len(), 10);
    }

    #[test]
    fn gather_roundtrips_multiset() {
        let rel = Relation::from_rows(2, (0..7u64).map(|i| [i, i + 1]).collect::<Vec<_>>().iter());
        let d = DistRel::round_robin(&rel, vec![v(0), v(1)], 4);
        let g = d.gather().distinct();
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn col_lookup() {
        let rel = Relation::from_rows(2, [[1u64, 2]].iter());
        let d = DistRel::round_robin(&rel, vec![v(5), v(9)], 2);
        assert_eq!(d.col_of(v(9)), 1);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn missing_col_panics() {
        let rel = Relation::from_rows(1, [[1u64]].iter());
        DistRel::round_robin(&rel, vec![v(0)], 1).col_of(v(3));
    }

    #[test]
    fn empty_dist() {
        let d = DistRel::empty(vec![v(0)], 4);
        assert_eq!(d.workers(), 4);
        assert_eq!(d.total_len(), 0);
    }

    #[test]
    fn nullary_empty_keeps_arity_zero() {
        // Regression: `empty` used to promote zero-column schemas to
        // arity 1, so a boolean result gathered as one-column garbage.
        let d = DistRel::empty(vec![], 3);
        assert!(d.parts.iter().all(|p| p.arity() == 0));
        assert_eq!(d.gather().arity(), 0);
    }

    #[test]
    fn nullary_round_trips_with_multiplicity() {
        let mut d = DistRel::empty(vec![], 2);
        d.parts[0].push_nullary_rows(3);
        d.parts[1].push_nullary_rows(2);
        let g = d.gather();
        assert_eq!(g.arity(), 0);
        assert_eq!(g.len(), 5);
    }
}
