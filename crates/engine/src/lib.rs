#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-engine
//!
//! An in-process simulator of the shared-nothing parallel DBMS the paper
//! runs on (Myria, 64 workers over 16 machines): relations are
//! horizontally partitioned across `p` workers, shuffles move tuples
//! between partitions while tallying exactly the metrics the paper
//! reports (tuples sent, producer/consumer skew), and local joins run as
//! real computations whose per-worker busy times yield the simulated
//! wall-clock (the slowest worker — stragglers are physical here, not
//! modeled) and total CPU time.
//!
//! The six shuffle×join configurations of §3 are provided by
//! [`plans::run_config`]:
//!
//! | name | shuffle | local join |
//! |------|---------|-----------|
//! | `RS_HJ` | regular (per join step) | binary hash join |
//! | `RS_TJ` | regular (per join step) | binary sort-merge join |
//! | `BR_HJ` | broadcast | left-deep hash-join tree |
//! | `BR_TJ` | broadcast | Tributary join |
//! | `HC_HJ` | HyperCube | left-deep hash-join tree |
//! | `HC_TJ` | HyperCube | Tributary join |
//!
//! plus the distributed semijoin (GYM) plans of §3.6 in [`semijoin`].
//!
//! Every plan is vetted by the static analyzer (`parjoin-analyze`)
//! before execution: malformed plans come back as
//! [`EngineError::InvalidPlan`] with typed [`Diagnostic`]s instead of
//! panicking mid-flight, and analyzer warnings ride along on
//! [`RunResult::diagnostics`]. The `strict-invariants` cargo feature
//! additionally cross-checks the analyzer's guarantees at runtime
//! (post-shuffle co-location of sampled tuples, sortedness of Tributary
//! inputs).
//!
//! Shuffles execute on the `parjoin-runtime` worker-actor runtime.
//! [`Cluster::with_transport`] selects how tuples move:
//! [`TransportKind::Local`] (default) replays the original sequential
//! in-memory loop, [`TransportKind::InProcess`] streams encoded batches
//! over bounded channels between worker threads, and
//! [`TransportKind::Tcp`] (behind the `transport-tcp` feature) frames
//! them over loopback sockets. Results are byte-identical across
//! transports; the streaming ones add real `bytes_sent`/`bytes_received`
//! to every [`ShuffleStats`](parjoin_common::ShuffleStats).

pub mod advisor;
mod cache;
pub mod cluster;
pub mod dist;
pub mod error;
pub mod exec;
pub mod fragment;
pub mod local;
pub mod plans;
pub mod prepare;
pub mod probe;
#[cfg(feature = "transport-tcp")]
pub mod remote;
pub mod semijoin;
pub mod shuffle;
pub mod sortcache;
#[cfg(feature = "strict-invariants")]
mod strict;
pub mod triecache;

pub use advisor::{advise, Advice};
pub use cluster::Cluster;
pub use dist::DistRel;
pub use error::EngineError;
pub use fragment::{plan_fragments, Fragment};
pub use parjoin_analyze::{DiagCode, Diagnostic, Severity};
pub use parjoin_obs as obs;
pub use parjoin_runtime::TransportKind;
pub use plans::{
    metric_names, run_config, JoinAlg, PlanOptions, PrepProbe, RunResult, ShuffleAlg, TrieLayout,
};
pub use probe::MorselSched;
#[cfg(feature = "transport-tcp")]
pub use remote::{execute_fragment, RemoteOutcome};
pub use sortcache::SortCache;
pub use triecache::TrieCache;
