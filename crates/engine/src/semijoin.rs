//! Distributed semijoin reduction (paper §3.6, following GYM \[4\]).
//!
//! For acyclic queries, Yannakakis' algorithm removes all dangling tuples
//! with one bottom-up and one top-down pass of semijoins along a join
//! tree, then joins the reduced relations. Every relation here is
//! distributed, so each semijoin `R ⋉ S` costs *two* shuffles: the
//! deduplicated projection `S_A` of `S` onto the shared attributes, and
//! `R` itself — which is precisely why the paper found semijoins
//! unprofitable on its workload ("the cost of the semijoin is higher"
//! than in the classical two-site setting).
//!
//! Steps (paper's Q7 walkthrough):
//! 1. bottom-up: replace each parent `P` by `P ⋉ child`, children first;
//! 2. top-down: replace each child `C` by `C ⋉ parent`, root first;
//! 3. final join of the reduced relations with a regular-shuffle plan.

use crate::cluster::Cluster;
use crate::dist::DistRel;
use crate::error::EngineError;
use crate::exec::run_phase_traced;
use crate::local::SchemaRel;
use crate::plans::{run_config_with_obs, JoinAlg, PlanOptions, RunObs, RunResult, ShuffleAlg};
use crate::probe;
use crate::shuffle;
use parjoin_common::Database;
use parjoin_query::hypergraph::gyo_join_tree;
use parjoin_query::{resolve_atoms, ConjunctiveQuery, VarId};

/// Extra metrics for the semijoin phase, alongside the final-join run.
#[derive(Debug, Clone)]
pub struct SemijoinResult {
    /// The complete run (semijoin shuffles + final join) — `tuples_shuffled`
    /// includes everything.
    pub run: RunResult,
    /// Tuples shuffled for the deduplicated key projections only (the
    /// paper reports these separately: "2.29 million tuples from the
    /// projected tables").
    pub projected_tuples_shuffled: u64,
    /// Tuples shuffled for the reduced input relations during semijoins.
    pub input_tuples_shuffled: u64,
    /// Per-atom tuple counts after full reduction.
    pub reduced_cards: Vec<u64>,
}

/// One distributed semijoin step: reduce `target` by `reducer` on their
/// shared variables. Returns the reduced relation, the two shuffle stats
/// (projection, input), and the probe morsels and steals executed across
/// workers (the local semijoin filter runs morsel-parallel with work
/// stealing; see [`crate::probe`]).
fn distributed_semijoin(
    target: &DistRel,
    reducer: &DistRel,
    cluster: &Cluster,
    label: &str,
    probe_threads: usize,
    obs: &RunObs,
) -> (
    DistRel,
    parjoin_common::ShuffleStats,
    parjoin_common::ShuffleStats,
    u64,
    u64,
) {
    let shared: Vec<VarId> = target
        .vars
        .iter()
        .copied()
        .filter(|v| reducer.vars.contains(v))
        .collect();

    // Local preprocessing: project the reducer onto the shared variables
    // and deduplicate locally (free: no network).
    let cols: Vec<usize> = shared.iter().map(|&v| reducer.col_of(v)).collect();
    let projected = DistRel {
        vars: shared.clone(),
        parts: reducer
            .parts
            .iter()
            .map(|p| p.project(&cols).distinct())
            .collect(),
    };

    // Shuffle both on the shared variables.
    let (proj_s, stats_proj) =
        shuffle::regular(&projected, &shared, format!("{label}: keys"), cluster.seed);
    let (tgt_s, stats_tgt) =
        shuffle::regular(target, &shared, format!("{label}: input"), cluster.seed);

    // Local semijoin (morsel-parallel over the target's rows).
    let seed = cluster.seed;
    let phase = run_phase_traced(cluster.workers, &obs.trace, "semijoin", |w, _lane| {
        let t = SchemaRel {
            vars: tgt_s.vars.clone(),
            rel: tgt_s.parts[w].clone(),
        };
        let r = SchemaRel {
            vars: proj_s.vars.clone(),
            rel: proj_s.parts[w].clone(),
        };
        let (reduced, morsels, steals) = probe::semijoin_parallel(&t, &r, seed, probe_threads);
        (reduced.rel, morsels, steals)
    });
    let mut parts = Vec::with_capacity(cluster.workers);
    let mut morsels = 0u64;
    let mut steals = 0u64;
    for (rel, m, st) in phase.results {
        parts.push(rel);
        morsels += m;
        steals += st;
    }
    let reduced = DistRel {
        vars: target.vars.clone(),
        parts,
    };
    (reduced, stats_proj, stats_tgt, morsels, steals)
}

/// Runs the full semijoin plan on an acyclic query.
///
/// # Errors
/// [`EngineError::Unsupported`] if the query is cyclic (no full semijoin
/// reduction exists, §3.6), plus the usual resolve/budget errors from the
/// final join.
pub fn run_semijoin_plan(
    query: &ConjunctiveQuery,
    db: &Database,
    cluster: &Cluster,
    opts: &PlanOptions,
) -> Result<SemijoinResult, EngineError> {
    let tree = gyo_join_tree(query).ok_or_else(|| {
        EngineError::Unsupported(format!(
            "query `{}` is cyclic; semijoin reduction does not terminate",
            query.name
        ))
    })?;
    let (resolved, _residual) = resolve_atoms(query, db)?;

    let mut dists: Vec<DistRel> = resolved
        .iter()
        .map(|a| DistRel::round_robin(&a.rel, a.vars.clone(), cluster.workers))
        .collect();

    let mut sj_shuffles = Vec::new();
    let mut projected_tuples = 0u64;
    let mut input_tuples = 0u64;
    let mut sj_morsels = 0u64;
    let mut sj_steals = 0u64;
    let probe_threads = opts.effective_probe_threads(cluster.workers);
    // One registry and one trace span the whole plan — reduction passes
    // and final join — so the exported metrics and chrome trace cover the
    // semijoin work too (the final join's legacy counters are folded into
    // `run` below, and we finalize after that fold).
    let obs = RunObs::new(opts.trace_path.is_some());

    // Bottom-up: children reduce parents.
    for &a in &tree.bottom_up {
        if let Some(p) = tree.parent[a] {
            let (reduced, sp, st, morsels, steals) = distributed_semijoin(
                &dists[p].clone(),
                &dists[a],
                cluster,
                &format!("{} ⋉ {}", query.atoms[p].relation, query.atoms[a].relation),
                probe_threads,
                &obs,
            );
            projected_tuples += sp.tuples_sent;
            input_tuples += st.tuples_sent;
            sj_morsels += morsels;
            sj_steals += steals;
            sj_shuffles.push(sp);
            sj_shuffles.push(st);
            dists[p] = reduced;
        }
    }
    // Top-down: parents reduce children.
    for &a in &tree.top_down() {
        for c in tree.children(a) {
            let (reduced, sp, st, morsels, steals) = distributed_semijoin(
                &dists[c].clone(),
                &dists[a],
                cluster,
                &format!("{} ⋉ {}", query.atoms[c].relation, query.atoms[a].relation),
                probe_threads,
                &obs,
            );
            projected_tuples += sp.tuples_sent;
            input_tuples += st.tuples_sent;
            sj_morsels += morsels;
            sj_steals += steals;
            sj_shuffles.push(sp);
            sj_shuffles.push(st);
            dists[c] = reduced;
        }
    }
    // Final join: run the RS_HJ plan over a database of reduced relations.
    // Atom names must be unique in the temporary catalog (self-joins reuse
    // a base name but may now have different reductions).
    let mut reduced_db = Database::new();
    let mut final_query = query.clone();
    for (i, d) in dists.iter().enumerate() {
        let name = format!("__reduced_{i}_{}", query.atoms[i].relation);
        reduced_db.insert(name.clone(), d.gather());
        final_query.atoms[i].relation = name;
        // The reduced relations are variables-only (selections applied
        // during resolve); rewrite terms accordingly.
        final_query.atoms[i].terms = d
            .vars
            .iter()
            .map(|&v| parjoin_query::Term::Var(v))
            .collect();
    }
    // Single-variable filters were already applied during the original
    // resolve; drop them to avoid double application (harmless but noisy).
    let reduced_cards: Vec<u64> = dists.iter().map(|d| d.total_len()).collect();
    // Let run_config pick its fanout-aware greedy order over the reduced
    // relations.
    let final_opts = opts.clone();
    let mut run = run_config_with_obs(
        &final_query,
        &reduced_db,
        cluster,
        ShuffleAlg::Regular,
        JoinAlg::Hash,
        &final_opts,
        &obs,
    )?;

    // Fold the semijoin shuffles into the run's totals; every semijoin
    // step is one extra communication round (two parallel shuffles) and
    // its send/receive volume is charged per tuple like any other phase.
    let sj_rounds = (sj_shuffles.len() / 2) as u32;
    run.rounds += sj_rounds;
    run.wall += cluster.round_latency * sj_rounds;
    for pair in sj_shuffles.chunks(2) {
        let refs: Vec<&parjoin_common::ShuffleStats> = pair.iter().collect();
        run.absorb_network(&refs, cluster.shuffle_tuple_cost);
    }
    for s in sj_shuffles.into_iter().rev() {
        run.tuples_shuffled += s.tuples_sent;
        run.shuffles.insert(0, s);
    }
    run.probe_morsels += sj_morsels;
    run.probe_steals += sj_steals;
    run.config = "SJ_HJ".into();
    // Finalize only now, with the semijoin shuffles and morsels folded
    // in, so the metric mirrors match the folded totals exactly.
    obs.finalize(&mut run);
    obs.write_trace(opts.trace_path.as_deref())?;

    Ok(SemijoinResult {
        run,
        projected_tuples_shuffled: projected_tuples,
        input_tuples_shuffled: input_tuples,
        reduced_cards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plans::run_config;
    use parjoin_common::Relation;
    use parjoin_query::QueryBuilder;

    fn path_query() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("P");
        let (x, y, z, w) = (b.var("x"), b.var("y"), b.var("z"), b.var("w"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, w]);
        b.build()
    }

    fn path_db() -> Database {
        let mut db = Database::new();
        // R has dangling tuples (y values 100+ never join S).
        let r = Relation::from_rows(
            2,
            (0..20u64)
                .map(|i| [i, if i < 10 { i } else { i + 100 }])
                .collect::<Vec<_>>()
                .iter(),
        );
        let s = Relation::from_rows(2, (0..10u64).map(|i| [i, i * 2]).collect::<Vec<_>>().iter());
        let t = Relation::from_rows(2, (0..20u64).map(|i| [i, i]).collect::<Vec<_>>().iter());
        db.insert("R", r);
        db.insert("S", s);
        db.insert("T", t);
        db
    }

    #[test]
    fn semijoin_matches_regular_plan() {
        let q = path_query();
        let db = path_db();
        let cluster = Cluster::new(4).with_seed(3);
        let opts = PlanOptions {
            collect_output: true,
            ..Default::default()
        };
        let sj = run_semijoin_plan(&q, &db, &cluster, &opts).expect("acyclic");
        let rs =
            run_config(&q, &db, &cluster, ShuffleAlg::Regular, JoinAlg::Hash, &opts).expect("plan");
        let mut a: Vec<Vec<u64>> = sj.run.output.unwrap().rows().map(|r| r.to_vec()).collect();
        let mut b: Vec<Vec<u64>> = rs.output.unwrap().rows().map(|r| r.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn reduction_removes_dangling_tuples() {
        let q = path_query();
        let db = path_db();
        let cluster = Cluster::new(4);
        let sj = run_semijoin_plan(&q, &db, &cluster, &PlanOptions::default()).unwrap();
        // R had 20 tuples, 10 of which dangle.
        assert_eq!(sj.reduced_cards[0], 10);
        // T keeps only z values reachable as 2·y for y<10 and y=x<20 …
        assert!(sj.reduced_cards[2] <= 10);
        assert!(sj.projected_tuples_shuffled > 0);
        assert!(sj.input_tuples_shuffled > 0);
    }

    #[test]
    fn cyclic_query_rejected() {
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        let q = b.build();
        let db = path_db();
        let err =
            run_semijoin_plan(&q, &db, &Cluster::new(2), &PlanOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn shuffle_accounting_includes_semijoins() {
        let q = path_query();
        let db = path_db();
        let cluster = Cluster::new(4);
        let sj = run_semijoin_plan(&q, &db, &cluster, &PlanOptions::default()).unwrap();
        assert_eq!(
            sj.run.tuples_shuffled,
            sj.run.shuffles.iter().map(|s| s.tuples_sent).sum::<u64>()
        );
        assert!(sj.run.tuples_shuffled >= sj.projected_tuples_shuffled + sj.input_tuples_shuffled);
    }
}
