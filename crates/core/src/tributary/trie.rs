//! Trie iteration over a lexicographically sorted relation.
//!
//! A sorted relation *is* a trie: the distinct values of column 0 are the
//! children of the root; within the run of rows sharing a column-0 value,
//! the distinct values of column 1 are that node's children; and so on.
//! The iterator maintains, per depth, the row range of the current parent
//! node and a cursor to the first row of the current value's run.
//!
//! Navigation uses *galloping* (exponential) search from the current
//! cursor position: a doubling probe brackets the target, then a binary
//! search inside the bracket pins it down. A seek that moves the cursor
//! `m` rows forward therefore costs `O(log m)` — amortized over a full
//! leapfrog pass this yields the `O(n log(N/n))` intersection bound of
//! the paper's LFTJ-API discussion, instead of `O(n log N)` for
//! full-range binary search. In addition, the end of the current value
//! run (`run_end`) is memoized per level, because both `open()` and
//! `next_key()` need it for the same run and would otherwise re-search.

use parjoin_common::{Relation, Value};

/// The Leapfrog-Triejoin cursor API (Veldhuizen \[33\]): positional
/// navigation over a relation viewed as a trie whose level `d` holds the
/// distinct values of attribute `d` within the current prefix.
///
/// Implemented by [`TrieIter`] over sorted arrays (the paper's Tributary
/// join) and by
/// [`BTreeAtom`](crate::tributary::BTreeAtom)'s cursor over nested
/// ordered maps (LogicBlox's original representation), so the two can be
/// compared head-to-head.
pub trait TrieCursor {
    /// Descends into the children of the current value (or opens the
    /// first level from the root).
    fn open(&mut self);
    /// Returns to the parent level, restoring its cursor.
    fn up(&mut self);
    /// Advances to the next distinct value at the current level.
    fn next_key(&mut self);
    /// Positions at the least value `≥ v` at the current level.
    fn seek(&mut self, v: Value);
    /// The value under the cursor.
    fn key(&self) -> Value;
    /// True when the current level is exhausted.
    fn at_end(&self) -> bool;
}

/// A positional iterator over the trie view of a sorted relation.
#[derive(Debug)]
pub struct TrieIter<'a> {
    rel: &'a Relation,
    /// Current depth; `usize::MAX` encodes "at root, no column open".
    depth: usize,
    /// `range[d]` = row bounds of the parent group at depth `d`.
    range: Vec<(usize, usize)>,
    /// `pos[d]` = first row of the current value's run at depth `d`.
    pos: Vec<usize>,
    /// Memoized `run_end`: `run_cache[d] = (pos, end)` records that the
    /// run starting at row `pos` on level `d` ends at row `end`. A cursor
    /// never revisits a row at a level with a different parent range (row
    /// ranges of distinct parent prefixes are disjoint), so keying by
    /// `pos` alone is sound. `NO_RUN` marks an empty slot.
    run_cache: Vec<(usize, usize)>,
}

const ROOT: usize = usize::MAX;
/// Sentinel `pos` for an unfilled [`TrieIter::run_cache`] slot.
const NO_RUN: usize = usize::MAX;

impl<'a> TrieIter<'a> {
    /// Creates an iterator at the root of `rel`'s trie.
    ///
    /// # Panics
    /// Panics (debug) if the relation is not lexicographically sorted.
    pub fn new(rel: &'a Relation) -> Self {
        debug_assert!(rel.is_sorted_lex(), "TrieIter requires sorted input");
        let a = rel.arity();
        TrieIter {
            rel,
            depth: ROOT,
            range: vec![(0, 0); a],
            pos: vec![0; a],
            run_cache: vec![(NO_RUN, 0); a],
        }
    }

    /// Current depth (0-based column), or `None` at the root.
    pub fn depth(&self) -> Option<usize> {
        (self.depth != ROOT).then_some(self.depth)
    }

    /// True when the cursor has exhausted the current level.
    #[inline]
    pub fn at_end(&self) -> bool {
        debug_assert_ne!(self.depth, ROOT, "at_end at root");
        self.pos[self.depth] >= self.range[self.depth].1
    }

    /// The value under the cursor.
    ///
    /// # Panics
    /// Panics (debug) if at end or at root.
    #[inline]
    pub fn key(&self) -> Value {
        debug_assert!(!self.at_end(), "key() at end");
        self.rel.value(self.pos[self.depth], self.depth)
    }

    /// Descends into the children of the current value (or, from the root,
    /// opens column 0 over the whole relation). The cursor lands on the
    /// first child value; the level may be empty only for an empty
    /// relation at the root.
    pub fn open(&mut self) {
        if self.depth == ROOT {
            self.depth = 0;
            self.range[0] = (0, self.rel.len());
            self.pos[0] = 0;
        } else {
            let d = self.depth;
            debug_assert!(!self.at_end(), "open() at end");
            let child = (self.pos[d], self.run_end(d));
            self.depth = d + 1;
            debug_assert!(self.depth < self.rel.arity(), "open() past last column");
            self.range[self.depth] = child;
            self.pos[self.depth] = child.0;
        }
    }

    /// Returns to the parent level, restoring its cursor.
    pub fn up(&mut self) {
        debug_assert_ne!(self.depth, ROOT, "up() at root");
        self.depth = if self.depth == 0 {
            ROOT
        } else {
            self.depth - 1
        };
    }

    /// Advances to the next distinct value at the current level.
    pub fn next_key(&mut self) {
        debug_assert!(!self.at_end(), "next_key() at end");
        let d = self.depth;
        self.pos[d] = self.run_end(d);
    }

    /// Positions the cursor at the least value `≥ v` at the current level
    /// (no-op when already there); may hit the end.
    pub fn seek(&mut self, v: Value) {
        debug_assert!(!self.at_end(), "seek() at end");
        let d = self.depth;
        if self.key() >= v {
            return;
        }
        let (lo, hi) = (self.pos[d], self.range[d].1);
        self.pos[d] = lo + self.partition(lo, hi, d, v);
    }

    /// First row index within `(pos, range.1)` whose column-`d` value
    /// exceeds the current key — i.e. the end of the current run.
    ///
    /// Memoized per level: `open()` and `next_key()` both need the end of
    /// the same run, so the second lookup is a cache hit.
    fn run_end(&mut self, d: usize) -> usize {
        let (lo, hi) = (self.pos[d], self.range[d].1);
        if self.run_cache[d].0 == lo {
            return self.run_cache[d].1;
        }
        let cur = self.key();
        let end = match cur.checked_add(1) {
            Some(next) => lo + self.partition(lo, hi, d, next),
            // Value is u64::MAX: the run necessarily extends to the end.
            None => hi,
        };
        self.run_cache[d] = (lo, end);
        end
    }

    /// Galloping search: number of rows in `[lo, hi)` with column-`d`
    /// value `< v`. A doubling probe from `lo` brackets the first row
    /// `≥ v`, then a binary search inside the bracket pins it down —
    /// `O(log m)` for an answer `m` rows past `lo`.
    fn partition(&self, lo: usize, hi: usize, d: usize, v: Value) -> usize {
        // Gallop to bracket the answer, then binary search.
        let mut step = 1usize;
        let mut cur = lo;
        while cur < hi && self.rel.value(cur, d) < v {
            cur = cur.saturating_add(step).min(hi);
            step <<= 1;
        }
        let search_lo = if cur == lo {
            lo
        } else {
            cur - (step >> 1).min(cur - lo)
        };
        let mut a = search_lo;
        let mut b = cur;
        while a < b {
            let mid = a + (b - a) / 2;
            if self.rel.value(mid, d) < v {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        a - lo
    }
}

impl TrieCursor for TrieIter<'_> {
    #[inline]
    fn open(&mut self) {
        TrieIter::open(self);
    }
    #[inline]
    fn up(&mut self) {
        TrieIter::up(self);
    }
    #[inline]
    fn next_key(&mut self) {
        TrieIter::next_key(self);
    }
    #[inline]
    fn seek(&mut self, v: Value) {
        TrieIter::seek(self, v);
    }
    #[inline]
    fn key(&self) -> Value {
        TrieIter::key(self)
    }
    #[inline]
    fn at_end(&self) -> bool {
        TrieIter::at_end(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The relation of the paper's Figure 2 (column pair from `R`).
    fn figure2_r() -> Relation {
        Relation::from_rows(
            2,
            [[0u64, 1], [2, 0], [2, 3], [2, 5], [3, 4], [4, 2], [5, 6]].iter(),
        )
    }

    fn keys_at_level(it: &mut TrieIter<'_>) -> Vec<u64> {
        let mut out = Vec::new();
        while !it.at_end() {
            out.push(it.key());
            it.next_key();
        }
        out
    }

    #[test]
    fn level0_distinct_values() {
        let r = figure2_r();
        let mut it = TrieIter::new(&r);
        it.open();
        assert_eq!(keys_at_level(&mut it), vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn open_descends_into_run() {
        let r = figure2_r();
        let mut it = TrieIter::new(&r);
        it.open();
        it.seek(2);
        assert_eq!(it.key(), 2);
        it.open();
        assert_eq!(keys_at_level(&mut it), vec![0, 3, 5]);
        it.up();
        assert_eq!(it.key(), 2);
        it.next_key();
        assert_eq!(it.key(), 3);
    }

    #[test]
    fn seek_lands_on_least_geq() {
        let r = figure2_r();
        let mut it = TrieIter::new(&r);
        it.open();
        it.seek(1);
        assert_eq!(it.key(), 2);
        it.seek(2); // no-op
        assert_eq!(it.key(), 2);
        it.seek(6);
        assert!(it.at_end());
    }

    #[test]
    fn seek_to_exact_value() {
        let r = figure2_r();
        let mut it = TrieIter::new(&r);
        it.open();
        it.seek(4);
        assert_eq!(it.key(), 4);
    }

    #[test]
    fn empty_relation_open() {
        let r = Relation::new(2);
        let mut it = TrieIter::new(&r);
        it.open();
        assert!(it.at_end());
    }

    #[test]
    fn up_restores_parent_cursor() {
        let r = figure2_r();
        let mut it = TrieIter::new(&r);
        it.open();
        it.seek(2);
        it.open();
        it.seek(5);
        assert_eq!(it.key(), 5);
        it.up();
        assert_eq!(it.key(), 2);
        // Re-descend: child level starts at its first value again.
        it.open();
        assert_eq!(it.key(), 0);
    }

    #[test]
    fn depth_tracking() {
        let r = figure2_r();
        let mut it = TrieIter::new(&r);
        assert_eq!(it.depth(), None);
        it.open();
        assert_eq!(it.depth(), Some(0));
        it.open();
        assert_eq!(it.depth(), Some(1));
        it.up();
        it.up();
        assert_eq!(it.depth(), None);
    }

    #[test]
    fn duplicate_heavy_runs() {
        let r = Relation::from_rows(2, [[1u64, 1]; 10].iter().chain([[2u64, 9]; 3].iter()));
        let mut r2 = r.clone();
        r2.sort_lex();
        let mut it = TrieIter::new(&r2);
        it.open();
        assert_eq!(keys_at_level(&mut it), vec![1, 2]);
    }

    #[test]
    fn gallop_long_jump() {
        // 10k rows; seek far ahead must land exactly.
        let rows: Vec<[u64; 1]> = (0..10_000u64).map(|i| [i * 2]).collect();
        let r = Relation::from_rows(1, rows.iter());
        let mut it = TrieIter::new(&r);
        it.open();
        it.seek(9999);
        assert_eq!(it.key(), 10_000); // least even ≥ 9999
        it.seek(19_998);
        assert_eq!(it.key(), 19_998);
        it.next_key();
        assert!(it.at_end());
    }
}
