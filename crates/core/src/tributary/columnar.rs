//! Columnar level-segmented trie — the cache-conscious LFTJ layout.
//!
//! [`TrieIter`](super::TrieIter) walks a *row-major* sorted relation, so
//! every seek at depth `d` strides `arity`-wide rows through memory and
//! every `open`/`next_key` re-searches the end of the current duplicate
//! run. HoneyComb-style multicore WCOJ engines instead materialize the
//! trie *by level*: one contiguous, deduplicated key array per depth plus
//! a CSR-style child-offset array linking each node to its children's
//! range in the next level. The payoff is threefold:
//!
//! * **Contiguity** — a seek at depth `d` scans only `keys[d]`, a dense
//!   `u64` array, instead of touching one value per `arity`-wide row;
//! * **No run-end searches** — duplicates were merged at build time, so
//!   `next_key` is `pos += 1` and `open` is two offset loads;
//! * **Branch-free chunked galloping** — [`lower_bound_gallop`] brackets
//!   with a doubling probe, narrows with branch-free halving, and
//!   finishes with a fixed-width compare-and-count block the
//!   autovectorizer can lift to SIMD (the workspace forbids `unsafe`,
//!   so there are no intrinsics — the shape of the loop is the whole
//!   trick).
//!
//! The trie is built in **one pass** over the already-sorted view: each
//! row contributes new nodes only from its first level of disagreement
//! with the previous row, exactly the classic sorted-array-to-trie scan.
//! [`ColumnarCursor`] implements the same [`TrieCursor`] contract as the
//! row layout, so [`Tributary`](super::Tributary) runs unchanged on
//! either.

use super::join::{order_columns, TrieAtom};
use super::trie::TrieCursor;
use parjoin_common::{Relation, Value};
use parjoin_query::VarId;
use std::sync::Arc;

/// Fixed width of the final compare-and-count block of
/// [`lower_bound_gallop`]. Small enough to bound the scalar worst case,
/// wide enough that the count loop compiles to a handful of vector
/// compares on any SIMD width the target offers.
const GALLOP_CHUNK: usize = 32;

/// First index `i >= start` with `xs[i] >= v`, or `xs.len()` when every
/// key from `start` on is below `v`. `xs[start..]` must be sorted
/// ascending (trie key arrays are strictly increasing within a parent
/// range, which is the only slice cursors hand in).
///
/// Three phases, none of which branches on data in its inner loop:
///
/// 1. *gallop* — a doubling probe from `start` brackets the answer in
///    `O(log m)` for an answer `m` keys ahead;
/// 2. *branch-free halving* — the bracket shrinks by conditional-move
///    style arithmetic (`lo += (key < v) as usize * half`), no
///    hard-to-predict compare-and-jump;
/// 3. *chunk count* — once the bracket fits [`GALLOP_CHUNK`], the answer
///    is `lo` plus the number of keys `< v` in the window, a
///    fixed-shape compare-and-sum the autovectorizer turns into SIMD.
#[inline]
pub fn lower_bound_gallop(xs: &[Value], start: usize, v: Value) -> usize {
    let n = xs.len();
    if start >= n || xs[start] >= v {
        return start.min(n);
    }
    // Gallop: maintain xs[lo] < v, double the step until the probe lands
    // on a key >= v (or runs off the end).
    let mut step = 1usize;
    let mut lo = start;
    let mut cur = start + 1;
    while cur < n && xs[cur] < v {
        lo = cur;
        cur = cur.saturating_add(step).min(n);
        step <<= 1;
    }
    // Answer is in (lo, cur]: xs[lo] < v, and xs[cur] >= v or cur == n.
    let mut base = lo + 1;
    let mut len = cur - base;
    // Branch-free halving. Invariant: answer in [base, base + len].
    // If xs[base+half-1] < v the answer is >= base + half; otherwise it
    // is <= base + half - 1 <= base + (len - half) since 2*half <= len+1.
    while len > GALLOP_CHUNK {
        let half = len / 2;
        base += usize::from(xs[base + half - 1] < v) * half;
        len -= half;
    }
    // Fixed-width compare-and-count: keys below the answer are < v, keys
    // at or after it are >= v, so the count of keys < v in the window is
    // exactly the answer's offset from `base`.
    base + xs[base..base + len]
        .iter()
        .map(|&k| usize::from(k < v))
        .sum::<usize>()
}

/// A relation materialized as a level-segmented columnar trie.
///
/// Level `d` holds the deduplicated keys of trie depth `d` in
/// `keys[d]`, ordered by the (parent-path, key) lexicographic order of
/// the source relation. For `d < arity - 1`, node `i` of level `d` owns
/// children `keys[d + 1][offsets[d][i] .. offsets[d][i + 1]]` — CSR
/// adjacency, one `u32` per node plus a trailing sentinel.
#[derive(Debug, Clone)]
pub struct ColumnarTrie {
    arity: usize,
    /// Distinct rows ingested (the leaf count); what parallelism
    /// thresholds should compare against, since duplicate source rows
    /// merge at build time.
    rows: usize,
    keys: Vec<Vec<Value>>,
    offsets: Vec<Vec<u32>>,
}

impl ColumnarTrie {
    /// Builds the trie in one pass over `rel`, which must be
    /// lexicographically sorted (duplicate rows merge into one leaf).
    ///
    /// # Panics
    /// Panics if `rel` holds `u32::MAX` or more rows (offsets are `u32`
    /// by design — half the adjacency footprint of `usize`), or (debug)
    /// if `rel` is not sorted.
    pub fn build(rel: &Relation) -> ColumnarTrie {
        debug_assert!(rel.is_sorted_lex(), "ColumnarTrie requires sorted input");
        let a = rel.arity();
        assert!(
            (rel.len() as u64) < u64::from(u32::MAX),
            "ColumnarTrie offsets are u32; relation of {} rows is too large",
            rel.len()
        );
        let mut keys: Vec<Vec<Value>> = vec![Vec::new(); a];
        let mut offsets: Vec<Vec<u32>> = vec![Vec::new(); a.saturating_sub(1)];
        if a == 0 {
            return ColumnarTrie {
                arity: 0,
                rows: 0,
                keys,
                offsets,
            };
        }
        let mut rows = 0usize;
        for i in 0..rel.len() {
            // First level where this row leaves the previous row's path;
            // everything above it is shared and already materialized.
            let mut start = if i == 0 { 0 } else { a };
            if i > 0 {
                for d in 0..a {
                    if rel.value(i, d) != rel.value(i - 1, d) {
                        start = d;
                        break;
                    }
                }
            }
            if start == a {
                continue; // exact duplicate row
            }
            rows += 1;
            for d in start..a {
                if d + 1 < a {
                    // The new node's children begin where level d+1
                    // currently ends; they are appended right after.
                    offsets[d].push(keys[d + 1].len() as u32);
                }
                keys[d].push(rel.value(i, d));
            }
        }
        // Trailing sentinels close the last node's child range per level.
        for d in 0..a.saturating_sub(1) {
            offsets[d].push(keys[d + 1].len() as u32);
        }
        ColumnarTrie {
            arity: a,
            rows,
            keys,
            offsets,
        }
    }

    /// Number of columns (trie depth).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Distinct rows ingested (leaf count of the trie).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The deduplicated key array of level 0 — ascending distinct values
    /// of the first column, the natural morsel split domain.
    pub fn level0(&self) -> &[Value] {
        self.keys.first().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Approximate heap footprint in bytes (key arrays + offset arrays),
    /// for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let key_bytes: usize = self
            .keys
            .iter()
            .map(|k| k.len() * std::mem::size_of::<Value>())
            .sum();
        let off_bytes: usize = self
            .offsets
            .iter()
            .map(|o| o.len() * std::mem::size_of::<u32>())
            .sum();
        key_bytes + off_bytes
    }

    /// Structural self-check: per level, offsets are monotone with a
    /// correct sentinel, and keys are strictly increasing within every
    /// parent range. `Ok(())` on a well-formed trie; used by the
    /// engine's `strict-invariants` feature after every build.
    pub fn validate(&self) -> Result<(), String> {
        for d in 0..self.arity.saturating_sub(1) {
            let offs = &self.offsets[d];
            if offs.len() != self.keys[d].len() + 1 {
                return Err(format!(
                    "level {d}: {} offsets for {} nodes",
                    offs.len(),
                    self.keys[d].len()
                ));
            }
            if offs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("level {d}: node with empty child range"));
            }
            if offs.last().copied().unwrap_or(0) as usize != self.keys[d + 1].len() {
                return Err(format!(
                    "level {d}: sentinel does not close level {}",
                    d + 1
                ));
            }
            for w in offs.windows(2) {
                let range = &self.keys[d + 1][w[0] as usize..w[1] as usize];
                if range.windows(2).any(|k| k[0] >= k[1]) {
                    return Err(format!("level {}: keys not strictly increasing", d + 1));
                }
            }
        }
        if let Some(level0) = self.keys.first() {
            if level0.windows(2).any(|k| k[0] >= k[1]) {
                return Err("level 0: keys not strictly increasing".into());
            }
        }
        Ok(())
    }

    /// A cursor at the trie root.
    pub fn cursor(&self) -> ColumnarCursor<'_> {
        let a = self.arity.max(1);
        ColumnarCursor {
            trie: self,
            depth: ROOT,
            range: vec![(0, 0); a],
            pos: vec![0; a],
        }
    }
}

const ROOT: usize = usize::MAX;

/// A [`TrieCursor`] over a [`ColumnarTrie`]: per level, the parent's
/// child range in that level's key array and the current position.
/// `next_key` is a position increment, `open` two offset loads, `seek` a
/// [`lower_bound_gallop`] over the contiguous key array.
#[derive(Debug)]
pub struct ColumnarCursor<'a> {
    trie: &'a ColumnarTrie,
    depth: usize,
    range: Vec<(usize, usize)>,
    pos: Vec<usize>,
}

impl ColumnarCursor<'_> {
    /// Current depth (0-based level), or `None` at the root.
    pub fn depth(&self) -> Option<usize> {
        (self.depth != ROOT).then_some(self.depth)
    }
}

impl TrieCursor for ColumnarCursor<'_> {
    fn open(&mut self) {
        if self.depth == ROOT {
            self.depth = 0;
            self.range[0] = (0, self.trie.keys.first().map(Vec::len).unwrap_or(0));
            self.pos[0] = 0;
        } else {
            let d = self.depth;
            debug_assert!(!self.at_end(), "open() at end");
            debug_assert!(d + 1 < self.trie.arity, "open() past last level");
            let node = self.pos[d];
            let offs = &self.trie.offsets[d];
            let child = (offs[node] as usize, offs[node + 1] as usize);
            self.depth = d + 1;
            self.range[self.depth] = child;
            self.pos[self.depth] = child.0;
        }
    }

    fn up(&mut self) {
        debug_assert_ne!(self.depth, ROOT, "up() at root");
        self.depth = if self.depth == 0 {
            ROOT
        } else {
            self.depth - 1
        };
    }

    fn next_key(&mut self) {
        debug_assert!(!self.at_end(), "next_key() at end");
        // Keys are deduplicated at build time: the next distinct value is
        // simply the next slot — no run-end search exists in this layout.
        self.pos[self.depth] += 1;
    }

    fn seek(&mut self, v: Value) {
        debug_assert!(!self.at_end(), "seek() at end");
        let d = self.depth;
        let hi = self.range[d].1;
        // The slice is capped at the parent range's end, and the search
        // starts at the current position inside it, so every key touched
        // belongs to this parent's strictly-increasing child block.
        self.pos[d] = lower_bound_gallop(&self.trie.keys[d][..hi], self.pos[d], v);
    }

    fn key(&self) -> Value {
        debug_assert!(!self.at_end(), "key() at end");
        self.trie.keys[self.depth][self.pos[self.depth]]
    }

    fn at_end(&self) -> bool {
        debug_assert_ne!(self.depth, ROOT, "at_end() at root");
        self.pos[self.depth] >= self.range[self.depth].1
    }
}

/// A relation prepared for the Tributary join in columnar trie layout:
/// the counterpart of [`SortedAtom`](super::SortedAtom), holding an
/// [`Arc<ColumnarTrie>`] so an engine-level cache can hand the same
/// prepared trie to many atoms and runs without rebuilding.
#[derive(Debug, Clone)]
pub struct ColumnarAtom {
    trie: Arc<ColumnarTrie>,
    /// Global order positions of the trie levels, strictly increasing.
    depths: Vec<usize>,
}

impl ColumnarAtom {
    /// Prepares `rel` (whose columns correspond one-to-one to `vars`)
    /// for joining under `order`: permute, sort, build the trie.
    ///
    /// # Panics
    /// Panics if some variable of `vars` is absent from `order`, or if
    /// `vars` contains duplicates.
    pub fn prepare(rel: &Relation, vars: &[VarId], order: &[VarId]) -> ColumnarAtom {
        Self::prepare_with(rel, vars, order, |r, cols| {
            Arc::new(ColumnarTrie::build(&r.sorted_by_columns(cols)))
        })
    }

    /// Like [`ColumnarAtom::prepare`], but trie construction is delegated
    /// to `build_trie`, which receives the input relation and the column
    /// permutation and must return the trie of the column-permuted,
    /// lexicographically sorted view. This is the injection point for the
    /// engine's trie cache and parallel sort — the core crate stays free
    /// of caching and scheduling policy, mirroring
    /// [`SortedAtom::prepare_with`](super::SortedAtom::prepare_with).
    ///
    /// # Panics
    /// Panics if some variable of `vars` is absent from `order`, or if
    /// `vars` contains duplicates.
    pub fn prepare_with<F>(
        rel: &Relation,
        vars: &[VarId],
        order: &[VarId],
        build_trie: F,
    ) -> ColumnarAtom
    where
        F: FnOnce(&Relation, &[usize]) -> Arc<ColumnarTrie>,
    {
        assert_eq!(rel.arity(), vars.len(), "one variable per column");
        let (cols, depths) = order_columns(vars, order);
        ColumnarAtom {
            trie: build_trie(rel, &cols),
            depths,
        }
    }

    /// The prepared trie.
    pub fn trie(&self) -> &ColumnarTrie {
        &self.trie
    }

    /// Global depths of the trie levels.
    pub fn depths(&self) -> &[usize] {
        &self.depths
    }
}

impl TrieAtom for ColumnarAtom {
    type Cursor<'a> = ColumnarCursor<'a>;

    fn depths(&self) -> &[usize] {
        &self.depths
    }

    fn cursor(&self) -> ColumnarCursor<'_> {
        self.trie.cursor()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SortedAtom, Tributary, TrieIter};
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// The relation of the paper's Figure 2 (column pair from `R`).
    fn figure2_r() -> Relation {
        Relation::from_rows(
            2,
            [[0u64, 1], [2, 0], [2, 3], [2, 5], [3, 4], [4, 2], [5, 6]].iter(),
        )
    }

    fn keys_at_level<C: TrieCursor>(c: &mut C) -> Vec<u64> {
        let mut out = Vec::new();
        while !c.at_end() {
            out.push(c.key());
            c.next_key();
        }
        out
    }

    #[test]
    fn level0_distinct_values() {
        let trie = ColumnarTrie::build(&figure2_r());
        assert!(trie.validate().is_ok());
        let mut c = trie.cursor();
        c.open();
        assert_eq!(keys_at_level(&mut c), vec![0, 2, 3, 4, 5]);
        assert_eq!(trie.level0(), &[0, 2, 3, 4, 5]);
        assert_eq!(trie.rows(), 7);
    }

    #[test]
    fn open_descends_into_child_range() {
        let trie = ColumnarTrie::build(&figure2_r());
        let mut c = trie.cursor();
        c.open();
        c.seek(2);
        assert_eq!(c.key(), 2);
        c.open();
        assert_eq!(keys_at_level(&mut c), vec![0, 3, 5]);
        c.up();
        assert_eq!(c.key(), 2);
        c.next_key();
        assert_eq!(c.key(), 3);
    }

    #[test]
    fn seek_lands_on_least_geq() {
        let trie = ColumnarTrie::build(&figure2_r());
        let mut c = trie.cursor();
        c.open();
        c.seek(1);
        assert_eq!(c.key(), 2);
        c.seek(2); // no-op
        assert_eq!(c.key(), 2);
        c.seek(6);
        assert!(c.at_end());
    }

    #[test]
    fn duplicates_merge_at_build() {
        let mut r = Relation::from_rows(2, [[1u64, 1]; 10].iter().chain([[2u64, 9]; 3].iter()));
        r.sort_lex();
        let trie = ColumnarTrie::build(&r);
        assert_eq!(trie.rows(), 2);
        let mut c = trie.cursor();
        c.open();
        assert_eq!(keys_at_level(&mut c), vec![1, 2]);
    }

    #[test]
    fn empty_and_nullary_relations() {
        let trie = ColumnarTrie::build(&Relation::new(2));
        assert_eq!(trie.rows(), 0);
        assert!(trie.validate().is_ok());
        let mut c = trie.cursor();
        c.open();
        assert!(c.at_end());
        let nullary = ColumnarTrie::build(&Relation::new(0));
        assert_eq!(nullary.arity(), 0);
        assert!(nullary.validate().is_ok());
    }

    #[test]
    fn up_restores_parent_cursor() {
        let trie = ColumnarTrie::build(&figure2_r());
        let mut c = trie.cursor();
        c.open();
        c.seek(2);
        c.open();
        c.seek(5);
        assert_eq!(c.key(), 5);
        c.up();
        assert_eq!(c.key(), 2);
        c.open();
        assert_eq!(c.key(), 0);
    }

    #[test]
    fn lower_bound_gallop_matches_reference() {
        let xs: Vec<Value> = (0..1000u64).map(|i| i * 3).collect();
        for start in [0usize, 1, 7, 500, 999, 1000] {
            for v in [0u64, 1, 2, 3, 1000, 1499, 1500, 2997, 2998, 5000] {
                let want = start
                    + xs[start.min(xs.len())..]
                        .iter()
                        .take_while(|&&k| k < v)
                        .count();
                assert_eq!(
                    lower_bound_gallop(&xs, start, v),
                    want,
                    "start={start} v={v}"
                );
            }
        }
        // Degenerate inputs.
        assert_eq!(lower_bound_gallop(&[], 0, 5), 0);
        assert_eq!(lower_bound_gallop(&[1, 2, 3], 5, 0), 3);
        assert_eq!(lower_bound_gallop(&[7], 0, u64::MAX), 1);
        assert_eq!(lower_bound_gallop(&[u64::MAX], 0, u64::MAX), 0);
    }

    #[test]
    fn cursor_matches_trieiter_on_figure2() {
        // Walk both layouts through the same open/seek/next script.
        let r = figure2_r();
        let trie = ColumnarTrie::build(&r);
        let mut col = trie.cursor();
        let mut row = TrieIter::new(&r);
        col.open();
        row.open();
        for target in [0u64, 1, 2, 3, 4, 5, 6] {
            let mut c2 = trie.cursor();
            let mut r2 = TrieIter::new(&r);
            c2.open();
            r2.open();
            c2.seek(target);
            r2.seek(target);
            assert_eq!(c2.at_end(), r2.at_end(), "seek({target})");
            if !c2.at_end() {
                assert_eq!(c2.key(), r2.key(), "seek({target})");
            }
        }
    }

    #[test]
    fn triangle_join_equals_row_layout() {
        let edges = Relation::from_rows(
            2,
            [[0u64, 1], [1, 2], [2, 0], [1, 3], [3, 2], [0, 2], [2, 1]].iter(),
        );
        let order = [v(0), v(1), v(2)];
        let row_atoms = vec![
            SortedAtom::prepare(&edges, &[v(0), v(1)], &order),
            SortedAtom::prepare(&edges, &[v(1), v(2)], &order),
            SortedAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let col_atoms = vec![
            ColumnarAtom::prepare(&edges, &[v(0), v(1)], &order),
            ColumnarAtom::prepare(&edges, &[v(1), v(2)], &order),
            ColumnarAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let row_tj = Tributary::new(&row_atoms, &order, &[], 3);
        let col_tj = Tributary::new(&col_atoms, &order, &[], 3);
        let mut row_out = Vec::new();
        row_tj.run(|a| {
            row_out.push(a.to_vec());
            true
        });
        let mut col_out = Vec::new();
        col_tj.run(|a| {
            col_out.push(a.to_vec());
            true
        });
        assert!(!row_out.is_empty());
        assert_eq!(row_out, col_out, "emission order must match exactly");
    }

    #[test]
    fn run_range_pieces_concatenate_like_row_layout() {
        let edges = Relation::from_rows(
            2,
            [
                [0u64, 1],
                [1, 2],
                [2, 0],
                [1, 3],
                [3, 2],
                [0, 2],
                [2, 1],
                [3, 0],
                [2, 3],
            ]
            .iter(),
        );
        let order = [v(0), v(1), v(2)];
        let atoms = vec![
            ColumnarAtom::prepare(&edges, &[v(0), v(1)], &order),
            ColumnarAtom::prepare(&edges, &[v(1), v(2)], &order),
            ColumnarAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let tj = Tributary::new(&atoms, &order, &[], 3);
        let mut full = Vec::new();
        tj.run(|a| {
            full.push(a.to_vec());
            true
        });
        assert!(!full.is_empty());
        for bounds in [vec![0], vec![0, 2], vec![0, 1, 2, 3], vec![0, 3, 100]] {
            let mut pieced = Vec::new();
            for (i, &lo) in bounds.iter().enumerate() {
                let hi = bounds.get(i + 1).copied();
                tj.run_range(lo, hi, |a| {
                    pieced.push(a.to_vec());
                    true
                });
            }
            assert_eq!(pieced, full, "split {bounds:?}");
        }
    }

    #[test]
    fn column_permutation_applies() {
        // vars (y, x) under order (x, y): level 0 must iterate x.
        let r = Relation::from_rows(2, [[10u64, 1], [20, 2]].iter());
        let atom = ColumnarAtom::prepare(&r, &[v(1), v(0)], &[v(0), v(1)]);
        let mut c = atom.cursor();
        c.open();
        assert_eq!(keys_at_level(&mut c), vec![1, 2]);
        assert_eq!(atom.depths(), &[0, 1]);
    }

    #[test]
    fn gallop_long_jump() {
        let rows: Vec<[u64; 1]> = (0..10_000u64).map(|i| [i * 2]).collect();
        let r = Relation::from_rows(1, rows.iter());
        let trie = ColumnarTrie::build(&r);
        let mut c = trie.cursor();
        c.open();
        c.seek(9999);
        assert_eq!(c.key(), 10_000);
        c.seek(19_998);
        assert_eq!(c.key(), 19_998);
        c.next_key();
        assert!(c.at_end());
    }

    #[test]
    fn approx_bytes_tracks_levels() {
        let trie = ColumnarTrie::build(&figure2_r());
        // 5 level-0 keys + 7 level-1 keys, 8 bytes each; 6 offsets, 4 each.
        assert_eq!(trie.approx_bytes(), (5 + 7) * 8 + 6 * 4);
    }
}
