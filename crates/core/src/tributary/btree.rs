//! A B-tree-backed LFTJ atom — LogicBlox's original representation.
//!
//! The paper's Tributary join deliberately replaces LogicBlox's B-trees
//! with sorted arrays because in a parallel setting the data only exists
//! *after* the shuffle, and "sorting on the fly is cheaper than computing
//! a B-tree on the fly" (§2.2). This module implements the B-tree side of
//! that trade-off — a trie of nested ordered maps exposing the same
//! [`TrieCursor`] API — so the claim is measurable (see the `tributary`
//! Criterion bench and the btree-vs-array comparison tests).

use super::trie::TrieCursor;
use parjoin_common::{Relation, Value};
use parjoin_query::VarId;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One trie node: an ordered map from value to child (empty at leaves).
#[derive(Debug, Default, Clone)]
struct Node {
    children: BTreeMap<Value, Node>,
}

/// A relation ingested into a trie of nested B-trees, columns ordered by
/// the global variable order.
#[derive(Debug, Clone)]
pub struct BTreeAtom {
    root: Node,
    depths: Vec<usize>,
}

impl BTreeAtom {
    /// Builds the trie. Same contract as
    /// [`SortedAtom::prepare`](super::SortedAtom::prepare): `rel`'s
    /// columns correspond one-to-one to `vars`, all of which must appear
    /// in `order`.
    ///
    /// # Panics
    /// Panics if some variable of `vars` is absent from `order`, or on
    /// duplicate variables.
    pub fn prepare(rel: &Relation, vars: &[VarId], order: &[VarId]) -> BTreeAtom {
        assert_eq!(rel.arity(), vars.len(), "one variable per column");
        let (cols, depths) = super::join::order_columns(vars, order);

        let mut root = Node::default();
        for row in rel.rows() {
            let mut node = &mut root;
            for &c in &cols {
                node = node.children.entry(row[c]).or_default();
            }
        }
        BTreeAtom { root, depths }
    }

    /// Global depths of the trie levels (ascending).
    pub fn depths(&self) -> &[usize] {
        &self.depths
    }

    /// A cursor at the trie root.
    pub fn cursor(&self) -> BTreeCursor<'_> {
        BTreeCursor {
            root: &self.root,
            stack: Vec::new(),
        }
    }

    /// Number of distinct tuples stored.
    pub fn len(&self) -> usize {
        fn count(node: &Node, levels: usize) -> usize {
            if levels == 0 {
                1
            } else {
                node.children.values().map(|c| count(c, levels - 1)).sum()
            }
        }
        count(&self.root, self.depths.len())
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty() || self.root.children.is_empty()
    }
}

/// Cursor state per open level: the map being iterated and the current
/// entry (None = exhausted).
struct Level<'a> {
    map: &'a BTreeMap<Value, Node>,
    cur: Option<(Value, &'a Node)>,
}

/// A [`TrieCursor`] over a [`BTreeAtom`].
///
/// `next_key`/`seek` re-enter the map with a range query, costing
/// `O(log n)` per call — the same bound as the array implementation;
/// LogicBlox's amortized-O(1) leaf chaining is not replicated, which only
/// strengthens the array side of the paper's comparison if the B-tree
/// still wins on navigation.
pub struct BTreeCursor<'a> {
    root: &'a Node,
    stack: Vec<Level<'a>>,
}

impl TrieCursor for BTreeCursor<'_> {
    fn open(&mut self) {
        let map = match self.stack.last() {
            None => &self.root.children,
            Some(level) => {
                let (_, node) = level.cur.expect("open() requires a current value"); // xtask: allow(expect): TrieCursor protocol contract
                &node.children
            }
        };
        let cur = map.iter().next().map(|(k, n)| (*k, n));
        self.stack.push(Level { map, cur });
    }

    fn up(&mut self) {
        self.stack.pop().expect("up() below root"); // xtask: allow(expect): TrieCursor protocol contract
    }

    fn next_key(&mut self) {
        let level = self.stack.last_mut().expect("next_key() at root"); // xtask: allow(expect): TrieCursor protocol contract
        let (k, _) = level.cur.expect("next_key() at end"); // xtask: allow(expect): TrieCursor protocol contract
        level.cur = level
            .map
            .range((Bound::Excluded(k), Bound::Unbounded))
            .next()
            .map(|(k, n)| (*k, n));
    }

    fn seek(&mut self, v: Value) {
        let level = self.stack.last_mut().expect("seek() at root"); // xtask: allow(expect): TrieCursor protocol contract
        let (k, _) = level.cur.expect("seek() at end"); // xtask: allow(expect): TrieCursor protocol contract
        if k >= v {
            return;
        }
        level.cur = level.map.range(v..).next().map(|(k, n)| (*k, n));
    }

    fn key(&self) -> Value {
        let level = self.stack.last().expect("key() at root"); // xtask: allow(expect): TrieCursor protocol contract
        level.cur.expect("key() at end").0 // xtask: allow(expect): TrieCursor protocol contract
    }

    fn at_end(&self) -> bool {
        self.stack.last().expect("at_end() at root").cur.is_none() // xtask: allow(expect): TrieCursor protocol contract
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn figure2_r() -> Relation {
        Relation::from_rows(
            2,
            [[0u64, 1], [2, 0], [2, 3], [2, 5], [3, 4], [4, 2], [5, 6]].iter(),
        )
    }

    #[test]
    fn level0_matches_array_trie() {
        let r = figure2_r();
        let atom = BTreeAtom::prepare(&r, &[v(0), v(1)], &[v(0), v(1)]);
        let mut c = atom.cursor();
        c.open();
        let mut keys = Vec::new();
        while !c.at_end() {
            keys.push(c.key());
            c.next_key();
        }
        assert_eq!(keys, vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn open_and_seek() {
        let r = figure2_r();
        let atom = BTreeAtom::prepare(&r, &[v(0), v(1)], &[v(0), v(1)]);
        let mut c = atom.cursor();
        c.open();
        c.seek(2);
        assert_eq!(c.key(), 2);
        c.open();
        assert_eq!(c.key(), 0);
        c.seek(4);
        assert_eq!(c.key(), 5);
        c.up();
        assert_eq!(c.key(), 2);
        c.seek(6);
        assert!(c.at_end());
    }

    #[test]
    fn column_permutation_applies() {
        // vars (y, x) under order (x, y): level 0 must iterate x.
        let r = Relation::from_rows(2, [[10u64, 1], [20, 2]].iter());
        let atom = BTreeAtom::prepare(&r, &[v(1), v(0)], &[v(0), v(1)]);
        let mut c = atom.cursor();
        c.open();
        assert_eq!(c.key(), 1);
        c.next_key();
        assert_eq!(c.key(), 2);
    }

    #[test]
    fn len_counts_distinct() {
        let r = Relation::from_rows(2, [[1u64, 1], [1, 1], [1, 2]].iter());
        let atom = BTreeAtom::prepare(&r, &[v(0), v(1)], &[v(0), v(1)]);
        assert_eq!(atom.len(), 2);
    }

    #[test]
    fn empty_relation() {
        let atom = BTreeAtom::prepare(&Relation::new(2), &[v(0), v(1)], &[v(0), v(1)]);
        let mut c = atom.cursor();
        c.open();
        assert!(c.at_end());
        assert_eq!(atom.len(), 0);
    }
}
