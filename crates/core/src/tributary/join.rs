//! The multiway Tributary join executor.

use super::btree::{BTreeAtom, BTreeCursor};
use super::trie::{TrieCursor, TrieIter};
use parjoin_common::{Relation, Value};
use parjoin_query::{Filter, VarId};
use std::sync::Arc;

/// Maps an atom's per-column variables onto trie levels under the global
/// variable order: returns `(cols, depths)` where `cols[k]` is the input
/// column whose values populate trie level `k` and `depths[k]` is that
/// level's position in `order` (strictly increasing by construction).
///
/// This is the one level-boundary computation shared by every atom
/// preparation path — [`SortedAtom`], [`BTreeAtom`](super::BTreeAtom),
/// and [`ColumnarAtom`](super::ColumnarAtom) all permute their columns
/// through it.
///
/// # Panics
/// Panics if some variable of `vars` is absent from `order`, or if
/// `vars` contains duplicates.
pub fn order_columns(vars: &[VarId], order: &[VarId]) -> (Vec<usize>, Vec<usize>) {
    let mut pairs: Vec<(usize, usize)> = vars
        .iter()
        .enumerate()
        .map(|(col, v)| {
            let depth = order
                .iter()
                .position(|o| o == v)
                .unwrap_or_else(|| panic!("variable #{} not in global order", v.0)); // xtask: allow(panic)
            (depth, col)
        })
        .collect();
    pairs.sort_unstable();
    for w in pairs.windows(2) {
        assert_ne!(w[0].0, w[1].0, "duplicate variable in atom");
    }
    (
        pairs.iter().map(|&(_, c)| c).collect(),
        pairs.iter().map(|&(d, _)| d).collect(),
    )
}

/// A relation prepared for leapfrog joining: a trie whose levels map to
/// global-order depths, served through a [`TrieCursor`]. Implemented by
/// the paper's array-backed [`SortedAtom`], the columnar level-segmented
/// [`ColumnarAtom`](super::ColumnarAtom), and the B-tree-backed
/// [`BTreeAtom`](super::BTreeAtom) (LogicBlox's layout) for comparison.
pub trait TrieAtom {
    /// The cursor type borrowed from this atom.
    type Cursor<'a>: TrieCursor
    where
        Self: 'a;
    /// Global depths of the trie levels (strictly increasing).
    fn depths(&self) -> &[usize];
    /// Opens a cursor at the root.
    fn cursor(&self) -> Self::Cursor<'_>;
}

/// A relation prepared for the Tributary join: columns permuted to follow
/// the global variable order and rows sorted lexicographically.
///
/// Preparation is the sort phase the paper measures separately (Table 5:
/// "BR_TJ: all sorts … 73%" of local-join time). The sorted view is held
/// behind an [`Arc`] so an engine-level cache can hand the same view to
/// many atoms/runs without copying (see [`SortedAtom::prepare_with`]).
#[derive(Debug, Clone)]
pub struct SortedAtom {
    rel: Arc<Relation>,
    /// Global order positions of the (permuted) columns, strictly
    /// increasing.
    depths: Vec<usize>,
}

impl SortedAtom {
    /// Prepares `rel` (whose columns correspond one-to-one to `vars`) for
    /// joining under `order`.
    ///
    /// # Panics
    /// Panics if some variable of `vars` is absent from `order`, or if
    /// `vars` contains duplicates.
    pub fn prepare(rel: &Relation, vars: &[VarId], order: &[VarId]) -> SortedAtom {
        Self::prepare_with(rel, vars, order, |r, cols| {
            Arc::new(r.sorted_by_columns(cols))
        })
    }

    /// Like [`SortedAtom::prepare`], but the actual sort is delegated to
    /// `sort_view`, which receives the input relation and the column
    /// permutation and must return the column-permuted, lexicographically
    /// sorted view. This is the injection point for the engine's sorted-
    /// view cache and intra-worker parallel sort — the core crate stays
    /// free of any scheduling or caching policy.
    ///
    /// # Panics
    /// Panics if some variable of `vars` is absent from `order`, or if
    /// `vars` contains duplicates.
    pub fn prepare_with<F>(
        rel: &Relation,
        vars: &[VarId],
        order: &[VarId],
        sort_view: F,
    ) -> SortedAtom
    where
        F: FnOnce(&Relation, &[usize]) -> Arc<Relation>,
    {
        assert_eq!(rel.arity(), vars.len(), "one variable per column");
        let (cols, depths) = order_columns(vars, order);
        SortedAtom {
            rel: sort_view(rel, &cols),
            depths,
        }
    }

    /// The sorted, permuted relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Global depths of the columns.
    pub fn depths(&self) -> &[usize] {
        &self.depths
    }
}

impl TrieAtom for SortedAtom {
    type Cursor<'a> = TrieIter<'a>;

    fn depths(&self) -> &[usize] {
        &self.depths
    }

    fn cursor(&self) -> TrieIter<'_> {
        TrieIter::new(&self.rel)
    }
}

impl TrieAtom for BTreeAtom {
    type Cursor<'a> = BTreeCursor<'a>;

    fn depths(&self) -> &[usize] {
        BTreeAtom::depths(self)
    }

    fn cursor(&self) -> BTreeCursor<'_> {
        BTreeAtom::cursor(self)
    }
}

/// A configured Tributary join over prepared atoms.
///
/// ```
/// use parjoin_common::Relation;
/// use parjoin_core::tributary::{SortedAtom, Tributary};
/// use parjoin_query::VarId;
///
/// // Triangle query R(x,y), S(y,z), T(z,x) over one directed 3-cycle
/// // plus two extra edges that close no cycle.
/// let edges = Relation::from_rows(2, [
///     [0u64, 1], [1, 2], [2, 0], [2, 3], [3, 0],
/// ].iter());
/// let (x, y, z) = (VarId(0), VarId(1), VarId(2));
/// let order = [x, y, z];
/// let atoms = vec![
///     SortedAtom::prepare(&edges, &[x, y], &order),
///     SortedAtom::prepare(&edges, &[y, z], &order),
///     SortedAtom::prepare(&edges, &[z, x], &order),
/// ];
/// let tj = Tributary::new(&atoms, &order, &[], 3);
/// // The cycle 0→1→2→0 is found under all three rotations of (x,y,z).
/// assert_eq!(tj.count(), 3);
/// ```
pub struct Tributary<'a, A: TrieAtom = SortedAtom> {
    atoms: &'a [A],
    /// Variable at each global depth.
    order: &'a [VarId],
    /// Residual filters; `filters_at[d]` lists filters that become fully
    /// bound exactly at depth `d`.
    filters_at: Vec<Vec<Filter>>,
    /// Size of the variable-indexed assignment buffer.
    num_vars: usize,
    /// Atoms participating at each depth.
    participants: Vec<Vec<usize>>,
}

impl<'a, A: TrieAtom> Tributary<'a, A> {
    /// Builds the join. `num_vars` sizes the assignment buffer (it must
    /// exceed every `VarId` index used by atoms or filters).
    ///
    /// # Panics
    /// Panics if some depth has no participating atom, or a filter
    /// references a variable outside `order`.
    pub fn new(atoms: &'a [A], order: &'a [VarId], filters: &[Filter], num_vars: usize) -> Self {
        let mut participants = vec![Vec::new(); order.len()];
        for (ai, a) in atoms.iter().enumerate() {
            for &d in a.depths() {
                participants[d].push(ai);
            }
        }
        for (d, p) in participants.iter().enumerate() {
            assert!(!p.is_empty(), "no atom contains variable at depth {d}");
        }
        let depth_of = |v: VarId| -> usize {
            order
                .iter()
                .position(|&o| o == v)
                // xtask: allow(panic)
                .unwrap_or_else(|| panic!("filter variable #{} not in order", v.0))
        };
        let mut filters_at = vec![Vec::new(); order.len()];
        for f in filters {
            let d = f
                .vars()
                .into_iter()
                .map(depth_of)
                .max()
                // A comparison filter references at least one variable
                // by construction of the query AST. xtask: allow(expect)
                .expect("filter has vars");
            filters_at[d].push(*f);
        }
        Tributary {
            atoms,
            order,
            filters_at,
            num_vars,
            participants,
        }
    }

    /// Runs the join, invoking `emit` with the variable-indexed assignment
    /// (`assignment[v.index()]`) for every result. Returning `false` from
    /// `emit` aborts the join early. Returns the number of results emitted.
    pub fn run<F: FnMut(&[Value]) -> bool>(&self, emit: F) -> u64 {
        self.run_guarded(emit, || true).0
    }

    /// Runs the join restricted to first-order-variable values in
    /// `[lo, hi)` (`hi = None` means unbounded above).
    ///
    /// This is the morsel entry point for intra-worker parallel probing:
    /// the depth-0 leapfrog enumerates values in ascending order, so for
    /// any split `0 = b_0 < b_1 < … < b_k` the concatenation of
    /// `run_range(b_i, Some(b_{i+1}), …)` outputs in morsel order is
    /// *byte-identical* to a single [`Self::run`]. Morsels are
    /// independent: `run` takes `&self`, so one `Tributary` can serve
    /// many morsel threads, each with its own cursors.
    pub fn run_range<F: FnMut(&[Value]) -> bool>(
        &self,
        lo: Value,
        hi: Option<Value>,
        emit: F,
    ) -> u64 {
        self.run_range_guarded(lo, hi, emit, || true).0
    }

    /// Like [`Self::run`], but additionally consults `guard` every few
    /// thousand leapfrog operations — including during long result-free
    /// stretches, which is where bad variable orders burn their time.
    /// Returning `false` from `guard` aborts. Returns `(results_emitted,
    /// completed)`; `completed` is `false` when either closure aborted.
    ///
    /// This is the mechanism behind the paper's Figure 12/Table 7
    /// protocol of terminating hopeless variable orders at a time cutoff.
    pub fn run_guarded<F, G>(&self, emit: F, guard: G) -> (u64, bool)
    where
        F: FnMut(&[Value]) -> bool,
        G: FnMut() -> bool,
    {
        self.run_range_guarded(0, None, emit, guard)
    }

    /// [`Self::run_range`] with the guard hook of [`Self::run_guarded`].
    pub fn run_range_guarded<F, G>(
        &self,
        lo: Value,
        hi: Option<Value>,
        emit: F,
        guard: G,
    ) -> (u64, bool)
    where
        F: FnMut(&[Value]) -> bool,
        G: FnMut() -> bool,
    {
        if self.order.is_empty() {
            return (0, true);
        }
        let mut iters: Vec<A::Cursor<'_>> = self.atoms.iter().map(|a| a.cursor()).collect();
        let mut assignment = vec![0 as Value; self.num_vars];
        let mut ctx = RunCtx {
            emit,
            guard,
            count: 0,
            ops: 0,
            lo,
            hi,
        };
        let completed = self.recurse(0, &mut iters, &mut assignment, &mut ctx);
        (ctx.count, completed)
    }

    /// Counts results without materializing them.
    pub fn count(&self) -> u64 {
        self.run(|_| true)
    }

    /// Runs the join and materializes the projection onto `head`.
    pub fn collect(&self, head: &[VarId]) -> Relation {
        let mut out = Relation::new(head.len().max(1));
        self.run(|asg| {
            let row: Vec<Value> = head.iter().map(|v| asg[v.index()]).collect();
            out.push_row(&row);
            true
        });
        out
    }

    /// Depth-`d` leapfrog over the participating iterators; returns
    /// `false` to propagate early termination.
    fn recurse<F, G>(
        &self,
        d: usize,
        iters: &mut [A::Cursor<'_>],
        assignment: &mut [Value],
        ctx: &mut RunCtx<F, G>,
    ) -> bool
    where
        F: FnMut(&[Value]) -> bool,
        G: FnMut() -> bool,
    {
        let parts = &self.participants[d];
        for &a in parts {
            iters[a].open();
        }
        if d == 0 && ctx.lo > 0 {
            // Morsel lower bound: fast-forward every depth-0 cursor past
            // values below the range before the leapfrog starts.
            for &a in parts {
                if !iters[a].at_end() {
                    iters[a].seek(ctx.lo);
                }
            }
        }
        let mut keep_going = true;
        if parts.iter().all(|&a| !iters[a].at_end()) {
            keep_going = self.leapfrog(d, iters, assignment, ctx);
        }
        for &a in parts {
            iters[a].up();
        }
        keep_going
    }

    fn leapfrog<F, G>(
        &self,
        d: usize,
        iters: &mut [A::Cursor<'_>],
        assignment: &mut [Value],
        ctx: &mut RunCtx<F, G>,
    ) -> bool
    where
        F: FnMut(&[Value]) -> bool,
        G: FnMut() -> bool,
    {
        let parts = &self.participants[d];
        let k = parts.len();
        // Rotation order sorted by current key (Veldhuizen's init).
        let mut rot: Vec<usize> = parts.clone();
        rot.sort_by_key(|&a| iters[a].key());
        let mut p = 0usize;
        let mut max_key = iters[rot[(k - 1) % k]].key();
        loop {
            // Morsel upper bound: depth-0 keys ascend monotonically, so
            // once the running max reaches `hi` no further match can fall
            // inside `[lo, hi)` and the morsel is done.
            if d == 0 {
                if let Some(h) = ctx.hi {
                    if max_key >= h {
                        return true;
                    }
                }
            }
            if !ctx.tick() {
                return false;
            }
            let a = rot[p];
            let x = iters[a].key();
            if x == max_key {
                // All k iterators agree on x: a match at this level.
                assignment[self.order[d].index()] = x;
                if self.filters_at[d].iter().all(|f| f.eval(assignment)) {
                    if d + 1 == self.order.len() {
                        ctx.count += 1;
                        if !(ctx.emit)(assignment) {
                            return false;
                        }
                    } else if !self.recurse(d + 1, iters, assignment, ctx) {
                        return false;
                    }
                }
                iters[a].next_key();
                if iters[a].at_end() {
                    return true;
                }
                max_key = iters[a].key();
                p = (p + 1) % k;
            } else {
                iters[a].seek(max_key);
                if iters[a].at_end() {
                    return true;
                }
                max_key = iters[a].key();
                p = (p + 1) % k;
            }
        }
    }
}

/// Per-run mutable state: the emit/guard closures, the result count, and
/// an operation counter driving periodic guard checks.
struct RunCtx<F, G> {
    emit: F,
    guard: G,
    count: u64,
    ops: u64,
    /// Depth-0 value range `[lo, hi)` of the current morsel; `(0, None)`
    /// for an unrestricted run.
    lo: Value,
    hi: Option<Value>,
}

impl<F, G: FnMut() -> bool> RunCtx<F, G> {
    /// Counts one leapfrog operation; every 8192 ops, asks the guard.
    #[inline]
    fn tick(&mut self) -> bool {
        self.ops += 1;
        if self.ops & 0x1fff == 0 {
            (self.guard)()
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::CmpOp;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// Reference: naive nested-loop evaluation of a conjunctive query over
    /// variables-only atoms.
    fn naive_join(
        atoms: &[(&Relation, Vec<VarId>)],
        num_vars: usize,
        filters: &[Filter],
    ) -> Vec<Vec<Value>> {
        let mut results = Vec::new();
        let mut asg: Vec<Option<Value>> = vec![None; num_vars];
        fn rec(
            i: usize,
            atoms: &[(&Relation, Vec<VarId>)],
            asg: &mut Vec<Option<Value>>,
            filters: &[Filter],
            out: &mut Vec<Vec<Value>>,
        ) {
            if i == atoms.len() {
                let full: Vec<Value> = asg.iter().map(|o| o.unwrap_or(0)).collect();
                if filters.iter().all(|f| f.eval(&full)) {
                    out.push(full);
                }
                return;
            }
            let (rel, vars) = &atoms[i];
            'rows: for row in rel.rows() {
                let saved = asg.clone();
                for (c, &var) in vars.iter().enumerate() {
                    match asg[var.index()] {
                        Some(x) if x != row[c] => {
                            *asg = saved;
                            continue 'rows;
                        }
                        _ => asg[var.index()] = Some(row[c]),
                    }
                }
                rec(i + 1, atoms, asg, filters, out);
                *asg = saved;
            }
        }
        rec(0, atoms, &mut asg, filters, &mut results);
        results.sort();
        results.dedup();
        results
    }

    fn run_tj(
        atoms: &[(&Relation, Vec<VarId>)],
        order: &[VarId],
        num_vars: usize,
        filters: &[Filter],
    ) -> Vec<Vec<Value>> {
        let prepared: Vec<SortedAtom> = atoms
            .iter()
            .map(|(r, vs)| SortedAtom::prepare(r, vs, order))
            .collect();
        let tj = Tributary::new(&prepared, order, filters, num_vars);
        let mut out = Vec::new();
        tj.run(|asg| {
            out.push(asg.to_vec());
            true
        });
        out.sort();
        out
    }

    fn figure2_db() -> (Relation, Relation, Relation) {
        // Paper Figure 2: R(x,y), S(y,z), T(x,z).
        let r = Relation::from_rows(
            2,
            [[0u64, 1], [2, 0], [2, 3], [2, 5], [3, 4], [4, 2], [5, 6]].iter(),
        );
        let s = Relation::from_rows(
            2,
            [[0u64, 1], [2, 0], [2, 3], [2, 5], [3, 4], [4, 2], [5, 6]].iter(),
        );
        let t = Relation::from_rows(
            2,
            [[0u64, 2], [1, 0], [2, 4], [3, 2], [4, 3], [5, 2], [6, 5]].iter(),
        );
        (r, s, t)
    }

    #[test]
    fn figure2_example_emits_2_3_4() {
        // Q(x,y,z) :- R(x,y), S(y,z), T(z,x); the paper walks through
        // finding (2, 3, 4).
        let (r, s, t) = figure2_db();
        // T in Figure 2 is given as T(x, z) — column order (x, z).
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![
            (&r, vec![v(0), v(1)]),
            (&s, vec![v(1), v(2)]),
            (&t, vec![v(0), v(2)]),
        ];
        let got = run_tj(&atoms, &[v(0), v(1), v(2)], 3, &[]);
        assert!(
            got.contains(&vec![2, 3, 4]),
            "missing paper's example result: {got:?}"
        );
        let want = naive_join(&atoms, 3, &[]);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_naive_on_triangle() {
        let edges = Relation::from_rows(
            2,
            [[0u64, 1], [1, 2], [2, 0], [1, 3], [3, 2], [0, 2], [2, 1]].iter(),
        );
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![
            (&edges, vec![v(0), v(1)]),
            (&edges, vec![v(1), v(2)]),
            (&edges, vec![v(2), v(0)]),
        ];
        for order in [[v(0), v(1), v(2)], [v(2), v(0), v(1)], [v(1), v(2), v(0)]] {
            let got = run_tj(&atoms, &order, 3, &[]);
            let want = naive_join(&atoms, 3, &[]);
            assert_eq!(got, want, "order {order:?}");
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let e = Relation::new(2);
        let full = Relation::from_rows(2, [[1u64, 2]].iter());
        let atoms: Vec<(&Relation, Vec<VarId>)> =
            vec![(&e, vec![v(0), v(1)]), (&full, vec![v(1), v(2)])];
        assert!(run_tj(&atoms, &[v(0), v(1), v(2)], 3, &[]).is_empty());
    }

    #[test]
    fn disjoint_keys_give_empty_output() {
        let a = Relation::from_rows(2, [[1u64, 10], [2, 20]].iter());
        let b = Relation::from_rows(2, [[30u64, 5], [40, 6]].iter());
        let atoms: Vec<(&Relation, Vec<VarId>)> =
            vec![(&a, vec![v(0), v(1)]), (&b, vec![v(1), v(2)])];
        assert!(run_tj(&atoms, &[v(1), v(0), v(2)], 3, &[]).is_empty());
    }

    #[test]
    fn single_atom_enumerates_rows() {
        let a = Relation::from_rows(2, [[1u64, 2], [3, 4]].iter());
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![(&a, vec![v(0), v(1)])];
        let got = run_tj(&atoms, &[v(0), v(1)], 2, &[]);
        assert_eq!(got, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn filters_prune_results() {
        let a = Relation::from_rows(2, [[1u64, 2], [3, 4], [5, 1]].iter());
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![(&a, vec![v(0), v(1)])];
        let f = Filter {
            left: v(0),
            op: CmpOp::Lt,
            right: parjoin_query::Operand::Var(v(1)),
        };
        let got = run_tj(&atoms, &[v(0), v(1)], 2, &[f]);
        assert_eq!(got, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn filter_applied_at_binding_depth_not_after() {
        // x > 3 must prune the whole subtree below x without descending.
        let a = Relation::from_rows(2, [[1u64, 2], [4, 9]].iter());
        let b = Relation::from_rows(1, [[2u64], [9]].iter());
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![(&a, vec![v(0), v(1)]), (&b, vec![v(1)])];
        let f = Filter {
            left: v(0),
            op: CmpOp::Gt,
            right: parjoin_query::Operand::Const(3),
        };
        let got = run_tj(&atoms, &[v(0), v(1)], 2, &[f]);
        assert_eq!(got, vec![vec![4, 9]]);
    }

    #[test]
    fn early_termination_via_emit() {
        let a = Relation::from_rows(1, (0..100u64).map(|i| [i]).collect::<Vec<_>>().iter());
        let atoms: Vec<SortedAtom> = vec![SortedAtom::prepare(&a, &[v(0)], &[v(0)])];
        let order = [v(0)];
        let tj = Tributary::new(&atoms, &order, &[], 1);
        let mut seen = 0;
        let n = tj.run(|_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn collect_projects_head() {
        let a = Relation::from_rows(2, [[1u64, 2], [3, 4]].iter());
        let atoms: Vec<SortedAtom> = vec![SortedAtom::prepare(&a, &[v(0), v(1)], &[v(0), v(1)])];
        let order = [v(0), v(1)];
        let tj = Tributary::new(&atoms, &order, &[], 2);
        let out = tj.collect(&[v(1)]);
        assert_eq!(out.arity(), 1);
        let mut vals: Vec<u64> = out.rows().map(|r| r[0]).collect();
        vals.sort();
        assert_eq!(vals, vec![2, 4]);
    }

    #[test]
    fn chain_query_matches_naive() {
        let a = Relation::from_rows(2, [[1u64, 2], [2, 3], [1, 3], [3, 1]].iter());
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![
            (&a, vec![v(0), v(1)]),
            (&a, vec![v(1), v(2)]),
            (&a, vec![v(2), v(3)]),
        ];
        for order in [
            vec![v(0), v(1), v(2), v(3)],
            vec![v(3), v(2), v(1), v(0)],
            vec![v(1), v(3), v(0), v(2)],
        ] {
            let got = run_tj(&atoms, &order, 4, &[]);
            let want = naive_join(&atoms, 4, &[]);
            assert_eq!(got, want, "order {order:?}");
        }
    }

    #[test]
    fn four_clique_matches_naive() {
        // Q2's shape on a small random-ish graph.
        let edges = Relation::from_rows(
            2,
            [
                [0u64, 1],
                [1, 2],
                [2, 3],
                [3, 0],
                [0, 2],
                [1, 3],
                [2, 0],
                [3, 1],
                [1, 0],
                [2, 1],
                [3, 2],
                [0, 3],
            ]
            .iter(),
        );
        let (x, y, z, p) = (v(0), v(1), v(2), v(3));
        let atoms: Vec<(&Relation, Vec<VarId>)> = vec![
            (&edges, vec![x, y]),
            (&edges, vec![y, z]),
            (&edges, vec![z, p]),
            (&edges, vec![p, x]),
            (&edges, vec![x, z]),
            (&edges, vec![y, p]),
        ];
        let got = run_tj(&atoms, &[x, y, z, p], 4, &[]);
        let want = naive_join(&atoms, 4, &[]);
        assert_eq!(got, want);
        assert!(!got.is_empty(), "this graph has 4-cliques");
    }

    #[test]
    fn run_range_pieces_concatenate_to_full_run() {
        // Triangle query; outputs collected *in emission order* so this
        // checks the morsel determinism argument, not just set equality.
        let edges = Relation::from_rows(
            2,
            [
                [0u64, 1],
                [1, 2],
                [2, 0],
                [1, 3],
                [3, 2],
                [0, 2],
                [2, 1],
                [3, 0],
                [2, 3],
            ]
            .iter(),
        );
        let order = [v(0), v(1), v(2)];
        let atoms = vec![
            SortedAtom::prepare(&edges, &[v(0), v(1)], &order),
            SortedAtom::prepare(&edges, &[v(1), v(2)], &order),
            SortedAtom::prepare(&edges, &[v(2), v(0)], &order),
        ];
        let tj = Tributary::new(&atoms, &order, &[], 3);
        let mut full = Vec::new();
        tj.run(|asg| {
            full.push(asg.to_vec());
            true
        });
        assert!(!full.is_empty(), "graph has triangles");
        for bounds in [vec![0], vec![0, 2], vec![0, 1, 2, 3], vec![0, 3, 100]] {
            let mut pieced = Vec::new();
            for (i, &lo) in bounds.iter().enumerate() {
                let hi = bounds.get(i + 1).copied();
                tj.run_range(lo, hi, |asg| {
                    pieced.push(asg.to_vec());
                    true
                });
            }
            assert_eq!(pieced, full, "split {bounds:?}");
        }
        // A range that excludes everything emits nothing.
        assert_eq!(tj.run_range(200, Some(300), |_| true), 0);
    }

    #[test]
    #[should_panic(expected = "not in global order")]
    fn prepare_rejects_missing_var() {
        let a = Relation::from_rows(2, [[1u64, 2]].iter());
        let _ = SortedAtom::prepare(&a, &[v(0), v(5)], &[v(0), v(1)]);
    }

    #[test]
    #[should_panic(expected = "no atom contains")]
    fn order_var_without_atom_rejected() {
        let a = Relation::from_rows(1, [[1u64]].iter());
        let atoms = vec![SortedAtom::prepare(&a, &[v(0)], &[v(0), v(1)])];
        let _ = Tributary::new(&atoms, &[v(0), v(1)], &[], 2);
    }
}
