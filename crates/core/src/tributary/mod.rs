//! Tributary join — the Leapfrog Triejoin API over sorted arrays (§2.2).
//!
//! LogicBlox's LFTJ assumes relations preprocessed into B-trees. In a
//! parallel setting the relation fragments only exist *after* the shuffle,
//! so preprocessing is impossible; the Tributary join instead sorts each
//! fragment and implements the same iterator API over sorted arrays, with
//! `seek` as a binary search bounded to the current trie range — at most a
//! `log n` factor from LFTJ, hence still worst-case optimal up to `log n`.
//!
//! Pipeline:
//!
//! 1. fix a global variable order `A₁ ≺ A₂ ≺ … ≺ Aₖ` (see
//!    [`crate::order`] for choosing a good one);
//! 2. [`prepare`](SortedAtom::prepare) each relation: permute its columns
//!    to follow the order, sort lexicographically (the dominating cost —
//!    Table 5 of the paper);
//! 3. [`Tributary::run`]: recurse over the variables, leapfrog-intersecting
//!    the trie iterators of the atoms containing each variable.

mod btree;
mod columnar;
mod join;
mod trie;

pub use btree::{BTreeAtom, BTreeCursor};
pub use columnar::{lower_bound_gallop, ColumnarAtom, ColumnarCursor, ColumnarTrie};
pub use join::{order_columns, SortedAtom, Tributary, TrieAtom};
pub use trie::{TrieCursor, TrieIter};
