//! HyperCube share optimization (paper §2.1 and §4).
//!
//! The HyperCube shuffle factorizes the number of servers into *shares*
//! `p = p₁·p₂·…·pₖ`, one per join variable; each tuple of atom `Sⱼ` is
//! sent to every cell agreeing with its hashed coordinates on `vars(Sⱼ)`.
//! Choosing good shares is the crux: the theoretically optimal fractional
//! shares ([`ShareProblem::fractional`]) leave servers idle once rounded
//! down. This module implements the paper's four approaches:
//!
//! 1. **Round-down** of the LP solution ([`ShareProblem::round_down`]) —
//!    Naïve Algorithm 1 in the paper;
//! 2. **Many cells, random allocation** ([`cells`]) — Naïve Algorithm 2;
//! 3. an exact (tiny-instance) cell allocator standing in for the
//!    answer-set-programming Naïve Algorithm 3, which the paper found
//!    impractically slow;
//! 4. **Algorithm 1** ([`ShareProblem::optimize`]) — the paper's
//!    contribution: exhaustive search over all integral configurations
//!    with `∏ dᵢ ≤ N`, minimizing the expected max per-worker load, with
//!    an even-dimensions tie-break.

pub mod cells;
pub mod config;
pub mod shares;

pub use cells::CellAllocation;
pub use config::HcConfig;
pub use shares::{AtomShape, ShareProblem};
