//! Integral hypercube configurations.

use super::shares::ShareProblem;
use parjoin_query::VarId;
use std::fmt;

/// An integral hypercube configuration: one dimension size per variable.
///
/// `num_cells() = ∏ dims` cells are mapped one-to-one onto workers (the
/// paper's Algorithm 1 keeps one cell per worker; see
/// [`cells`](super::cells) for the many-cells variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HcConfig {
    vars: Vec<VarId>,
    dims: Vec<usize>,
}

impl HcConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if lengths differ or any dimension is zero.
    pub fn new(vars: Vec<VarId>, dims: Vec<usize>) -> Self {
        assert_eq!(vars.len(), dims.len(), "one dimension per variable");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        HcConfig { vars, dims }
    }

    /// The variables, aligned with [`Self::dims`].
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Dimension index of variable `v`, if it has one.
    pub fn dim_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Total number of cells `∏ dᵢ`.
    pub fn num_cells(&self) -> usize {
        self.dims.iter().product()
    }

    /// Largest dimension (Algorithm 1's tie-break key).
    pub fn max_dim(&self) -> usize {
        self.dims.iter().copied().max().unwrap_or(1)
    }

    /// Expected tuples assigned to a single worker under uniform hashing:
    /// `Σⱼ |Sⱼ| / ∏_{i ∈ vars(Sⱼ)} dᵢ` — the paper's `workload(c)`.
    pub fn workload(&self, problem: &ShareProblem) -> f64 {
        problem
            .atoms
            .iter()
            .map(|a| {
                let denom: f64 = a
                    .vars
                    .iter()
                    .map(|&v| self.dim_of(v).map_or(1.0, |d| self.dims[d] as f64))
                    .product();
                a.cardinality as f64 / denom
            })
            .sum()
    }

    /// Expected *total* tuples placed on the network: each tuple of atom
    /// `Sⱼ` is replicated to `∏_{i ∉ vars(Sⱼ)} dᵢ` cells.
    pub fn expected_tuples_shuffled(&self, problem: &ShareProblem) -> f64 {
        let cells = self.num_cells() as f64;
        problem
            .atoms
            .iter()
            .map(|a| {
                let hashed: f64 = a
                    .vars
                    .iter()
                    .map(|&v| self.dim_of(v).map_or(1.0, |d| self.dims[d] as f64))
                    .product();
                a.cardinality as f64 * (cells / hashed)
            })
            .sum()
    }

    /// Converts mixed-radix coordinates to a flat cell index.
    ///
    /// # Panics
    /// Panics (in debug builds) if a coordinate exceeds its dimension.
    #[inline]
    pub fn cell_index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut idx = 0usize;
        for (c, &d) in coords.iter().zip(&self.dims) {
            debug_assert!(*c < d, "coordinate out of range");
            idx = idx * d + c;
        }
        idx
    }

    /// Inverse of [`Self::cell_index`].
    pub fn cell_coords(&self, mut idx: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            out[i] = idx % self.dims[i];
            idx /= self.dims[i];
        }
        out
    }
}

impl fmt::Display for HcConfig {
    /// Formats as `d1xd2x…` (e.g. `2x4x2x4`, the paper's Q2 configuration).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dims: &[usize]) -> HcConfig {
        let vars = (0..dims.len() as u32).map(VarId).collect();
        HcConfig::new(vars, dims.to_vec())
    }

    #[test]
    fn cells_and_max_dim() {
        let c = cfg(&[4, 4, 4]);
        assert_eq!(c.num_cells(), 64);
        assert_eq!(c.max_dim(), 4);
    }

    #[test]
    fn cell_index_roundtrip() {
        let c = cfg(&[2, 3, 4]);
        for idx in 0..24 {
            let coords = c.cell_coords(idx);
            assert_eq!(c.cell_index(&coords), idx);
        }
    }

    #[test]
    fn cell_index_is_bijection() {
        let c = cfg(&[3, 5]);
        let mut seen = [false; 15];
        for a in 0..3 {
            for b in 0..5 {
                let i = c.cell_index(&[a, b]);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn workload_triangle_example() {
        // Paper §2.1: load per server is (|S1|+|S2|+|S3|)/p^(2/3) for the
        // 4×4×4 cube: each atom hashes 2 of 3 dims → card/16.
        use parjoin_query::QueryBuilder;
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        let p = ShareProblem::from_query(&b.build(), &[1600, 1600, 1600]);
        let c = HcConfig::new(p.vars.clone(), vec![4, 4, 4]);
        assert!((c.workload(&p) - 300.0).abs() < 1e-9); // 3·1600/16
                                                        // Replication: each tuple goes to 4 cells → 3·1600·4 total.
        assert!((c.expected_tuples_shuffled(&p) - 19200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        cfg(&[0, 2]);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", cfg(&[2, 4, 2, 4])), "2x4x2x4");
    }
}
