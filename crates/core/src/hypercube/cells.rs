//! Virtual-cell allocations (Naïve Algorithms 2 and 3, paper §4).
//!
//! To reduce rounding loss one can build the hypercube over `M ≫ N`
//! virtual *cells* and map cells onto the `N` physical workers. The
//! mapping matters enormously: a tuple of atom `Sⱼ` goes to every cell in
//! an axis-aligned slab, so a worker owning cells scattered across the
//! grid receives (nearly) the whole relation — Appendix B's Figure 18
//! example, reproduced by [`CellAllocation::random`] +
//! [`CellAllocation::worker_workload`]. An exact branch-and-bound
//! allocator ([`optimal_allocation`]) is provided for tiny instances to
//! demonstrate why the ASP-based Naïve Algorithm 3 cannot scale.

use super::config::HcConfig;
use super::shares::ShareProblem;
use rand_like::SplitMix;
use std::collections::BTreeSet;

/// A mapping of hypercube cells to physical workers.
#[derive(Debug, Clone)]
pub struct CellAllocation {
    /// The cell grid (usually from the LP shares at `M` cells,
    /// rounded down).
    pub grid: HcConfig,
    /// `owner[cell] = worker`.
    pub owner: Vec<usize>,
    /// Number of physical workers.
    pub workers: usize,
}

impl CellAllocation {
    /// Assigns every cell to a uniformly random worker (Naïve Algorithm 2).
    pub fn random(grid: HcConfig, workers: usize, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut rng = SplitMix::new(seed);
        let owner = (0..grid.num_cells()).map(|_| rng.below(workers)).collect();
        CellAllocation {
            grid,
            owner,
            workers,
        }
    }

    /// The identity allocation: one cell per worker (`M = N`).
    pub fn identity(grid: HcConfig) -> Self {
        let workers = grid.num_cells();
        CellAllocation {
            grid,
            owner: (0..workers).collect(),
            workers,
        }
    }

    /// Expected tuples received by each worker.
    ///
    /// A tuple of atom `Sⱼ` is hashed on `vars(Sⱼ)`; it reaches worker `w`
    /// iff `w` owns at least one cell whose projection onto those
    /// dimensions matches. Under uniform hashing the expected count is
    /// `|Sⱼ| · distinct_projections(w) / ∏_{i∈vars(Sⱼ)} dᵢ`.
    pub fn worker_workload(&self, problem: &ShareProblem) -> Vec<f64> {
        let dims = self.grid.dims();
        let mut loads = vec![0.0f64; self.workers];
        for atom in &problem.atoms {
            let atom_dims: Vec<usize> = atom
                .vars
                .iter()
                .filter_map(|&v| self.grid.dim_of(v))
                .collect();
            let hashed: f64 = atom_dims.iter().map(|&d| dims[d] as f64).product();
            // Distinct projected coordinates per worker.
            let mut proj: Vec<BTreeSet<Vec<usize>>> = vec![BTreeSet::new(); self.workers];
            for (cell, &w) in self.owner.iter().enumerate() {
                let coords = self.grid.cell_coords(cell);
                let key: Vec<usize> = atom_dims.iter().map(|&d| coords[d]).collect();
                proj[w].insert(key);
            }
            for (w, set) in proj.iter().enumerate() {
                loads[w] += atom.cardinality as f64 * set.len() as f64 / hashed;
            }
        }
        loads
    }

    /// The max per-worker workload (the optimization objective of §4).
    pub fn max_workload(&self, problem: &ShareProblem) -> f64 {
        self.worker_workload(problem)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// Expected total tuples shuffled under this allocation (sum of the
    /// per-worker loads — replication inflates this, Appendix B).
    pub fn total_workload(&self, problem: &ShareProblem) -> f64 {
        self.worker_workload(problem).into_iter().sum()
    }
}

/// Builds the many-cells grid for Naïve Algorithms 2/3: solve the LP at
/// `m_cells` and round down (the paper's step 1).
pub fn many_cells_grid(problem: &ShareProblem, m_cells: usize) -> HcConfig {
    problem.round_down(m_cells)
}

/// Exact optimal cell→worker allocation by branch and bound, minimizing
/// the max per-worker workload. Exponential in the number of cells — the
/// point of the paper's Naïve Algorithm 3 discussion is precisely that
/// this is hopeless at practical sizes (they measured > 24 h for N = 64,
/// M = 100 with a state-of-the-art ASP solver). Keep `cells ≤ ~12`.
pub fn optimal_allocation(
    grid: &HcConfig,
    workers: usize,
    problem: &ShareProblem,
) -> CellAllocation {
    let cells = grid.num_cells();
    assert!(
        cells <= 16,
        "exact allocation is exponential; use small grids"
    );
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut owner = vec![0usize; cells];
    fn rec(
        i: usize,
        owner: &mut Vec<usize>,
        grid: &HcConfig,
        workers: usize,
        problem: &ShareProblem,
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if i == owner.len() {
            let alloc = CellAllocation {
                grid: grid.clone(),
                owner: owner.clone(),
                workers,
            };
            let w = alloc.max_workload(problem);
            if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                *best = Some((w, owner.clone()));
            }
            return;
        }
        // Symmetry breaking: worker ids appear in first-use order.
        let used = owner[..i].iter().copied().max().map_or(0, |m| m + 1);
        for w in 0..=used.min(workers - 1) {
            owner[i] = w;
            rec(i + 1, owner, grid, workers, problem, best);
        }
    }
    rec(0, &mut owner, grid, workers, problem, &mut best);
    // `rec` always reaches the leaf at least once (the all-zeros
    // assignment), so the search records a best. xtask: allow(expect)
    let (_, owner) = best.expect("some allocation exists");
    CellAllocation {
        grid: grid.clone(),
        owner,
        workers,
    }
}

/// Tiny self-contained PRNG so this module needs no external dependency;
/// deterministic for reproducible experiments.
mod rand_like {
    /// SplitMix64.
    pub struct SplitMix(u64);

    impl SplitMix {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SplitMix(seed)
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::{QueryBuilder, VarId};

    fn chain_problem() -> ShareProblem {
        // Appendix B example: A(x,y,z,p) :- R(x,y), S(y,z), T(z,p).
        let mut b = QueryBuilder::new("A");
        let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, p]);
        ShareProblem::from_query(&b.build(), &[800, 800, 800])
    }

    fn grid_yz(dy: usize, dz: usize) -> HcConfig {
        // Dimensions only on y and z (x and p get share 1).
        HcConfig::new(
            vec![VarId(0), VarId(1), VarId(2), VarId(3)],
            vec![1, dy, dz, 1],
        )
    }

    #[test]
    fn identity_allocation_matches_config_workload() {
        let prob = chain_problem();
        let grid = grid_yz(2, 2);
        let alloc = CellAllocation::identity(grid.clone());
        let per = alloc.worker_workload(&prob);
        assert_eq!(per.len(), 4);
        let expect = grid.workload(&prob);
        for l in per {
            assert!((l - expect).abs() < 1e-9, "{l} vs {expect}");
        }
    }

    #[test]
    fn random_allocation_inflates_replication() {
        // Figure 18's lesson: with M=64 cells on 4 workers randomly
        // allocated, each worker covers most rows/columns, so R and T are
        // nearly fully replicated to every worker.
        let prob = chain_problem();
        let grid = grid_yz(8, 8);
        let ident_total = CellAllocation::identity(grid_yz(2, 2)).total_workload(&prob);
        let rand_total = CellAllocation::random(grid, 4, 42).total_workload(&prob);
        assert!(
            rand_total > 1.5 * ident_total,
            "random {rand_total} vs identity {ident_total}"
        );
    }

    #[test]
    fn random_allocation_deterministic_by_seed() {
        let g = grid_yz(4, 4);
        let a = CellAllocation::random(g.clone(), 4, 7);
        let b = CellAllocation::random(g, 4, 7);
        assert_eq!(a.owner, b.owner);
    }

    #[test]
    fn owners_in_range() {
        let a = CellAllocation::random(grid_yz(4, 4), 5, 99);
        assert!(a.owner.iter().all(|&w| w < 5));
        assert_eq!(a.owner.len(), 16);
    }

    #[test]
    fn optimal_allocation_beats_random_on_tiny_grid() {
        let prob = chain_problem();
        let grid = grid_yz(2, 4); // 8 cells
        let opt = optimal_allocation(&grid, 4, &prob);
        let rnd = CellAllocation::random(grid, 4, 123);
        assert!(opt.max_workload(&prob) <= rnd.max_workload(&prob) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn optimal_allocation_guards_size() {
        let prob = chain_problem();
        let grid = grid_yz(8, 8);
        let _ = optimal_allocation(&grid, 4, &prob);
    }
}
