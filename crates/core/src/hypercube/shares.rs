//! The share-optimization problem and its fractional LP relaxation.

use super::config::HcConfig;
use parjoin_lp::{Cmp, LpProblem};
use parjoin_query::{ConjunctiveQuery, VarId};

/// One atom's shape: which variables it mentions and how many tuples it
/// holds (after selection pushdown).
#[derive(Debug, Clone)]
pub struct AtomShape {
    /// Distinct variables of the atom.
    pub vars: Vec<VarId>,
    /// Cardinality of the (resolved) relation.
    pub cardinality: u64,
}

/// A share-optimization instance: the query hypergraph annotated with
/// cardinalities.
#[derive(Debug, Clone)]
pub struct ShareProblem {
    /// The variables receiving hypercube dimensions, in a fixed order.
    pub vars: Vec<VarId>,
    /// Atom shapes.
    pub atoms: Vec<AtomShape>,
}

impl ShareProblem {
    /// Builds the instance from a query and the per-atom cardinalities
    /// (in atom order). Every query variable gets a dimension; variables
    /// that should not be split simply receive share 1 from the optimizer.
    ///
    /// # Panics
    /// Panics if `cards.len() != q.atoms.len()`.
    pub fn from_query(q: &ConjunctiveQuery, cards: &[u64]) -> Self {
        assert_eq!(cards.len(), q.atoms.len(), "one cardinality per atom");
        let vars = q.all_vars();
        let atoms = q
            .atoms
            .iter()
            .zip(cards)
            .map(|(a, &c)| AtomShape {
                vars: a.vars(),
                cardinality: c,
            })
            .collect();
        ShareProblem { vars, atoms }
    }

    /// Index of `v` in `self.vars`.
    ///
    /// # Panics
    /// Panics if `v` is not a problem variable.
    pub fn dim_of(&self, v: VarId) -> usize {
        self.vars
            .iter()
            .position(|&x| x == v)
            // Documented API contract (see `# Panics`). xtask: allow(expect)
            .expect("variable not in share problem")
    }

    /// Solves the fractional share LP of Beame et al. \[8\]:
    ///
    /// minimize `t` subject to, for every atom `Sⱼ`,
    /// `Σ_{i ∈ vars(Sⱼ)} eᵢ + t ≥ log_p |Sⱼ|` and `Σᵢ eᵢ ≤ 1`, `eᵢ ≥ 0`.
    ///
    /// Writing shares as `pᵢ = p^{eᵢ}`, the constraint says every atom's
    /// per-server load `|Sⱼ| · p^{−Σeᵢ}` is at most `p^t`; minimizing `t`
    /// minimizes the max load. Returns the exponents `eᵢ`.
    ///
    /// # Panics
    /// Panics if `p < 2` (a 1-server "cluster" has no share problem).
    pub fn fractional(&self, p: usize) -> Vec<f64> {
        assert!(p >= 2, "need at least 2 servers for a share LP");
        let k = self.vars.len();
        let logp = (p as f64).ln();
        // Variables: e_0..e_{k-1}, then t (free).
        let mut lp = LpProblem::minimize(k + 1);
        let mut obj = vec![0.0; k + 1];
        obj[k] = 1.0;
        lp.objective(&obj);
        lp.set_free(k);
        for atom in &self.atoms {
            let mut row = vec![0.0; k + 1];
            for &v in &atom.vars {
                row[self.dim_of(v)] = 1.0;
            }
            row[k] = 1.0;
            let rhs = (atom.cardinality.max(1) as f64).ln() / logp;
            lp.constraint(&row, Cmp::Ge, rhs);
        }
        let mut budget = vec![1.0; k + 1];
        budget[k] = 0.0;
        lp.constraint(&budget, Cmp::Le, 1.0);
        // Feasible: all-equal shares satisfy every constraint; bounded:
        // the simplex is compact. xtask: allow(expect)
        let sol = lp.solve().expect("share LP is always feasible and bounded");
        sol.x[..k].to_vec()
    }

    /// The fractional shares `pᵢ = p^{eᵢ}` themselves.
    pub fn fractional_shares(&self, p: usize) -> Vec<f64> {
        self.fractional(p)
            .iter()
            .map(|e| (p as f64).powf(*e))
            .collect()
    }

    /// The per-worker workload (expected tuples) under fractional shares —
    /// the paper's "optimal workload" denominator in Figure 11.
    pub fn fractional_workload(&self, p: usize) -> f64 {
        let shares = self.fractional_shares(p);
        self.atoms
            .iter()
            .map(|a| {
                let denom: f64 = a.vars.iter().map(|&v| shares[self.dim_of(v)]).product();
                a.cardinality as f64 / denom
            })
            .sum()
    }

    /// Naïve Algorithm 1: round the fractional shares down to integers
    /// (each at least 1). As the paper shows, this can leave most servers
    /// unused — e.g. the 4-clique on 15 servers rounds 15^(1/4) ≈ 1.96 down
    /// to shares (1,1,1,1): one server, no parallelism.
    pub fn round_down(&self, p: usize) -> HcConfig {
        let dims = self
            .fractional_shares(p)
            .into_iter()
            .map(|s| (s + 1e-9).floor().max(1.0) as usize)
            .collect();
        HcConfig::new(self.vars.clone(), dims)
    }

    /// The paper's **Algorithm 1**: exhaustive search over all integral
    /// configurations `c` with `∏ dᵢ ≤ n_workers` for the one minimizing
    /// the expected per-worker workload; ties prefer the configuration
    /// with the smaller maximum dimension ("more even dimension sizes …
    /// more resilient to possible skew in either attribute value").
    ///
    /// Runs in well under 100 ms for the paper's queries at N = 64
    /// (validated by the `hypercube_config` Criterion bench).
    ///
    /// ```
    /// use parjoin_core::hypercube::ShareProblem;
    /// use parjoin_query::QueryBuilder;
    ///
    /// let mut b = QueryBuilder::new("T");
    /// let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    /// b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
    /// let problem = ShareProblem::from_query(&b.build(), &[1_000_000; 3]);
    ///
    /// // 64 workers: the classic 4×4×4 triangle cube.
    /// assert_eq!(problem.optimize(64).dims(), &[4, 4, 4]);
    /// // 63 workers: round-down would fall back to 3×3×3 (27 workers);
    /// // Algorithm 1 finds a strictly better integral configuration.
    /// let c63 = problem.optimize(63);
    /// assert!(c63.num_cells() > 27 && c63.num_cells() <= 63);
    /// ```
    ///
    /// # Panics
    /// Panics if `n_workers == 0`.
    pub fn optimize(&self, n_workers: usize) -> HcConfig {
        assert!(n_workers > 0, "need at least one worker");
        let k = self.vars.len();
        let mut dims = vec![1usize; k];
        let mut best: Option<(f64, usize, Vec<usize>)> = None; // (workload, max_dim, dims)
        self.search(0, n_workers, &mut dims, &mut best);
        // `search` always scores the all-ones grid. xtask: allow(expect)
        let (_, _, dims) = best.expect("at least the all-ones configuration exists");
        HcConfig::new(self.vars.clone(), dims)
    }

    fn search(
        &self,
        i: usize,
        budget: usize,
        dims: &mut Vec<usize>,
        best: &mut Option<(f64, usize, Vec<usize>)>,
    ) {
        if i == dims.len() {
            let cfg = HcConfig::new(self.vars.clone(), dims.clone());
            let wl = cfg.workload(self);
            let md = cfg.max_dim();
            let better = match best {
                None => true,
                Some((bwl, bmd, _)) => wl < *bwl - 1e-9 || ((wl - *bwl).abs() <= 1e-9 && md < *bmd),
            };
            if better {
                *best = Some((wl, md, dims.clone()));
            }
            return;
        }
        let mut d = 1;
        while d <= budget {
            dims[i] = d;
            self.search(i + 1, budget / d, dims, best);
            d += 1;
        }
        dims[i] = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parjoin_query::QueryBuilder;

    fn triangle_problem(m: u64) -> ShareProblem {
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        ShareProblem::from_query(&b.build(), &[m, m, m])
    }

    #[test]
    fn triangle_fractional_is_symmetric() {
        let p = triangle_problem(1000);
        let e = p.fractional(64);
        for v in &e {
            assert!((v - 1.0 / 3.0).abs() < 1e-6, "exponent {v}");
        }
        let shares = p.fractional_shares(64);
        for s in shares {
            assert!((s - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn triangle_round_down_64_is_4x4x4() {
        let cfg = triangle_problem(1000).round_down(64);
        assert_eq!(cfg.dims(), &[4, 4, 4]);
    }

    #[test]
    fn triangle_round_down_63_is_3x3x3() {
        // The paper's example: p=63 → 63^(1/3) ≈ 3.98 rounds down to 3,
        // wasting 63−27 = 36 servers.
        let cfg = triangle_problem(1_000_000).round_down(63);
        assert_eq!(cfg.dims(), &[3, 3, 3]);
    }

    #[test]
    fn algorithm1_triangle_64() {
        let p = triangle_problem(1_000_000);
        let cfg = p.optimize(64);
        assert_eq!(cfg.dims(), &[4, 4, 4]);
    }

    #[test]
    fn algorithm1_beats_round_down_at_63() {
        let p = triangle_problem(1_000_000);
        let ours = p.optimize(63);
        let naive = p.round_down(63);
        assert!(ours.workload(&p) < naive.workload(&p));
        // At 63 workers the best integral config keeps 3 dims whose
        // product is ≤ 63 but larger than 27, e.g. 4×4×3 = 48.
        assert!(ours.num_cells() > 27);
        assert!(ours.num_cells() <= 63);
    }

    #[test]
    fn skewed_sizes_prefer_hash_partition_shape() {
        // |S1| ≪ |S2| = |S3|: the optimum hash-partitions S2, S3 on x3 and
        // broadcasts S1 (paper §2.1): shares (1, 1, p).
        let mut b = QueryBuilder::new("T");
        let (x1, x2, x3) = (b.var("x1"), b.var("x2"), b.var("x3"));
        b.atom("S1", [x1, x2])
            .atom("S2", [x2, x3])
            .atom("S3", [x3, x1]);
        let p = ShareProblem::from_query(&b.build(), &[10, 1_000_000, 1_000_000]);
        let cfg = p.optimize(64);
        assert_eq!(cfg.dims(), &[1, 1, 64]);
    }

    #[test]
    fn four_clique_on_15_workers() {
        // The paper's §4 motivating example: round-down gives 1×1×1×1
        // (one worker!), Algorithm 1 finds something much better.
        let mut b = QueryBuilder::new("C4");
        let (x, y, z, pv) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
        b.atom("R", [x, y])
            .atom("S", [y, z])
            .atom("T", [z, pv])
            .atom("P", [pv, x])
            .atom("K", [x, z])
            .atom("L", [y, pv]);
        let m = 1_000_000;
        let prob = ShareProblem::from_query(&b.build(), &[m; 6]);
        let naive = prob.round_down(15);
        assert_eq!(naive.num_cells(), 1, "round-down collapses to one server");
        let ours = prob.optimize(15);
        assert!(ours.num_cells() > 1);
        assert!(ours.workload(&prob) < naive.workload(&prob) / 2.0);
    }

    #[test]
    fn four_clique_64_matches_paper_config() {
        // The paper's Q2 experiment uses a 2×4×2×4 cube on 64 workers;
        // Algorithm 1 must find a configuration of that shape (the exact
        // assignment of dims to variables is symmetric).
        let mut b = QueryBuilder::new("C4");
        let (x, y, z, pv) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
        b.atom("R", [x, y])
            .atom("S", [y, z])
            .atom("T", [z, pv])
            .atom("P", [pv, x])
            .atom("K", [x, z])
            .atom("L", [y, pv]);
        let m = 1_000_000;
        let prob = ShareProblem::from_query(&b.build(), &[m; 6]);
        let cfg = prob.optimize(64);
        let mut dims = cfg.dims().to_vec();
        dims.sort_unstable();
        assert_eq!(dims, vec![2, 2, 4, 4], "got {cfg}");
        assert_eq!(cfg.num_cells(), 64);
    }

    #[test]
    fn tie_break_prefers_even_dims() {
        // A(x,y) alone: any config with d_x·d_y = N has equal workload;
        // prefer the most even split (paper: 2×2 beats 1×4).
        let mut b = QueryBuilder::new("Q");
        let (x, y) = (b.var("x"), b.var("y"));
        b.atom("A", [x, y]);
        let prob = ShareProblem::from_query(&b.build(), &[1000]);
        let cfg = prob.optimize(4);
        assert_eq!(cfg.dims(), &[2, 2]);
    }

    #[test]
    fn workload_decreases_with_more_workers() {
        let p = triangle_problem(100_000);
        let w8 = p.optimize(8).workload(&p);
        let w64 = p.optimize(64).workload(&p);
        assert!(w64 < w8);
    }

    #[test]
    fn fractional_workload_is_lower_bound_like() {
        // The integral optimum can't beat the fractional max-load bound by
        // much, and must be within small constant factors for the triangle.
        let p = triangle_problem(1_000_000);
        let frac = p.fractional_workload(64);
        let ours = p.optimize(64).workload(&p);
        let ratio = ours / frac;
        assert!(ratio > 0.3 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        triangle_problem(10).optimize(0);
    }
}
