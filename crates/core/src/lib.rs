#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-core
//!
//! The paper's primary contribution, as a library:
//!
//! * [`hypercube`] — the HyperCube shuffle's share-optimization problem
//!   (§2.1, §4): the fractional LP of Beame–Koutris–Suciu, the naïve
//!   round-down and random-cell-allocation baselines, and **Algorithm 1**,
//!   the paper's practical exhaustive search over integral configurations.
//! * [`tributary`] — the Tributary join (§2.2): the Leapfrog-Triejoin API
//!   implemented over sorted arrays, worst-case optimal up to a `log n`
//!   factor, with `seek` as a bounded binary search.
//! * [`order`] — the global variable-order cost model (§5, Eq. 3–4) and
//!   the optimizer that enumerates/samples orders and picks the cheapest.
//! * [`queries`] — the paper's Q1–Q8 workload queries as a named
//!   registry, the single source of truth shared by the datagen specs,
//!   the serving front end, benches, and tests.
//!
//! The distributed execution itself (shuffles, plans, metrics) lives in
//! `parjoin-engine`; this crate is the pure algorithmic layer.

pub mod hypercube;
pub mod order;
pub mod queries;
pub mod tributary;

pub use hypercube::{HcConfig, ShareProblem};
pub use order::{best_order, OrderCostModel};
pub use tributary::{SortedAtom, Tributary};
