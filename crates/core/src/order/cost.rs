//! The Tributary-join cost model (paper §5.1, Eq. 3–4).

use super::stats::AtomStats;
use parjoin_common::Relation;
use parjoin_query::VarId;

/// A cost model instance: per-atom variable lists plus cached
/// distinct-projection statistics.
///
/// ```
/// use parjoin_common::Relation;
/// use parjoin_core::order::{best_order, OrderCostModel};
/// use parjoin_query::VarId;
///
/// let r = Relation::from_rows(2, (0..100u64).map(|i| [i % 5, i]).collect::<Vec<_>>());
/// let s = Relation::from_rows(2, (0..100u64).map(|i| [i, i % 7]).collect::<Vec<_>>());
/// let (x, y, z) = (VarId(0), VarId(1), VarId(2));
/// let model = OrderCostModel::from_atoms(&[(&r, vec![x, y]), (&s, vec![y, z])]);
/// let (order, cost) = best_order(&model, &[x, y, z]);
/// assert_eq!(order.len(), 3);
/// assert!(cost.is_finite() && cost > 0.0);
/// ```
pub struct OrderCostModel {
    atoms: Vec<(Vec<VarId>, AtomStats)>,
}

impl OrderCostModel {
    /// Builds the model from variables-only atoms (e.g. the output of
    /// selection pushdown). Statistics are computed eagerly, once.
    pub fn from_atoms(atoms: &[(&Relation, Vec<VarId>)]) -> Self {
        let atoms = atoms
            .iter()
            .map(|(rel, vars)| {
                assert_eq!(rel.arity(), vars.len(), "one variable per column");
                ((*vars).clone(), AtomStats::compute(rel))
            })
            .collect();
        OrderCostModel { atoms }
    }

    /// Estimates TJ's cost (number of binary-search-driven steps) for a
    /// global variable order.
    ///
    /// Step sizes follow Eq. 3:
    /// `S₁ = min_j V(Rⱼ, {φ(1)})` and, for `i > 1`,
    /// `Sᵢ = min_{φ(i) ∈ Rⱼ} V(Rⱼ, pᵢⱼ) / V(Rⱼ, pᵢ₋₁ⱼ)`
    /// where `pᵢⱼ` is the prefix of `Rⱼ`'s attributes among the first `i`
    /// order variables. The total cost unrolls Eq. 4's recursion
    /// `Cost_{≥i} = Sᵢ + Sᵢ·Cost_{≥i+1}` into `Σᵢ Πⱼ≤ᵢ Sⱼ`.
    ///
    /// Variables absent from every atom contribute nothing; the order must
    /// cover every variable some atom mentions, or prefixes go stale —
    /// callers pass complete orders.
    pub fn cost(&self, order: &[VarId]) -> f64 {
        // Per-atom running prefix mask.
        let mut masks: Vec<u32> = vec![0; self.atoms.len()];
        let mut total = 0.0f64;
        let mut prefix_product = 1.0f64;
        for &var in order {
            let mut step: f64 = f64::INFINITY;
            let mut any = false;
            for (ai, (vars, stats)) in self.atoms.iter().enumerate() {
                let Some(col) = vars.iter().position(|&v| v == var) else {
                    continue;
                };
                any = true;
                let new_mask = masks[ai] | (1u32 << col);
                let denom = stats.distinct(masks[ai]).max(1) as f64;
                let numer = stats.distinct(new_mask) as f64;
                step = step.min(numer / denom);
                masks[ai] = new_mask;
            }
            if !any {
                continue; // variable not joined here; no step
            }
            prefix_product *= step;
            total += prefix_product;
            if step == 0.0 {
                break; // empty intersection: nothing below contributes
            }
        }
        total
    }

    /// Number of atoms in the model.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Evaluates several orders and returns the best `(order, cost)` —
    /// used when `k!` is too large to enumerate (see
    /// [`sample_orders`](super::sample_orders)).
    ///
    /// # Panics
    /// Panics when `orders` is empty — there is no best of nothing.
    pub fn best_sampled(&self, orders: &[Vec<VarId>]) -> (Vec<VarId>, f64) {
        orders
            .iter()
            .map(|o| (o.clone(), self.cost(o)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // Documented API contract above. xtask: allow(expect)
            .expect("at least one order")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// R1(x1,x2), R2(x2,x3) — the §5.1 running example (Eq. 2 without R3).
    fn two_path() -> (Relation, Relation) {
        // R1: x2 has 2 distinct values; R2: x2 has 4, x3 fans out.
        let r1 = Relation::from_rows(2, [[1u64, 10], [2, 10], [3, 20]].iter());
        let r2 = Relation::from_rows(
            2,
            [[10u64, 100], [10, 101], [20, 100], [30, 102], [40, 103]].iter(),
        );
        (r1, r2)
    }

    #[test]
    fn step1_is_min_distinct_of_first_var() {
        let (r1, r2) = two_path();
        let m = OrderCostModel::from_atoms(&[(&r1, vec![v(0), v(1)]), (&r2, vec![v(1), v(2)])]);
        // Order x2 ≺ x1 ≺ x3: S1 = min(V(R1,{x2})=2, V(R2,{x2})=4) = 2.
        // S2 (x1, only in R1): V(R1,{x1,x2})/V(R1,{x2}) = 3/2.
        // S3 (x3, only in R2): V(R2,{x2,x3})/V(R2,{x2}) = 5/4.
        // Cost = 2 + 2·1.5 + 2·1.5·1.25 = 2 + 3 + 3.75 = 8.75.
        let c = m.cost(&[v(1), v(0), v(2)]);
        assert!((c - 8.75).abs() < 1e-9, "{c}");
    }

    #[test]
    fn cost_prefers_selective_first_variable() {
        // A relation with a highly selective join var vs a fanned one:
        // starting from the small active domain should cost less.
        let small = Relation::from_rows(2, [[1u64, 1], [1, 2], [1, 3]].iter());
        let big = Relation::from_rows(
            2,
            (0..30u64)
                .map(|i| [i % 3 + 1, i])
                .collect::<Vec<_>>()
                .iter(),
        );
        let m = OrderCostModel::from_atoms(&[(&small, vec![v(0), v(1)]), (&big, vec![v(0), v(2)])]);
        let c_good = m.cost(&[v(0), v(1), v(2)]);
        let c_bad = m.cost(&[v(1), v(2), v(0)]);
        assert!(c_good < c_bad, "good {c_good} bad {c_bad}");
    }

    #[test]
    fn empty_relation_zeroes_subtree() {
        let e = Relation::new(2);
        let m = OrderCostModel::from_atoms(&[(&e, vec![v(0), v(1)])]);
        assert_eq!(m.cost(&[v(0), v(1)]), 0.0);
    }

    #[test]
    fn best_order_finds_minimum() {
        let (r1, r2) = two_path();
        let m = OrderCostModel::from_atoms(&[(&r1, vec![v(0), v(1)]), (&r2, vec![v(1), v(2)])]);
        let vars = vec![v(0), v(1), v(2)];
        let (order, best_cost) = super::super::best_order(&m, &vars);
        // Verify optimality over the full enumeration by hand.
        let mut all = vec![];
        for o in super::super::sample_orders(&vars, 50, 3) {
            all.push(m.cost(&o));
        }
        for c in all {
            assert!(best_cost <= c + 1e-9);
        }
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn costs_monotone_in_cardinality() {
        // Scaling every relation up scales costs up.
        let small =
            Relation::from_rows(2, (0..10u64).map(|i| [i, i + 1]).collect::<Vec<_>>().iter());
        let large = Relation::from_rows(
            2,
            (0..100u64).map(|i| [i, i + 1]).collect::<Vec<_>>().iter(),
        );
        let ms = OrderCostModel::from_atoms(&[(&small, vec![v(0), v(1)])]);
        let ml = OrderCostModel::from_atoms(&[(&large, vec![v(0), v(1)])]);
        assert!(ml.cost(&[v(0), v(1)]) > ms.cost(&[v(0), v(1)]));
    }

    #[test]
    fn best_sampled_agrees_with_enumeration_on_small() {
        let (r1, r2) = two_path();
        let m = OrderCostModel::from_atoms(&[(&r1, vec![v(0), v(1)]), (&r2, vec![v(1), v(2)])]);
        let vars = vec![v(0), v(1), v(2)];
        let orders: Vec<Vec<VarId>> = super::super::sample_orders(&vars, 200, 1);
        let (_, sampled) = m.best_sampled(&orders);
        let (_, exact) = super::super::best_order(&m, &vars);
        // 200 samples of 6 orders will surely hit the optimum.
        assert!((sampled - exact).abs() < 1e-9);
    }
}
