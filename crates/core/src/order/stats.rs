//! Distinct-projection statistics.
//!
//! The cost model needs `V(Rⱼ, prefix)` — the number of distinct values of
//! the prefix of `Rⱼ`'s join attributes under a candidate global order
//! (§5.1). A distinct count is invariant under column permutation, so it
//! depends only on the column *subset*; we therefore precompute the count
//! for every nonempty subset once and answer any order's query by bitmask
//! lookup.

use parjoin_common::Relation;

/// All-subsets distinct counts for one relation.
#[derive(Debug, Clone)]
pub struct AtomStats {
    /// `counts[mask]` = distinct tuples of the projection onto the columns
    /// in `mask`; `counts[0] = 1` (the empty projection).
    counts: Vec<u64>,
    arity: usize,
}

impl AtomStats {
    /// Computes the statistics. Cost is `2^arity − 1` sort-based distinct
    /// counts.
    ///
    /// # Panics
    /// Panics if `rel.arity() > 12` (4096 subsets is the sanity bound).
    pub fn compute(rel: &Relation) -> Self {
        let arity = rel.arity();
        assert!(arity <= 12, "AtomStats limited to arity 12");
        let n = 1usize << arity;
        let mut counts = vec![0u64; n];
        counts[0] = 1;
        #[allow(clippy::needless_range_loop)] // mask doubles as the bit set
        for mask in 1..n {
            let cols: Vec<usize> = (0..arity).filter(|&c| mask & (1 << c) != 0).collect();
            counts[mask] = rel.project(&cols).distinct().len() as u64;
        }
        AtomStats { counts, arity }
    }

    /// Distinct count for the column subset `mask`.
    ///
    /// # Panics
    /// Panics if `mask` has bits beyond the arity.
    #[inline]
    pub fn distinct(&self, mask: u32) -> u64 {
        assert!(mask < (1u32 << self.arity), "mask out of range");
        self.counts[mask as usize]
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total row count, i.e. the distinct count over all columns (inputs
    /// are set-semantics).
    pub fn cardinality(&self) -> u64 {
        self.counts[self.counts.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_all_subsets() {
        let r = Relation::from_rows(2, [[1u64, 10], [1, 20], [2, 10]].iter());
        let s = AtomStats::compute(&r);
        assert_eq!(s.distinct(0b00), 1);
        assert_eq!(s.distinct(0b01), 2); // x ∈ {1, 2}
        assert_eq!(s.distinct(0b10), 2); // y ∈ {10, 20}
        assert_eq!(s.distinct(0b11), 3);
        assert_eq!(s.cardinality(), 3);
    }

    #[test]
    fn duplicates_collapse() {
        let r = Relation::from_rows(1, [[5u64], [5], [5]].iter());
        let s = AtomStats::compute(&r);
        assert_eq!(s.distinct(0b1), 1);
    }

    #[test]
    fn empty_relation() {
        let s = AtomStats::compute(&Relation::new(2));
        assert_eq!(s.distinct(0b11), 0);
        assert_eq!(s.distinct(0), 1);
    }

    #[test]
    #[should_panic(expected = "mask out of range")]
    fn mask_bounds_checked() {
        let s = AtomStats::compute(&Relation::new(2));
        let _ = s.distinct(0b100);
    }
}
