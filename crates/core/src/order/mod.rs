//! Variable-order optimization for the Tributary join (paper §5).
//!
//! TJ is worst-case optimal under *any* global variable order, but in
//! practice a bad order can be an order of magnitude slower (Table 7).
//! The paper's cost model estimates the number of binary searches TJ will
//! perform: at each step the size of the intersection of the active
//! domains bounds both the searches at that level and the branching into
//! the next level (Eq. 3), combined by the recursion
//! `Cost_{≥i} = Sᵢ + Sᵢ · Cost_{≥i+1}` (Eq. 4).
//!
//! The required statistics — the number of distinct *prefix* values
//! `V(Rⱼ, p)` — depend only on the projected column **set**, not the
//! order, so [`AtomStats`] caches all `2^arity` projection counts once per
//! atom; evaluating one candidate order is then `O(k · atoms)` arithmetic,
//! which makes exhaustive enumeration over `k!` orders cheap where the
//! paper sampled 20 random orders.

mod cost;
mod stats;

pub use cost::OrderCostModel;
pub use stats::AtomStats;

use parjoin_query::VarId;

/// Exhaustively finds the order with the least estimated cost.
///
/// # Panics
/// Panics if `vars.len() > 10` (10! ≈ 3.6 M orders is the sensible limit;
/// use [`OrderCostModel::best_sampled`] beyond that).
pub fn best_order(model: &OrderCostModel, vars: &[VarId]) -> (Vec<VarId>, f64) {
    assert!(
        vars.len() <= 10,
        "exhaustive order search limited to 10 variables"
    );
    let mut best: Option<(Vec<VarId>, f64)> = None;
    let mut perm = vars.to_vec();
    permute(&mut perm, 0, &mut |order| {
        let c = model.cost(order);
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            best = Some((order.to_vec(), c));
        }
    });
    // `permute` invokes the closure at least once (even for an empty
    // variable list), so `best` is always set. xtask: allow(expect)
    best.expect("at least one order")
}

/// Heap-style permutation enumeration (recursive swap form).
fn permute<F: FnMut(&[VarId])>(v: &mut Vec<VarId>, i: usize, f: &mut F) {
    if i == v.len() {
        f(v);
        return;
    }
    for j in i..v.len() {
        v.swap(i, j);
        permute(v, i + 1, f);
        v.swap(i, j);
    }
}

/// Deterministically samples `n` random orders of `vars` (Fisher–Yates
/// with a seeded SplitMix64) — the paper's Figure 12 protocol uses 20.
pub fn sample_orders(vars: &[VarId], n: usize, seed: u64) -> Vec<Vec<VarId>> {
    let mut state = seed ^ 0x6a09_e667_f3bc_c908;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let mut v = vars.to_vec();
            for i in (1..v.len()).rev() {
                let j = ((next() as u128 * (i as u128 + 1)) >> 64) as usize;
                v.swap(i, j);
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn permute_counts_factorial() {
        let mut count = 0;
        let mut v = vs(4);
        permute(&mut v, 0, &mut |_| count += 1);
        assert_eq!(count, 24);
    }

    #[test]
    fn permute_yields_distinct_orders() {
        let mut seen = std::collections::BTreeSet::new();
        let mut v = vs(3);
        permute(&mut v, 0, &mut |o| {
            seen.insert(o.to_vec());
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn sample_orders_are_permutations() {
        let orders = sample_orders(&vs(5), 10, 42);
        assert_eq!(orders.len(), 10);
        for o in orders {
            let mut s = o.clone();
            s.sort();
            assert_eq!(s, vs(5));
        }
    }

    #[test]
    fn sample_orders_deterministic() {
        assert_eq!(sample_orders(&vs(6), 5, 7), sample_orders(&vs(6), 5, 7));
        assert_ne!(sample_orders(&vs(6), 5, 7), sample_orders(&vs(6), 5, 8));
    }
}
