//! The paper's eight workload queries (§3 and Appendix A) as a named
//! registry — the single source of truth for their shapes.
//!
//! Every consumer of Q1–Q8 (the datagen workload specs, the serving
//! front end, benches, and tests) builds the [`ConjunctiveQuery`] through
//! [`build`] (keyed by the paper name `"Q1"` … `"Q8"`), so a query's atom
//! list, head, and filters can never drift between the batch and served
//! paths. Dataset wiring (which database a query runs on, scales,
//! generators) stays in `parjoin-datagen`; this module is purely the
//! query shapes.

use parjoin_query::{CmpOp, ConjunctiveQuery, QueryBuilder, Term};

/// Dictionary id of the name "Joe Pesci" (Q3's selection constant).
pub const NAME_JOE_PESCI: u64 = 5_000_000_001;
/// Dictionary id of the name "Robert De Niro" (Q3's selection constant).
pub const NAME_DE_NIRO: u64 = 5_000_000_002;
/// Dictionary id of the name "The Academy Awards" (Q7's selection
/// constant).
pub const NAME_ACADEMY_AWARDS: u64 = 5_000_000_003;

/// The paper names of the eight workload queries, in paper order.
pub const NAMES: [&str; 8] = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"];

/// Builds a workload query by its paper name (`"Q1"` … `"Q8"`).
/// Returns `None` for unknown names.
pub fn build(name: &str) -> Option<ConjunctiveQuery> {
    match name {
        "Q1" => Some(q1()),
        "Q2" => Some(q2()),
        "Q3" => Some(q3()),
        "Q4" => Some(q4()),
        "Q5" => Some(q5()),
        "Q6" => Some(q6()),
        "Q7" => Some(q7()),
        "Q8" => Some(q8()),
        _ => None,
    }
}

/// Q1 — all directed triangles in Twitter (§3.1).
pub fn q1() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("Triangle");
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, x]);
    b.build()
}

/// Q2 — all 4-cliques in Twitter (§3.2).
pub fn q2() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("Clique4");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, p])
        .atom("Twitter", [p, x])
        .atom("Twitter", [x, z])
        .atom("Twitter", [y, p]);
    b.build()
}

/// Q3 — cast members of films starring both Joe Pesci and Robert De Niro
/// (§3.3). Acyclic, 8 atoms, tiny selections.
pub fn q3() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("CastMember");
    let a1 = b.var("a1");
    let p1 = b.var("p1");
    let film = b.var("film");
    let a2 = b.var("a2");
    let p2 = b.var("p2");
    let p = b.var("p");
    let cast = b.var("cast");
    b.atom_terms("ObjectName", [Term::Var(a1), Term::Const(NAME_JOE_PESCI)])
        .atom("ActorPerform", [a1, p1])
        .atom("PerformFilm", [p1, film])
        .atom_terms("ObjectName", [Term::Var(a2), Term::Const(NAME_DE_NIRO)])
        .atom("ActorPerform", [a2, p2])
        .atom("PerformFilm", [p2, film])
        .atom("PerformFilm", [p, film])
        .atom("ActorPerform", [cast, p])
        .head([cast]);
    b.build()
}

/// Q4 — pairs of actors co-starring in at least two films (§3.4).
/// Cyclic, 8 atoms, huge intermediates under a regular shuffle.
pub fn q4() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("ActorPairs");
    let a1 = b.var("a1");
    let p1 = b.var("p1");
    let f1 = b.var("f1");
    let p2 = b.var("p2");
    let a2 = b.var("a2");
    let p3 = b.var("p3");
    let f2 = b.var("f2");
    let p4 = b.var("p4");
    b.atom("ActorPerform", [a1, p1])
        .atom("PerformFilm", [p1, f1])
        .atom("PerformFilm", [p2, f1])
        .atom("ActorPerform", [a2, p2])
        .atom("ActorPerform", [a2, p3])
        .atom("PerformFilm", [p3, f2])
        .atom("PerformFilm", [p4, f2])
        .atom("ActorPerform", [a1, p4])
        .head([a1, a2])
        .filter_vv(f1, CmpOp::Gt, f2);
    b.build()
}

/// Q5 — directed rectangles (4-cycles) in Twitter (Appendix A).
pub fn q5() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("Rectangle");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, p])
        .atom("Twitter", [p, x]);
    b.build()
}

/// Q6 — "two rings": back-to-back triangles (Appendix A).
pub fn q6() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("TwoRings");
    let (x, y, z, p) = (b.var("x"), b.var("y"), b.var("z"), b.var("p"));
    b.atom("Twitter", [x, y])
        .atom("Twitter", [y, z])
        .atom("Twitter", [z, p])
        .atom("Twitter", [p, x])
        .atom("Twitter", [x, z]);
    b.build()
}

/// Q7 — actors winning Academy Awards in the 1990s (Appendix A).
/// Acyclic star with range filters.
pub fn q7() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("OscarWinners");
    let aw = b.var("aw");
    let h = b.var("h");
    let a = b.var("a");
    let y = b.var("y");
    b.atom_terms(
        "ObjectName",
        [Term::Var(aw), Term::Const(NAME_ACADEMY_AWARDS)],
    )
    .atom("HonorAward", [h, aw])
    .atom("HonorActor", [h, a])
    .atom("HonorYear", [h, y])
    .head([a])
    .filter_vc(y, CmpOp::Ge, 1990)
    .filter_vc(y, CmpOp::Lt, 2000);
    b.build()
}

/// Q8 — actor/director pairs appearing together in two films
/// (Appendix A). Cyclic, 6 atoms.
pub fn q8() -> ConjunctiveQuery {
    let mut b = QueryBuilder::new("ActorDirector");
    let a = b.var("a");
    let p1 = b.var("p1");
    let p2 = b.var("p2");
    let f1 = b.var("f1");
    let f2 = b.var("f2");
    let d = b.var("d");
    b.atom("ActorPerform", [a, p1])
        .atom("ActorPerform", [a, p2])
        .atom("PerformFilm", [p1, f1])
        .atom("PerformFilm", [p2, f2])
        .atom("DirectorFilm", [d, f1])
        .atom("DirectorFilm", [d, f2])
        .head([a, d]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_names_and_rejects_unknown() {
        for name in NAMES {
            let q = build(name).expect("registered");
            assert!(!q.atoms.is_empty(), "{name}");
        }
        assert!(build("Q9").is_none());
        assert!(build("q1").is_none(), "names are case-sensitive");
    }

    #[test]
    fn registry_matches_direct_constructors() {
        let direct = [q1(), q2(), q3(), q4(), q5(), q6(), q7(), q8()];
        for (name, q) in NAMES.iter().zip(direct) {
            let via = build(name).expect("registered");
            assert_eq!(format!("{via}"), format!("{q}"), "{name}");
        }
    }

    #[test]
    fn atom_counts_match_table6() {
        let expect = [3usize, 6, 8, 8, 4, 5, 4, 6];
        for (name, n) in NAMES.iter().zip(expect) {
            let q = build(name).expect("registered");
            assert_eq!(q.atoms.len(), n, "{name}");
        }
    }
}
