//! Property tests: Tributary join vs a naive evaluator; trie-layout
//! parity (row arrays vs B-trees vs the columnar level-segmented trie);
//! Algorithm 1 optimality within the integral frontier; cost-model
//! sanity.

use parjoin_common::{Relation, Value};
use parjoin_core::hypercube::{HcConfig, ShareProblem};
use parjoin_core::order::OrderCostModel;
use parjoin_core::tributary::{
    lower_bound_gallop, BTreeAtom, ColumnarAtom, SortedAtom, Tributary, TrieAtom, TrieCursor,
    TrieIter,
};
use parjoin_query::{QueryBuilder, VarId};
use proptest::prelude::*;

fn v(i: u32) -> VarId {
    VarId(i)
}

fn arb_edges(max_node: u64, max_edges: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..max_node, 0..max_node), 0..=max_edges).prop_map(|rows| {
        let rel = Relation::from_rows(2, rows.iter().map(|&(a, b)| [a, b]).collect::<Vec<_>>());
        rel.distinct() // set semantics, as documented
    })
}

/// Naive nested-loop join over variables-only binary atoms.
fn naive(atoms: &[(&Relation, [VarId; 2])], num_vars: usize) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    let mut asg: Vec<Option<Value>> = vec![None; num_vars];
    fn rec(
        i: usize,
        atoms: &[(&Relation, [VarId; 2])],
        asg: &mut Vec<Option<Value>>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if i == atoms.len() {
            out.push(asg.iter().map(|o| o.unwrap()).collect());
            return;
        }
        let (rel, vars) = &atoms[i];
        'rows: for row in rel.rows() {
            let saved = asg.clone();
            for (c, &var) in vars.iter().enumerate() {
                match asg[var.index()] {
                    Some(x) if x != row[c] => {
                        *asg = saved;
                        continue 'rows;
                    }
                    _ => asg[var.index()] = Some(row[c]),
                }
            }
            rec(i + 1, atoms, asg, out);
            *asg = saved;
        }
    }
    rec(0, atoms, &mut asg, &mut out);
    out.sort();
    out.dedup();
    out
}

fn tj(atoms: &[(&Relation, [VarId; 2])], order: &[VarId], num_vars: usize) -> Vec<Vec<Value>> {
    let prepared: Vec<SortedAtom> = atoms
        .iter()
        .map(|(r, vs)| SortedAtom::prepare(r, vs, order))
        .collect();
    let t = Tributary::new(&prepared, order, &[], num_vars);
    let mut out = Vec::new();
    t.run(|a| {
        out.push(a.to_vec());
        true
    });
    out.sort();
    out
}

/// Drives a trie cursor through a fixed script — enumerate every
/// level-0 key, and under each one open level 1 and apply the given
/// seek targets — recording every observed key (`u64::MAX` marks a seek
/// that ran off the end of its level). Two cursor implementations over
/// the same relation must produce identical traces.
fn seek_trace<C: TrieCursor>(c: &mut C, targets: &[Value]) -> Vec<Value> {
    let mut trace = Vec::new();
    c.open();
    while !c.at_end() {
        trace.push(c.key());
        c.open();
        for &t in targets {
            if c.at_end() {
                trace.push(Value::MAX);
                break;
            }
            c.seek(t);
            trace.push(if c.at_end() { Value::MAX } else { c.key() });
        }
        c.up();
        c.next_key();
    }
    trace
}

/// The same trace computed from first principles with plain binary
/// search (`partition_point`) over the distinct-value lists — the
/// pre-galloping reference the `TrieIter` seek must agree with.
fn seek_trace_reference(rel: &Relation, targets: &[Value]) -> Vec<Value> {
    let mut trace = Vec::new();
    let mut keys0: Vec<Value> = rel.rows().map(|r| r[0]).collect();
    keys0.dedup();
    for k in keys0 {
        trace.push(k);
        let keys1: Vec<Value> = {
            let mut v: Vec<Value> = rel.rows().filter(|r| r[0] == k).map(|r| r[1]).collect();
            v.dedup();
            v
        };
        let mut idx = 0usize;
        for &t in targets {
            if idx >= keys1.len() {
                trace.push(Value::MAX);
                break;
            }
            // seek is a no-op when the cursor already sits at a key >= t
            // and never moves backward.
            if keys1[idx] < t {
                idx += keys1[idx..].partition_point(|&x| x < t);
            }
            trace.push(*keys1.get(idx).unwrap_or(&Value::MAX));
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn galloping_seek_agrees_with_binary_search(
        edges in arb_edges(60, 90),
        targets in proptest::collection::vec(0u64..70, 1..8),
    ) {
        // `distinct()` output is sorted, so TrieIter accepts it as-is.
        let want = seek_trace_reference(&edges, &targets);
        let mut it = TrieIter::new(&edges);
        prop_assert_eq!(seek_trace(&mut it, &targets), want);
    }

    #[test]
    fn btree_seek_agrees_with_array_seek(
        edges in arb_edges(60, 90),
        targets in proptest::collection::vec(0u64..70, 1..8),
    ) {
        let order = [v(0), v(1)];
        let vars = [v(0), v(1)];
        let arr = SortedAtom::prepare(&edges, &vars, &order);
        let bt = BTreeAtom::prepare(&edges, &vars, &order);
        let arr_trace = seek_trace(&mut TrieIter::new(arr.relation()), &targets);
        let bt_trace = seek_trace(&mut bt.cursor(), &targets);
        prop_assert_eq!(arr_trace, bt_trace);
    }

    #[test]
    fn btree_tributary_equals_array_tributary(edges in arb_edges(12, 60)) {
        // The B-tree-backed LFTJ (LogicBlox's layout) and the
        // array-backed Tributary join must produce identical results.
        let order = [v(0), v(1), v(2)];
        let specs: [(&parjoin_common::Relation, [VarId; 2]); 3] = [
            (&edges, [v(0), v(1)]),
            (&edges, [v(1), v(2)]),
            (&edges, [v(2), v(0)]),
        ];
        let arr: Vec<SortedAtom> =
            specs.iter().map(|(r, vs)| SortedAtom::prepare(r, vs, &order)).collect();
        let bt: Vec<BTreeAtom> =
            specs.iter().map(|(r, vs)| BTreeAtom::prepare(r, vs, &order)).collect();
        let mut a_out = Vec::new();
        Tributary::new(&arr, &order, &[], 3).run(|x| { a_out.push(x.to_vec()); true });
        let mut b_out = Vec::new();
        Tributary::new(&bt, &order, &[], 3).run(|x| { b_out.push(x.to_vec()); true });
        a_out.sort();
        b_out.sort();
        prop_assert_eq!(a_out, b_out);
    }
}

// A second block: `proptest!` is recursive over its items and hits the
// compiler's macro recursion limit when every property lives in one
// invocation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_seek_agrees_with_array_and_btree_seek(
        edges in arb_edges(60, 90),
        targets in proptest::collection::vec(0u64..70, 1..8),
    ) {
        // Three trie layouts over the same relation must trace
        // identically: row-major arrays (TrieIter), B-trees, and the
        // level-segmented columnar layout with its chunked gallop.
        let order = [v(0), v(1)];
        let vars = [v(0), v(1)];
        let arr = SortedAtom::prepare(&edges, &vars, &order);
        let bt = BTreeAtom::prepare(&edges, &vars, &order);
        let col = ColumnarAtom::prepare(&edges, &vars, &order);
        let arr_trace = seek_trace(&mut TrieIter::new(arr.relation()), &targets);
        prop_assert_eq!(&seek_trace(&mut col.cursor(), &targets), &arr_trace);
        prop_assert_eq!(&seek_trace(&mut bt.cursor(), &targets), &arr_trace);
    }

    #[test]
    fn columnar_gallop_agrees_with_partition_point(
        raw in proptest::collection::vec(0u64..200, 0..120),
        start in 0usize..32,
        target in 0u64..220,
    ) {
        let mut xs = raw;
        xs.sort_unstable();
        xs.dedup();
        let start = start.min(xs.len());
        let want = start + xs[start..].partition_point(|&x| x < target);
        prop_assert_eq!(lower_bound_gallop(&xs, start, target), want);
    }

    #[test]
    fn columnar_tributary_equals_array_tributary(edges in arb_edges(12, 60)) {
        // The columnar level-segmented trie and the row-major sorted
        // arrays must drive Tributary to identical results.
        let order = [v(0), v(1), v(2)];
        let specs: [(&parjoin_common::Relation, [VarId; 2]); 3] = [
            (&edges, [v(0), v(1)]),
            (&edges, [v(1), v(2)]),
            (&edges, [v(2), v(0)]),
        ];
        let arr: Vec<SortedAtom> =
            specs.iter().map(|(r, vs)| SortedAtom::prepare(r, vs, &order)).collect();
        let col: Vec<ColumnarAtom> =
            specs.iter().map(|(r, vs)| ColumnarAtom::prepare(r, vs, &order)).collect();
        let mut a_out = Vec::new();
        Tributary::new(&arr, &order, &[], 3).run(|x| { a_out.push(x.to_vec()); true });
        let mut c_out = Vec::new();
        Tributary::new(&col, &order, &[], 3).run(|x| { c_out.push(x.to_vec()); true });
        // Emission order must match too, not just the set of rows —
        // morsel outputs concatenate by position downstream.
        prop_assert_eq!(a_out, c_out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triangle_tj_equals_naive(edges in arb_edges(12, 60)) {
        let atoms = [
            (&edges, [v(0), v(1)]),
            (&edges, [v(1), v(2)]),
            (&edges, [v(2), v(0)]),
        ];
        let want = naive(&atoms, 3);
        for order in [[v(0), v(1), v(2)], [v(2), v(1), v(0)], [v(1), v(0), v(2)]] {
            prop_assert_eq!(&tj(&atoms, &order, 3), &want);
        }
    }

    #[test]
    fn two_atom_join_tj_equals_naive(a in arb_edges(10, 40), b in arb_edges(10, 40)) {
        let atoms = [(&a, [v(0), v(1)]), (&b, [v(1), v(2)])];
        let want = naive(&atoms, 3);
        for order in [[v(0), v(1), v(2)], [v(1), v(0), v(2)], [v(2), v(1), v(0)]] {
            prop_assert_eq!(&tj(&atoms, &order, 3), &want);
        }
    }

    #[test]
    fn four_cycle_tj_equals_naive(edges in arb_edges(8, 40)) {
        let atoms = [
            (&edges, [v(0), v(1)]),
            (&edges, [v(1), v(2)]),
            (&edges, [v(2), v(3)]),
            (&edges, [v(3), v(0)]),
        ];
        let want = naive(&atoms, 4);
        prop_assert_eq!(&tj(&atoms, &[v(0), v(1), v(2), v(3)], 4), &want);
        prop_assert_eq!(&tj(&atoms, &[v(2), v(0), v(3), v(1)], 4), &want);
    }

    #[test]
    fn algorithm1_dominates_frontier(
        cards in proptest::collection::vec(1u64..1_000_000, 3),
        n in 2usize..70,
    ) {
        // For the triangle, Algorithm 1's choice must be at least as good
        // as any sampled integral configuration with ≤ n cells.
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        let prob = ShareProblem::from_query(&b.build(), &cards);
        let chosen = prob.optimize(n);
        let w = chosen.workload(&prob);
        prop_assert!(chosen.num_cells() <= n);
        for d1 in 1..=n {
            for d2 in 1..=(n / d1) {
                let d3 = n / (d1 * d2);
                if d3 == 0 { continue; }
                let cfg = HcConfig::new(prob.vars.clone(), vec![d1, d2, d3]);
                prop_assert!(
                    w <= cfg.workload(&prob) + 1e-6,
                    "cfg {:?} beats chosen {:?}", cfg.dims(), chosen.dims()
                );
            }
        }
    }

    #[test]
    fn cost_model_nonnegative_and_finite(a in arb_edges(10, 40), b in arb_edges(10, 40)) {
        let m = OrderCostModel::from_atoms(&[
            (&a, vec![v(0), v(1)]),
            (&b, vec![v(1), v(2)]),
        ]);
        for order in [[v(0), v(1), v(2)], [v(1), v(2), v(0)], [v(2), v(0), v(1)]] {
            let c = m.cost(&order);
            prop_assert!(c >= 0.0 && c.is_finite());
        }
    }

    #[test]
    fn round_down_never_exceeds_budget(
        cards in proptest::collection::vec(1u64..1_000_000, 3),
        n in 2usize..100,
    ) {
        let mut b = QueryBuilder::new("T");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        let prob = ShareProblem::from_query(&b.build(), &cards);
        prop_assert!(prob.round_down(n).num_cells() <= n);
    }
}
