#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task so far is `lint`: a source scan that bans `.unwrap()`,
//! `.expect(`, and `panic!(` in non-test production code, reporting each
//! violation as `file:line: …`. Rust's own lint machinery cannot express
//! "no unwrap outside tests" across a workspace without nightly-only
//! tool lints, so this small scanner enforces it in CI instead.
//!
//! What counts as non-test production code:
//!
//! * files under each crate's `src/`, excluding `vendor/`, `tests/`,
//!   `benches/`, `examples/` and the `xtask` crate itself;
//! * minus `#[cfg(test)]` modules (tracked by brace depth);
//! * minus comments (`//`, `///`, `//!`) and doc-comment code fences.
//!
//! Besides the panic family, three concurrency lints guard the
//! parallel-execution layer (the lines a data race or a leaked thread
//! would hide in):
//!
//! * **ordering** — `Ordering::Relaxed` / `Ordering::SeqCst` outside
//!   `crates/obs` (whose counters are relaxed by design). Relaxed is
//!   almost always a proof obligation and `SeqCst` is almost always a
//!   shrug; both need a written justification.
//! * **channel-capacity** — a bare integer literal as the capacity of a
//!   `sync_channel`. Capacities are backpressure policy; they belong in
//!   a named constant (or config field) with a comment, not inline.
//! * **spawn** — a `spawn(` call not made through a scope handle named
//!   `scope` (scoped threads are joined by their scope). Free-standing
//!   handles must be joined or their detachment documented.
//!
//! A line may opt out with an `// xtask: allow(panic)` marker (covers
//! `.unwrap()` and `panic!`), `// xtask: allow(expect)` (covers
//! `.expect(`), `// xtask: allow(ordering)`, `// xtask:
//! allow(channel-capacity)`, or `// xtask: allow(spawn)` on the same
//! line or the line directly above — reserved for cases where the
//! surrounding comment states the proof (e.g. why relaxed ordering is
//! sound, or where the handle is joined).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!("usage: cargo xtask lint");
            if let Some(o) = other {
                eprintln!("unknown task: {o}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Scans production sources for banned constructs; returns failure if
/// any violation is found.
fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_sources(&root.join("src"), &mut files);
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            if entry.path().file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            collect_sources(&entry.path().join("src"), &mut files);
        }
    }
    files.sort();

    let mut report = String::new();
    let mut violations = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        let in_obs = file
            .strip_prefix(&root)
            .is_ok_and(|rel| rel.starts_with(Path::new("crates").join("obs")));
        for v in scan_with(&text, in_obs) {
            let rel = file.strip_prefix(&root).unwrap_or(file);
            let _ = writeln!(report, "{}:{}: {}", rel.display(), v.line, v.what);
            violations += 1;
        }
    }

    if violations > 0 {
        eprint!("{report}");
        eprintln!(
            "xtask lint: {violations} violation(s) in {} file(s) scanned",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("xtask lint: clean ({} files scanned)", files.len());
        ExitCode::SUCCESS
    }
}

/// The workspace root: the directory holding the top-level Cargo.toml.
/// `cargo xtask` runs with the crate dir as cwd only under `cargo run
/// -p`; rely on the manifest-dir env var and walk two levels up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One banned construct occurrence.
struct Violation {
    line: usize,
    what: &'static str,
}

/// [`scan_with`] outside the obs exemption — the common case, kept as
/// the test-suite entry point.
#[cfg(test)]
fn scan(text: &str) -> Vec<Violation> {
    scan_with(text, false)
}

/// Line-based scan of one file. Tracks `#[cfg(test)]` modules by brace
/// depth and skips comment lines; string literals are not parsed (none
/// of the banned tokens appear in the workspace's string data).
/// `in_obs` exempts the file from the ordering lint: the observability
/// crate's counters are relaxed atomics by design.
fn scan_with(text: &str, in_obs: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    // Depth of the enclosing `#[cfg(test)]` block, if inside one.
    let mut depth: i64 = 0;
    let mut test_block_depth: Option<i64> = None;
    let mut pending_cfg_test = false;

    let mut allow_panic_next = false;
    let mut allow_expect_next = false;
    let mut allow_ordering_next = false;
    let mut allow_channel_next = false;
    let mut allow_spawn_next = false;
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim();

        if test_block_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && trimmed.contains('{') {
            // The `mod tests {` (or fn) line following the attribute.
            test_block_depth = Some(depth);
            pending_cfg_test = false;
        }

        let allow_panic =
            std::mem::take(&mut allow_panic_next) || raw.contains("xtask: allow(panic)");
        let allow_expect =
            std::mem::take(&mut allow_expect_next) || raw.contains("xtask: allow(expect)");
        let allow_ordering =
            std::mem::take(&mut allow_ordering_next) || raw.contains("xtask: allow(ordering)");
        let allow_channel = std::mem::take(&mut allow_channel_next)
            || raw.contains("xtask: allow(channel-capacity)");
        let allow_spawn =
            std::mem::take(&mut allow_spawn_next) || raw.contains("xtask: allow(spawn)");
        if raw.trim_start().starts_with("//") {
            // A standalone marker line covers the next source line
            // (rustfmt's preferred placement).
            if raw.contains("xtask: allow(panic)") {
                allow_panic_next = true;
            }
            if raw.contains("xtask: allow(expect)") {
                allow_expect_next = true;
            }
            if raw.contains("xtask: allow(ordering)") {
                allow_ordering_next = true;
            }
            if raw.contains("xtask: allow(channel-capacity)") {
                allow_channel_next = true;
            }
            if raw.contains("xtask: allow(spawn)") {
                allow_spawn_next = true;
            }
        }

        if test_block_depth.is_none() && !trimmed.is_empty() {
            if !allow_panic {
                if trimmed.contains(".unwrap()") {
                    out.push(Violation {
                        line: i + 1,
                        what: "banned call to `.unwrap()`",
                    });
                }
                if trimmed.contains("panic!(") {
                    out.push(Violation {
                        line: i + 1,
                        what: "banned `panic!` invocation",
                    });
                }
            }
            // The leading dot keeps `#[expect(...)]` attributes and
            // `.expect_err(` out of scope.
            if !allow_expect && trimmed.contains(".expect(") {
                out.push(Violation {
                    line: i + 1,
                    what: "banned call to `.expect(` (return a typed error instead)",
                });
            }
            if !in_obs
                && !allow_ordering
                && (trimmed.contains("Ordering::Relaxed") || trimmed.contains("Ordering::SeqCst"))
            {
                out.push(Violation {
                    line: i + 1,
                    what: "atomic ordering outside crates/obs needs `// xtask: allow(ordering)` \
                           with a justification",
                });
            }
            if !allow_channel && literal_channel_capacity(trimmed) {
                out.push(Violation {
                    line: i + 1,
                    what: "bounded-channel capacity must be a named constant, not a literal \
                           (or `// xtask: allow(channel-capacity)`)",
                });
            }
            if !allow_spawn && unscoped_spawn(trimmed) {
                out.push(Violation {
                    line: i + 1,
                    what: "spawned thread must be joined or its detachment documented \
                           (`// xtask: allow(spawn)`)",
                });
            }
        }

        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if test_block_depth.is_some_and(|d| depth <= d) {
                        test_block_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// True when the line passes a bare integer literal as a `sync_channel`
/// capacity. Looks at the first non-space character after the call's
/// opening parenthesis: a digit means a magic number, anything else
/// (identifier, `self.`, expression) passes. Turbofish calls like
/// `sync_channel::<Msg>(8)` are covered because generic argument lists
/// in this workspace never contain parentheses before the call's own.
fn literal_channel_capacity(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("sync_channel") {
        let after = &rest[pos + "sync_channel".len()..];
        if let Some(paren) = after.find('(') {
            if after[paren + 1..]
                .trim_start()
                .starts_with(|c: char| c.is_ascii_digit())
            {
                return true;
            }
        }
        rest = after;
    }
    false
}

/// True when the line spawns a thread outside a `std::thread::scope`
/// block. Scoped spawns are exempt because the scope joins them; the
/// convention (enforced here) is that the scope handle is named `scope`
/// — a differently named handle needs the allow marker.
fn unscoped_spawn(line: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find("spawn(") {
        let abs = from + pos;
        let before = &line[..abs];
        // Skip mid-identifier matches like `respawn(`.
        let boundary = before
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary && !before.ends_with("scope.") {
            return true;
        }
        from = abs + "spawn(".len();
    }
    false
}

/// Removes `//` comments (including doc comments) from a line. Does not
/// attempt full string-literal parsing; `//` inside the workspace's
/// string literals does not occur together with banned tokens.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_flags_unwrap_and_panic() {
        let src = "fn f() {\n    x.unwrap();\n    panic!(\"boom\");\n}\n";
        let v = scan(src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn scan_skips_cfg_test_modules_and_comments() {
        let src = "\
fn ok() {}
// a.unwrap() in a comment
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"fine in tests\"); }
}
fn also_ok() {}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn scan_honors_allow_marker() {
        let src = "fn f() { panic!(\"contract\"); } // xtask: allow(panic)\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn scan_honors_allow_marker_on_preceding_line() {
        // rustfmt moves trailing comments in method chains onto their own
        // line above the call, so the marker must work there too.
        let src = "\
fn f() {
    x.get(k)
        // xtask: allow(panic)
        .unwrap_or_else(|| panic!(\"missing\"));
    y.unwrap();
}
";
        let v = scan(src);
        assert_eq!(v.len(), 1, "marker must only cover the next line");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn scan_flags_expect_with_its_own_marker() {
        let src = "\
fn f() {
    a.expect(\"boom\");
    // the attribute form and expect_err are fine
    #[expect(dead_code)]
    let _ = r.expect_err(\"err\");
    b.expect(\"ok\"); // xtask: allow(expect)
    // xtask: allow(expect)
    c.expect(\"also ok\");
}
";
        let v = scan(src);
        assert_eq!(v.len(), 1, "only the unmarked .expect( is flagged");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_marker_does_not_cover_unwrap() {
        let src = "fn f() { a.unwrap(); } // xtask: allow(expect)\n";
        let v = scan(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].what, "banned call to `.unwrap()`");
    }

    #[test]
    fn ordering_lint_flags_relaxed_and_seqcst_outside_obs() {
        let src = "\
use std::sync::atomic::Ordering;
fn f(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    c.store(0, Ordering::SeqCst);
    c.load(Ordering::Acquire);
    // Ticket counter orders nothing but itself. xtask: allow(ordering)
    c.fetch_add(1, Ordering::Relaxed);
    c.store(2, Ordering::SeqCst); // xtask: allow(ordering)
}
";
        let v = scan(src);
        assert_eq!(v.len(), 2, "Acquire and annotated lines pass");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 4);
        assert!(scan_with(src, true).is_empty(), "obs crate is exempt");
    }

    #[test]
    fn channel_capacity_lint_wants_named_constants() {
        let src = "\
fn f(depth: usize) {
    let (a, _) = sync_channel(8);
    let (b, _) = sync_channel::<Msg>(16);
    let (c, _) = sync_channel(depth.max(1));
    let (d, _) = sync_channel(CHANNEL_DEPTH);
    let (e, _) = sync_channel(4); // xtask: allow(channel-capacity)
}
";
        let v = scan(src);
        assert_eq!(v.len(), 2, "named expressions and annotated lines pass");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn spawn_lint_exempts_scoped_threads() {
        let src = "\
fn f() {
    std::thread::scope(|scope| {
        scope.spawn(|| work());
    });
    let h = std::thread::spawn(|| work());
    let b = Builder::new().spawn(|| work());
    // Reader exits on EOF; handle intentionally dropped. xtask: allow(spawn)
    drop(thread::spawn(|| read()));
    let again = respawn(3);
}
";
        let v = scan(src);
        assert_eq!(v.len(), 2, "scoped, annotated, and mid-word matches pass");
        assert_eq!(v[0].line, 5);
        assert_eq!(v[1].line, 6);
    }

    #[test]
    fn scan_resumes_after_test_module_ends() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn bad() { y.unwrap(); }
";
        let v = scan(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }
}
