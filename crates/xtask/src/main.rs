#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task so far is `lint`: a source scan that bans `.unwrap()`,
//! `.expect(`, and `panic!(` in non-test production code, reporting each
//! violation as `file:line: …`. Rust's own lint machinery cannot express
//! "no unwrap outside tests" across a workspace without nightly-only
//! tool lints, so this small scanner enforces it in CI instead.
//!
//! What counts as non-test production code:
//!
//! * files under each crate's `src/`, excluding `vendor/`, `tests/`,
//!   `benches/`, `examples/` and the `xtask` crate itself;
//! * minus `#[cfg(test)]` modules (tracked by brace depth);
//! * minus comments (`//`, `///`, `//!`) and doc-comment code fences.
//!
//! A line may opt out with an `// xtask: allow(panic)` marker (covers
//! `.unwrap()` and `panic!`) or `// xtask: allow(expect)` (covers
//! `.expect(`) on the same line or the line directly above — reserved
//! for panics that are documented API contracts (e.g.
//! `QueryBuilder::build` on an invalid query) or invariants locally
//! provable from the surrounding few lines, stated in a comment.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!("usage: cargo xtask lint");
            if let Some(o) = other {
                eprintln!("unknown task: {o}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Scans production sources for banned constructs; returns failure if
/// any violation is found.
fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_sources(&root.join("src"), &mut files);
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            if entry.path().file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            collect_sources(&entry.path().join("src"), &mut files);
        }
    }
    files.sort();

    let mut report = String::new();
    let mut violations = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        for v in scan(&text) {
            let rel = file.strip_prefix(&root).unwrap_or(file);
            let _ = writeln!(report, "{}:{}: {}", rel.display(), v.line, v.what);
            violations += 1;
        }
    }

    if violations > 0 {
        eprint!("{report}");
        eprintln!(
            "xtask lint: {violations} violation(s) in {} file(s) scanned",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("xtask lint: clean ({} files scanned)", files.len());
        ExitCode::SUCCESS
    }
}

/// The workspace root: the directory holding the top-level Cargo.toml.
/// `cargo xtask` runs with the crate dir as cwd only under `cargo run
/// -p`; rely on the manifest-dir env var and walk two levels up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One banned construct occurrence.
struct Violation {
    line: usize,
    what: &'static str,
}

/// Line-based scan of one file. Tracks `#[cfg(test)]` modules by brace
/// depth and skips comment lines; string literals are not parsed (none
/// of the banned tokens appear in the workspace's string data).
fn scan(text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    // Depth of the enclosing `#[cfg(test)]` block, if inside one.
    let mut depth: i64 = 0;
    let mut test_block_depth: Option<i64> = None;
    let mut pending_cfg_test = false;

    let mut allow_panic_next = false;
    let mut allow_expect_next = false;
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim();

        if test_block_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && trimmed.contains('{') {
            // The `mod tests {` (or fn) line following the attribute.
            test_block_depth = Some(depth);
            pending_cfg_test = false;
        }

        let allow_panic =
            std::mem::take(&mut allow_panic_next) || raw.contains("xtask: allow(panic)");
        let allow_expect =
            std::mem::take(&mut allow_expect_next) || raw.contains("xtask: allow(expect)");
        if raw.trim_start().starts_with("//") {
            // A standalone marker line covers the next source line
            // (rustfmt's preferred placement).
            if raw.contains("xtask: allow(panic)") {
                allow_panic_next = true;
            }
            if raw.contains("xtask: allow(expect)") {
                allow_expect_next = true;
            }
        }

        if test_block_depth.is_none() && !trimmed.is_empty() {
            if !allow_panic {
                if trimmed.contains(".unwrap()") {
                    out.push(Violation {
                        line: i + 1,
                        what: "banned call to `.unwrap()`",
                    });
                }
                if trimmed.contains("panic!(") {
                    out.push(Violation {
                        line: i + 1,
                        what: "banned `panic!` invocation",
                    });
                }
            }
            // The leading dot keeps `#[expect(...)]` attributes and
            // `.expect_err(` out of scope.
            if !allow_expect && trimmed.contains(".expect(") {
                out.push(Violation {
                    line: i + 1,
                    what: "banned call to `.expect(` (return a typed error instead)",
                });
            }
        }

        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if test_block_depth.is_some_and(|d| depth <= d) {
                        test_block_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Removes `//` comments (including doc comments) from a line. Does not
/// attempt full string-literal parsing; `//` inside the workspace's
/// string literals does not occur together with banned tokens.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_flags_unwrap_and_panic() {
        let src = "fn f() {\n    x.unwrap();\n    panic!(\"boom\");\n}\n";
        let v = scan(src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn scan_skips_cfg_test_modules_and_comments() {
        let src = "\
fn ok() {}
// a.unwrap() in a comment
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"fine in tests\"); }
}
fn also_ok() {}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn scan_honors_allow_marker() {
        let src = "fn f() { panic!(\"contract\"); } // xtask: allow(panic)\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn scan_honors_allow_marker_on_preceding_line() {
        // rustfmt moves trailing comments in method chains onto their own
        // line above the call, so the marker must work there too.
        let src = "\
fn f() {
    x.get(k)
        // xtask: allow(panic)
        .unwrap_or_else(|| panic!(\"missing\"));
    y.unwrap();
}
";
        let v = scan(src);
        assert_eq!(v.len(), 1, "marker must only cover the next line");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn scan_flags_expect_with_its_own_marker() {
        let src = "\
fn f() {
    a.expect(\"boom\");
    // the attribute form and expect_err are fine
    #[expect(dead_code)]
    let _ = r.expect_err(\"err\");
    b.expect(\"ok\"); // xtask: allow(expect)
    // xtask: allow(expect)
    c.expect(\"also ok\");
}
";
        let v = scan(src);
        assert_eq!(v.len(), 1, "only the unmarked .expect( is flagged");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_marker_does_not_cover_unwrap() {
        let src = "fn f() { a.unwrap(); } // xtask: allow(expect)\n";
        let v = scan(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].what, "banned call to `.unwrap()`");
    }

    #[test]
    fn scan_resumes_after_test_module_ends() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn bad() { y.unwrap(); }
";
        let v = scan(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }
}
