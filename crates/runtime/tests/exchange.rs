//! Cross-transport exchange tests: the streaming transports must agree
//! with the sequential `Local` loop *exactly* — same partitions in the
//! same row order, same tallies — and report matching byte counts.

use parjoin_common::{hash, Relation};
use parjoin_runtime::{Router, Runtime, RuntimeConfig, ShuffleOutcome, TransportKind};
use std::sync::Arc;
use std::time::Duration;

fn config(transport: TransportKind, workers: usize, batch_tuples: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        transport,
        batch_tuples,
        channel_depth: 2, // shallow inbox to actually exercise backpressure
        io_timeout: Duration::from_secs(20),
        ..RuntimeConfig::default()
    }
}

/// A deterministic pseudo-random partitioning of `rows` tuples of
/// `arity` columns across `workers` partitions.
fn make_parts(workers: usize, arity: usize, rows: usize, seed: u64) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..workers).map(|_| Relation::new(arity)).collect();
    let mut row = vec![0u64; arity];
    for i in 0..rows {
        for (c, v) in row.iter_mut().enumerate() {
            *v = hash::bucket(i as u64 * 31 + c as u64, seed, 1000) as u64;
        }
        parts[i % workers].push_row(&row);
    }
    parts
}

fn hash_router(workers: usize, seed: u64) -> Router {
    Arc::new(move |_w, row, dests| dests.push(hash::bucket(row[0], seed, workers)))
}

fn broadcast_router(workers: usize) -> Router {
    Arc::new(move |_w, _row, dests| dests.extend(0..workers))
}

fn run(
    transport: TransportKind,
    batch: usize,
    router: &Router,
    parts: &[Relation],
) -> ShuffleOutcome {
    let rt = Runtime::new(config(transport, parts.len(), batch)).expect("runtime");
    let out = rt
        .shuffle(parts.to_vec(), Arc::clone(router))
        .expect("shuffle");
    rt.shutdown().expect("shutdown");
    out
}

fn assert_same_shuffle(a: &ShuffleOutcome, b: &ShuffleOutcome) {
    assert_eq!(
        a.parts, b.parts,
        "partitions (including row order) must match"
    );
    assert_eq!(a.per_producer, b.per_producer);
    assert_eq!(a.per_consumer, b.per_consumer);
}

fn streaming_kinds() -> Vec<TransportKind> {
    let mut kinds = vec![TransportKind::InProcess];
    if cfg!(feature = "transport-tcp") {
        kinds.push(TransportKind::Tcp);
    }
    kinds
}

#[test]
fn streaming_matches_local_hash_partition() {
    let workers = 4;
    let parts = make_parts(workers, 3, 1000, 42);
    let router = hash_router(workers, 7);
    // batch=64 forces multi-batch streams; batch=4096 gives single batches.
    for batch in [64, 4096] {
        let local = run(TransportKind::Local, batch, &router, &parts);
        assert_eq!(local.bytes_sent, 0, "local path moves no bytes");
        for kind in streaming_kinds() {
            let streamed = run(kind, batch, &router, &parts);
            assert_same_shuffle(&local, &streamed);
            assert!(
                streamed.bytes_sent > 0,
                "{kind}: streaming must move real bytes"
            );
            assert_eq!(
                streamed.bytes_sent, streamed.bytes_received,
                "{kind}: every sent byte is received"
            );
        }
    }
}

#[test]
fn streaming_matches_local_broadcast() {
    let workers = 3;
    let parts = make_parts(workers, 2, 300, 5);
    let router = broadcast_router(workers);
    let local = run(TransportKind::Local, 128, &router, &parts);
    assert_eq!(
        local.per_producer.iter().sum::<u64>(),
        300 * workers as u64,
        "broadcast sends one copy per worker"
    );
    for kind in streaming_kinds() {
        let streamed = run(kind, 128, &router, &parts);
        assert_same_shuffle(&local, &streamed);
    }
}

#[test]
fn in_process_and_tcp_report_identical_bytes() {
    // Byte tallies count encoded payload only (no transport framing), so
    // the two streaming transports must agree to the byte.
    if !cfg!(feature = "transport-tcp") {
        return;
    }
    let workers = 4;
    let parts = make_parts(workers, 2, 777, 9);
    let router = hash_router(workers, 3);
    let a = run(TransportKind::InProcess, 100, &router, &parts);
    let b = run(TransportKind::Tcp, 100, &router, &parts);
    assert_eq!(a.bytes_sent, b.bytes_sent);
    assert_eq!(a.bytes_received, b.bytes_received);
}

#[test]
fn nullary_relations_stream_with_multiplicity() {
    let workers = 2;
    let mut parts: Vec<Relation> = (0..workers).map(|_| Relation::new(0)).collect();
    parts[0].push_nullary_rows(5);
    parts[1].push_nullary_rows(2);
    // Route all nullary witnesses to worker 0.
    let router: Router = Arc::new(|_w, _row, dests| dests.push(0));
    let local = run(TransportKind::Local, 3, &router, &parts);
    assert_eq!(local.parts[0].len(), 7);
    assert_eq!(local.parts[0].arity(), 0);
    for kind in streaming_kinds() {
        let streamed = run(kind, 3, &router, &parts);
        assert_same_shuffle(&local, &streamed);
        assert!(
            streamed.bytes_sent > 0,
            "even value-free batches have header bytes"
        );
    }
}

#[test]
fn empty_partitions_shuffle_cleanly() {
    let workers = 3;
    let parts: Vec<Relation> = (0..workers).map(|_| Relation::new(2)).collect();
    let router = hash_router(workers, 1);
    for kind in streaming_kinds() {
        let out = run(kind, 16, &router, &parts);
        assert!(out.parts.iter().all(Relation::is_empty));
        assert_eq!(out.per_producer, vec![0; workers]);
        assert_eq!(out.bytes_sent, 0, "no rows, no batches");
    }
}

#[test]
fn each_runs_on_every_worker_and_store_persists() {
    let rt = Runtime::new(config(TransportKind::InProcess, 4, 16)).expect("runtime");
    let ids = rt
        .each(|ctx| {
            let mut rel = Relation::new(1);
            rel.push_row(&[ctx.id as u64]);
            ctx.put("mine", rel);
            ctx.id
        })
        .expect("each");
    assert_eq!(ids, vec![0, 1, 2, 3]);
    // Partitions are owned by the actor: a later job sees them.
    let kept = rt
        .each(|ctx| ctx.get("mine").map(|r| r.value(0, 0)))
        .expect("each");
    assert_eq!(kept, vec![Some(0), Some(1), Some(2), Some(3)]);
    rt.shutdown().expect("shutdown");
}

#[test]
fn obs_counters_reconcile_with_shuffle_tallies() {
    use parjoin_obs::{Registry, TraceSink};
    use parjoin_runtime::RuntimeObs;
    let workers = 4;
    let parts = make_parts(workers, 2, 500, 11);
    let router = hash_router(workers, 3);
    for kind in streaming_kinds() {
        let reg = Registry::new();
        let trace = TraceSink::enabled();
        let mut cfg = config(kind, workers, 64);
        cfg.obs = RuntimeObs::on_registry(&reg, Arc::clone(&trace));
        let rt = Runtime::new(cfg).expect("runtime");
        let out = rt
            .shuffle(parts.clone(), Arc::clone(&router))
            .expect("shuffle");
        rt.shutdown().expect("shutdown");
        // Registry counters mirror the outcome tallies exactly.
        assert_eq!(reg.get("runtime.tx.bytes"), Some(out.bytes_sent), "{kind}");
        assert_eq!(
            reg.get("runtime.rx.bytes"),
            Some(out.bytes_received),
            "{kind}"
        );
        assert_eq!(
            reg.get("runtime.tx.batches"),
            reg.get("runtime.rx.batches"),
            "{kind}: every batch sent is received"
        );
        assert!(reg.get("runtime.tx.batches") > Some(0), "{kind}");
        assert_eq!(reg.get("runtime.rx.decode_errors"), Some(0), "{kind}");
        // With compression off the raw (uncompressed-equivalent) tally
        // equals the on-wire tally, both as a counter and on the outcome.
        assert_eq!(
            reg.get("runtime.tx.bytes_raw"),
            Some(out.bytes_sent),
            "{kind}: raw == sent when compression is off"
        );
        assert_eq!(out.bytes_sent_raw, out.bytes_sent, "{kind}");
        // The event-loop demux runs exactly one receive thread per worker
        // (the old design spawned one per peer: workers * workers).
        assert_eq!(
            reg.get("runtime.rx.threads"),
            Some(workers as u64),
            "{kind}: one receive loop per worker"
        );
        // Every batch frame passes through the pool exactly once (the
        // sending InProcess path or the receiving Tcp path acquires it,
        // the drain releases it), so pool traffic reconciles with the
        // batch count.
        assert_eq!(
            reg.get("runtime.buf.allocs").unwrap_or(0) + reg.get("runtime.buf.reuses").unwrap_or(0),
            reg.get("runtime.tx.batches").unwrap_or(u64::MAX),
            "{kind}: each frame is pooled exactly once"
        );
        // One `shuffle` span per worker on the worker's own lane.
        let spans: Vec<u32> = trace
            .events()
            .iter()
            .filter(|e| e.name == "shuffle")
            .map(|e| e.lane)
            .collect();
        assert_eq!(spans.len(), workers, "{kind}");
        for id in 0..workers {
            assert!(spans.contains(&(id as u32)), "{kind}: lane {id} missing");
        }
    }
}

#[test]
fn both_wire_formats_match_local_and_count_copies_honestly() {
    use parjoin_common::WireFormat;
    use parjoin_obs::{Registry, TraceSink};
    use parjoin_runtime::RuntimeObs;
    let workers = 4;
    let parts = make_parts(workers, 3, 900, 23);
    let router = hash_router(workers, 5);
    let local = run(TransportKind::Local, 128, &router, &parts);
    for kind in streaming_kinds() {
        for format in [WireFormat::Varint, WireFormat::Vectored] {
            let reg = Registry::new();
            let mut cfg = config(kind, workers, 128);
            cfg.wire_format = format;
            cfg.obs = RuntimeObs::on_registry(&reg, TraceSink::enabled());
            let rt = Runtime::new(cfg).expect("runtime");
            let out = rt
                .shuffle(parts.clone(), Arc::clone(&router))
                .expect("shuffle");
            rt.shutdown().expect("shutdown");
            assert_same_shuffle(&local, &out);
            assert_eq!(out.bytes_sent, out.bytes_received, "{kind}/{format:?}");
            let copied = reg.get("runtime.tx.copied_bytes").unwrap_or(u64::MAX);
            match format {
                // The legacy path materializes every frame in an owned
                // encode buffer before handing it to the transport.
                WireFormat::Varint => assert_eq!(
                    copied, out.bytes_sent,
                    "{kind}: varint copies every sent byte"
                ),
                // The vectored path writes straight from the arena slice.
                WireFormat::Vectored => {
                    assert_eq!(copied, 0, "{kind}: vectored sends copy nothing");
                }
            }
        }
    }
}

#[test]
fn buffer_pool_recycles_frames_across_sequential_shuffles() {
    use parjoin_obs::{Registry, TraceSink};
    use parjoin_runtime::RuntimeObs;
    let workers = 3;
    let parts = make_parts(workers, 2, 600, 17);
    let router = hash_router(workers, 2);
    for kind in streaming_kinds() {
        let reg = Registry::new();
        let mut cfg = config(kind, workers, 64);
        cfg.obs = RuntimeObs::on_registry(&reg, TraceSink::enabled());
        let rt = Runtime::new(cfg).expect("runtime");
        // Within one shuffle every frame may still be in flight when the
        // next is acquired, so reuse is not guaranteed — but the second
        // shuffle starts with the first's frames all back in the pool.
        let first = rt
            .shuffle(parts.clone(), Arc::clone(&router))
            .expect("shuffle 1");
        let second = rt
            .shuffle(parts.clone(), Arc::clone(&router))
            .expect("shuffle 2");
        rt.shutdown().expect("shutdown");
        assert_same_shuffle(&first, &second);
        let reuses = reg.get("runtime.buf.reuses").unwrap_or(0);
        let allocs = reg.get("runtime.buf.allocs").unwrap_or(0);
        assert!(
            reuses > 0,
            "{kind}: second shuffle must recycle pooled buffers (allocs={allocs})"
        );
        assert_eq!(
            allocs + reuses,
            reg.get("runtime.tx.batches").unwrap_or(u64::MAX),
            "{kind}: pool traffic reconciles with batch count"
        );
    }
}

/// Partitions whose columns are sorted runs — the shape a shuffle of a
/// sorted relation produces, and the case delta+varint compression is
/// built for.
fn make_sorted_parts(workers: usize, rows: usize) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..workers).map(|_| Relation::new(2)).collect();
    for i in 0..rows {
        let v = i as u64;
        parts[i % workers].push_row(&[v, v * 3]);
    }
    parts
}

#[test]
fn compression_shrinks_sorted_shuffles_without_changing_results() {
    use parjoin_obs::{Registry, TraceSink};
    use parjoin_runtime::RuntimeObs;
    let workers = 4;
    let parts = make_sorted_parts(workers, 8000);
    // Range-partition so each destination receives contiguous sorted
    // runs (hash-partitioning would shred the deltas).
    let router: Router = Arc::new(move |_w, row, dests| {
        dests.push((row[0] as usize * workers / 8000).min(workers - 1));
    });
    let local = run(TransportKind::Local, 1024, &router, &parts);
    for kind in streaming_kinds() {
        let raw = run(kind, 1024, &router, &parts);
        assert_same_shuffle(&local, &raw);

        let reg = Registry::new();
        let mut cfg = config(kind, workers, 1024);
        cfg.wire_compression = true;
        cfg.obs = RuntimeObs::on_registry(&reg, TraceSink::enabled());
        let rt = Runtime::new(cfg).expect("runtime");
        let packed = rt
            .shuffle(parts.clone(), Arc::clone(&router))
            .expect("shuffle");
        rt.shutdown().expect("shutdown");
        assert_same_shuffle(&local, &packed);
        assert_eq!(packed.bytes_sent, packed.bytes_received, "{kind}");
        // The raw tally is what the frames would have cost uncompressed;
        // sorted columns must shrink at least 1.5x.
        assert_eq!(packed.bytes_sent_raw, raw.bytes_sent, "{kind}");
        assert_eq!(
            reg.get("runtime.tx.bytes_raw"),
            Some(packed.bytes_sent_raw),
            "{kind}"
        );
        let ratio = packed.bytes_sent_raw as f64 / packed.bytes_sent as f64;
        assert!(
            ratio >= 1.5,
            "{kind}: sorted columns should compress >= 1.5x, got {ratio:.2}x \
             ({} raw vs {} sent)",
            packed.bytes_sent_raw,
            packed.bytes_sent
        );
    }
}

#[test]
fn zero_batch_tuples_is_rejected() {
    let err = Runtime::new(config(TransportKind::InProcess, 2, 0));
    assert!(matches!(err, Err(parjoin_runtime::RuntimeError::Config(_))));
}

#[test]
fn partition_count_mismatch_is_rejected() {
    let rt = Runtime::new(config(TransportKind::Local, 3, 16)).expect("runtime");
    let router = hash_router(3, 1);
    let err = rt.shuffle(vec![Relation::new(1); 2], router);
    assert!(matches!(err, Err(parjoin_runtime::RuntimeError::Config(_))));
}

#[cfg(not(feature = "transport-tcp"))]
#[test]
fn tcp_without_feature_is_a_config_error() {
    let err = Runtime::new(config(TransportKind::Tcp, 2, 16));
    assert!(matches!(err, Err(parjoin_runtime::RuntimeError::Config(_))));
}
