//! Pooled receive buffers for the streaming exchange.
//!
//! Every frame that crosses a transport lands in a `Vec<u8>`. Before
//! this pool, each frame allocated a fresh vector and dropped it after
//! decode — at steady state a shuffle allocates (and frees) once per
//! batch per peer. A [`BufPool`] is a free list of recycled vectors
//! shared by a runtime's senders and receivers: `acquire` hands out a
//! cleared buffer (reusing capacity when one is on the list), `release`
//! returns it once the frame is decoded. The high-water cap bounds how
//! many idle buffers the pool pins; beyond it, released buffers simply
//! drop.
//!
//! The pool counts every hand-out on the runtime's
//! `runtime.buf.{reuses,allocs}` counters, so a steady-state shuffle is
//! visible as `reuses ≫ allocs` and the CI smoke step can assert the
//! pool is actually recycling.

use parjoin_obs::Counter;
use std::sync::{Mutex, PoisonError};

/// A bounded free list of reusable byte buffers.
#[derive(Debug)]
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    cap: usize,
    reuses: Counter,
    allocs: Counter,
}

/// Idle buffers a pool retains before releases start dropping. Sized for
/// the deepest mesh the tests run (8 workers × channel depth 8) so the
/// steady state never re-allocates.
pub const DEFAULT_POOL_CAP: usize = 128;

impl BufPool {
    /// A pool retaining at most `cap` idle buffers, counting hand-outs
    /// on the given counters (clone them off a
    /// [`RuntimeObs`](crate::metrics::RuntimeObs) so the registry sees
    /// the tallies).
    pub fn new(cap: usize, reuses: Counter, allocs: Counter) -> BufPool {
        BufPool {
            free: Mutex::new(Vec::new()),
            cap,
            reuses,
            allocs,
        }
    }

    /// A detached pool with the default cap (tallies feed no registry).
    pub fn detached() -> BufPool {
        BufPool::new(DEFAULT_POOL_CAP, Counter::new(), Counter::new())
    }

    /// Hands out an empty buffer, reusing a recycled one's capacity when
    /// the free list is non-empty.
    pub fn acquire(&self) -> Vec<u8> {
        let recycled = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match recycled {
            Some(buf) => {
                self.reuses.inc();
                buf
            }
            None => {
                self.allocs.inc();
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the free list (cleared, capacity kept), or
    /// drops it if the pool already holds its high-water cap.
    pub fn release(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        if free.len() < self.cap {
            free.push(buf);
        }
    }

    /// Idle buffers currently on the free list.
    pub fn idle(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles_capacity() {
        let pool = BufPool::detached();
        let mut buf = pool.acquire();
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let cap = buf.capacity();
        pool.release(buf);
        let again = pool.acquire();
        assert!(again.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn counters_split_reuse_from_alloc() {
        let reuses = Counter::new();
        let allocs = Counter::new();
        let pool = BufPool::new(8, reuses.clone(), allocs.clone());
        let a = pool.acquire();
        pool.release(a);
        let _b = pool.acquire();
        assert_eq!(allocs.get(), 1);
        assert_eq!(reuses.get(), 1);
    }

    #[test]
    fn cap_bounds_idle_buffers() {
        let pool = BufPool::new(2, Counter::new(), Counter::new());
        for _ in 0..5 {
            pool.release(Vec::with_capacity(64));
        }
        assert_eq!(pool.idle(), 2, "releases beyond the cap drop");
    }
}
