//! The runtime's observability surface: transport/exchange counters and
//! the trace sink the exchange records its per-worker spans into.
//!
//! A [`RuntimeObs`] is a bundle of [`Counter`] handles plus an
//! `Arc<TraceSink>`. The default bundle is *detached* — the counters
//! count into thin air (one relaxed atomic add per **batch**, never per
//! tuple) and the sink is disabled, so a runtime constructed without an
//! observer pays close to nothing. An engine run that wants the tallies
//! registers the bundle on its per-run [`Registry`] via
//! [`RuntimeObs::on_registry`], under the canonical [`names`].

use parjoin_obs::{Counter, Registry, TraceSink};
use std::sync::Arc;

/// Canonical registry names for the runtime's counters.
pub mod names {
    /// Encoded payload bytes handed to a transport sender.
    pub const TX_BYTES: &str = "runtime.tx.bytes";
    /// Encoded payload bytes drained from transport receivers.
    pub const RX_BYTES: &str = "runtime.rx.bytes";
    /// Batches (frames) sent.
    pub const TX_BATCHES: &str = "runtime.tx.batches";
    /// Batches (frames) received.
    pub const RX_BATCHES: &str = "runtime.rx.batches";
    /// Transport-level write flushes (TCP flushes once per frame and
    /// once per end-of-stream marker; in-process channels never flush).
    pub const TX_FLUSHES: &str = "runtime.tx.flushes";
    /// Nanoseconds drain threads spent blocked in `recv`.
    pub const RX_WAIT_NS: &str = "runtime.rx.wait_ns";
    /// Frames rejected by a transport decoder (corrupt tag, oversized
    /// length prefix, stream truncated mid-frame).
    pub const RX_DECODE_ERRORS: &str = "runtime.rx.decode_errors";
    /// Uncompressed-equivalent frame bytes sent — equals
    /// [`TX_BYTES`] when wire compression is off; the
    /// `bytes_raw / bytes` ratio is the compression win.
    pub const TX_BYTES_RAW: &str = "runtime.tx.bytes_raw";
    /// Payload bytes copied into freshly allocated owned encode buffers
    /// on the send path. The legacy varint format pays this for every
    /// frame; the vectored format writes borrowed slices and keeps it
    /// near zero — the bench's "bytes copied per shuffled tuple" metric.
    pub const TX_COPIED_BYTES: &str = "runtime.tx.copied_bytes";
    /// Receive buffers handed out from the pool's free list.
    pub const BUF_REUSES: &str = "runtime.buf.reuses";
    /// Receive buffers freshly allocated because the free list was
    /// empty (steady state should be all reuses).
    pub const BUF_ALLOCS: &str = "runtime.buf.allocs";
    /// Receive loops started — one per worker per shuffle under the
    /// event-loop demux, regardless of peer count.
    pub const RX_THREADS: &str = "runtime.rx.threads";
}

/// Counter handles and trace sink threaded through the exchange and the
/// transports. Cloning shares the underlying tallies.
#[derive(Clone, Debug)]
pub struct RuntimeObs {
    /// Encoded payload bytes sent ([`names::TX_BYTES`]).
    pub tx_bytes: Counter,
    /// Encoded payload bytes received ([`names::RX_BYTES`]).
    pub rx_bytes: Counter,
    /// Batches sent ([`names::TX_BATCHES`]).
    pub tx_batches: Counter,
    /// Batches received ([`names::RX_BATCHES`]).
    pub rx_batches: Counter,
    /// Transport write flushes ([`names::TX_FLUSHES`]).
    pub tx_flushes: Counter,
    /// Drain-thread blocked-receive nanoseconds ([`names::RX_WAIT_NS`]).
    pub rx_wait_ns: Counter,
    /// Decoder rejections ([`names::RX_DECODE_ERRORS`]).
    pub rx_decode_errors: Counter,
    /// Uncompressed-equivalent bytes sent ([`names::TX_BYTES_RAW`]).
    pub tx_bytes_raw: Counter,
    /// Send-path owned-buffer copy bytes ([`names::TX_COPIED_BYTES`]).
    pub tx_copied_bytes: Counter,
    /// Pool free-list hits ([`names::BUF_REUSES`]).
    pub buf_reuses: Counter,
    /// Pool fresh allocations ([`names::BUF_ALLOCS`]).
    pub buf_allocs: Counter,
    /// Receive loops started ([`names::RX_THREADS`]).
    pub rx_threads: Counter,
    /// Where exchange workers record their per-worker `shuffle` spans.
    pub trace: Arc<TraceSink>,
}

impl RuntimeObs {
    /// A detached bundle: counters feed no registry, the sink is
    /// disabled. This is the [`Default`].
    pub fn detached() -> RuntimeObs {
        RuntimeObs {
            tx_bytes: Counter::new(),
            rx_bytes: Counter::new(),
            tx_batches: Counter::new(),
            rx_batches: Counter::new(),
            tx_flushes: Counter::new(),
            rx_wait_ns: Counter::new(),
            rx_decode_errors: Counter::new(),
            tx_bytes_raw: Counter::new(),
            tx_copied_bytes: Counter::new(),
            buf_reuses: Counter::new(),
            buf_allocs: Counter::new(),
            rx_threads: Counter::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// A bundle whose counters live on `registry` (under the canonical
    /// [`names`]) and whose spans record into `trace`.
    pub fn on_registry(registry: &Registry, trace: Arc<TraceSink>) -> RuntimeObs {
        RuntimeObs {
            tx_bytes: registry.counter(names::TX_BYTES),
            rx_bytes: registry.counter(names::RX_BYTES),
            tx_batches: registry.counter(names::TX_BATCHES),
            rx_batches: registry.counter(names::RX_BATCHES),
            tx_flushes: registry.counter(names::TX_FLUSHES),
            rx_wait_ns: registry.counter(names::RX_WAIT_NS),
            rx_decode_errors: registry.counter(names::RX_DECODE_ERRORS),
            tx_bytes_raw: registry.counter(names::TX_BYTES_RAW),
            tx_copied_bytes: registry.counter(names::TX_COPIED_BYTES),
            buf_reuses: registry.counter(names::BUF_REUSES),
            buf_allocs: registry.counter(names::BUF_ALLOCS),
            rx_threads: registry.counter(names::RX_THREADS),
            trace,
        }
    }
}

impl Default for RuntimeObs {
    fn default() -> Self {
        RuntimeObs::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_registry_counts_into_named_slots() {
        let reg = Registry::new();
        let obs = RuntimeObs::on_registry(&reg, TraceSink::disabled());
        obs.tx_bytes.add(10);
        obs.rx_decode_errors.inc();
        assert_eq!(reg.get(names::TX_BYTES), Some(10));
        assert_eq!(reg.get(names::RX_DECODE_ERRORS), Some(1));
        assert_eq!(reg.get(names::RX_BYTES), Some(0), "registered at zero");
    }

    #[test]
    fn detached_counts_but_reports_nowhere() {
        let obs = RuntimeObs::detached();
        obs.tx_batches.add(5);
        assert_eq!(obs.tx_batches.get(), 5);
        assert!(!obs.trace.is_enabled());
    }
}
