#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parjoin-runtime
//!
//! A message-passing worker runtime for the parjoin engine. Each of the
//! `p` simulated machines becomes a long-lived OS thread (an *actor*)
//! that owns a named partition store and executes jobs sent over a
//! control channel. Workers exchange tuples through a pluggable
//! [`Transport`](transport::Transport):
//!
//! * [`TransportKind::Local`] — the degenerate in-memory path: shuffles
//!   run as a sequential loop, exactly reproducing the original
//!   simulator (same tallies, same row order, zero bytes moved).
//! * [`TransportKind::InProcess`] — bounded `mpsc` channels between the
//!   worker threads; full streaming protocol, backpressure from the
//!   channel bound.
//! * [`TransportKind::Tcp`] — length-prefixed frames over loopback
//!   sockets (`transport-tcp` feature).
//!
//! Shuffles stream fixed-size batches (`batch_tuples` rows each) in the
//! compact [`parjoin_common::wire`] encoding, so byte tallies are real
//! payload bytes and identical across the streaming transports.
//!
//! ## Worker lifecycle
//!
//! [`Runtime::new`] spawns the threads; [`Runtime::each`] runs a closure
//! on every worker in parallel; [`Runtime::shuffle`] executes one
//! exchange; [`Runtime::shutdown`] (or drop) closes the control channels
//! and joins every thread.

pub mod error;
pub mod exchange;
pub mod metrics;
pub mod pool;
#[cfg(feature = "transport-tcp")]
pub mod tcp;
pub mod transport;

pub use error::RuntimeError;
pub use metrics::RuntimeObs;
pub use pool::BufPool;
#[cfg(feature = "transport-tcp")]
pub use tcp::{HandshakeConfig, HostMesh};
pub use transport::TransportKind;

use parjoin_common::{Relation, Value, WireFormat};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Decides, per producing worker and row, which workers receive a copy.
///
/// Arguments: producing worker id, the row, and an output buffer the
/// router fills with destination worker ids (cleared by the caller
/// between rows). One closure expresses all three of the paper's
/// shuffles: hash partitioning pushes one destination, broadcast pushes
/// all of them, HyperCube pushes the row's subcube slab.
pub type Router = Arc<dyn Fn(usize, &[Value], &mut Vec<usize>) + Send + Sync>;

/// Runtime construction knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker actors (`p` in the paper).
    pub workers: usize,
    /// How tuples move between workers.
    pub transport: TransportKind,
    /// Rows per streamed batch. Must be at least 1; `parjoin-analyze`
    /// pre-flights this (and warns when a batch exceeds the memory
    /// budget) before a plan reaches the runtime.
    pub batch_tuples: usize,
    /// Bound (in frames) of each worker's transport inbox — the
    /// backpressure window.
    pub channel_depth: usize,
    /// Cap on every blocking receive, guarding against a hung peer
    /// deadlocking the mesh.
    pub io_timeout: Duration,
    /// Frame encoding on the wire. The vectored default writes batches
    /// scatter/gather from borrowed slices; [`WireFormat::Varint`] is
    /// the legacy owned-buffer encoding, kept readable for
    /// cross-version round-trips.
    pub wire_format: WireFormat,
    /// Delta+varint column compression on shuffled batches (vectored
    /// format only; ignored under [`WireFormat::Varint`]).
    pub wire_compression: bool,
    /// Per-frame size limit streaming transports enforce on both sides.
    pub max_frame_bytes: u32,
    /// Dial attempts per peer during TCP mesh formation before the
    /// connect is declared dead (backoff between attempts doubles from
    /// 1 ms up to `connect_backoff_cap`).
    pub connect_attempts: u32,
    /// Ceiling on the exponential dial backoff during mesh formation.
    pub connect_backoff_cap: Duration,
    /// Deadline for the accept-plus-hello phase of TCP mesh formation;
    /// a peer that connects but never announces itself surfaces as
    /// [`RuntimeError::HandshakeTimeout`](error::RuntimeError::HandshakeTimeout)
    /// once this expires.
    pub handshake_timeout: Duration,
    /// Observability bundle the exchange and transports report into
    /// (bytes, batches, flushes, receive waits, decode errors, and the
    /// per-worker `shuffle` trace spans). Detached by default.
    pub obs: RuntimeObs,
}

/// Default batch size: ~4096 rows per batch keeps frames in the tens of
/// kilobytes for typical arities — large enough to amortize per-frame
/// costs, small enough that bounded inboxes stay shallow.
pub const DEFAULT_BATCH_TUPLES: usize = 4096;

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            transport: TransportKind::Local,
            batch_tuples: DEFAULT_BATCH_TUPLES,
            channel_depth: 8,
            io_timeout: Duration::from_secs(30),
            wire_format: WireFormat::default(),
            wire_compression: false,
            max_frame_bytes: transport::MAX_FRAME_BYTES,
            connect_attempts: 10,
            connect_backoff_cap: Duration::from_millis(128),
            handshake_timeout: Duration::from_secs(10),
            obs: RuntimeObs::detached(),
        }
    }
}

/// Aggregated result of one shuffle across all workers.
#[derive(Debug)]
pub struct ShuffleOutcome {
    /// Post-shuffle partition of each worker.
    pub parts: Vec<Relation>,
    /// Tuples sent per producing worker (one per destination copy).
    pub per_producer: Vec<u64>,
    /// Tuples received per consuming worker.
    pub per_consumer: Vec<u64>,
    /// Total encoded batch bytes sent (0 under [`TransportKind::Local`]).
    pub bytes_sent: u64,
    /// Uncompressed-equivalent bytes of the sent batches — equals
    /// `bytes_sent` unless wire compression shrank the frames.
    pub bytes_sent_raw: u64,
    /// Total encoded batch bytes received.
    pub bytes_received: u64,
}

/// Per-worker state owned by the actor thread.
pub struct WorkerCtx {
    /// This worker's id in `0..p`.
    pub id: usize,
    store: HashMap<String, Relation>,
}

impl WorkerCtx {
    /// Stores a named partition, replacing any previous one.
    pub fn put(&mut self, name: impl Into<String>, rel: Relation) {
        self.store.insert(name.into(), rel);
    }

    /// Borrows a named partition.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.store.get(name)
    }

    /// Removes and returns a named partition.
    pub fn take(&mut self, name: &str) -> Option<Relation> {
        self.store.remove(name)
    }
}

type Job = Box<dyn FnOnce(&mut WorkerCtx) + Send>;

struct Worker {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// The worker-actor runtime.
pub struct Runtime {
    config: RuntimeConfig,
    workers: Vec<Worker>,
    /// Recycled receive buffers shared by every shuffle this runtime
    /// runs; hand-outs tally on `runtime.buf.{reuses,allocs}`.
    pool: Arc<BufPool>,
}

impl Runtime {
    /// Spawns `config.workers` actor threads.
    ///
    /// # Errors
    /// [`RuntimeError::Config`] on zero workers or zero `batch_tuples`,
    /// and when [`TransportKind::Tcp`] is requested without the
    /// `transport-tcp` feature; [`RuntimeError::Io`] if thread spawning
    /// fails.
    pub fn new(config: RuntimeConfig) -> Result<Self, RuntimeError> {
        if config.workers == 0 {
            return Err(RuntimeError::Config(
                "runtime needs at least one worker".into(),
            ));
        }
        if config.batch_tuples == 0 {
            return Err(RuntimeError::Config(
                "batch_tuples must be at least 1 (a zero-row batch can never flush)".into(),
            ));
        }
        #[cfg(not(feature = "transport-tcp"))]
        if config.transport == TransportKind::Tcp {
            return Err(RuntimeError::Config(
                "TransportKind::Tcp requires the `transport-tcp` cargo feature".into(),
            ));
        }
        let mut workers = Vec::with_capacity(config.workers);
        for id in 0..config.workers {
            let (tx, rx) = channel::<Job>();
            // The handle is kept in `Worker` and joined by `shutdown`.
            let handle = std::thread::Builder::new()
                .name(format!("parjoin-worker-{id}"))
                // xtask: allow(spawn)
                .spawn(move || {
                    let mut ctx = WorkerCtx {
                        id,
                        store: HashMap::new(),
                    };
                    // The actor loop: run jobs until the runtime drops
                    // the control channel.
                    while let Ok(job) = rx.recv() {
                        job(&mut ctx);
                    }
                })
                .map_err(|e| RuntimeError::Io(format!("spawning worker {id}: {e}")))?;
            workers.push(Worker {
                tx,
                handle: Some(handle),
            });
        }
        let pool = Arc::new(BufPool::new(
            pool::DEFAULT_POOL_CAP,
            config.obs.buf_reuses.clone(),
            config.obs.buf_allocs.clone(),
        ));
        Ok(Runtime {
            config,
            workers,
            pool,
        })
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of worker actors.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Runs `f` on every worker in parallel; returns the results indexed
    /// by worker id.
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if a worker thread has died,
    /// [`RuntimeError::Timeout`] if a result does not arrive within the
    /// configured I/O timeout.
    pub fn each<T, F>(&self, f: F) -> Result<Vec<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerCtx) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        self.run_jobs(|_| {
            let f = Arc::clone(&f);
            Box::new(move |ctx| f(ctx))
        })
    }

    /// Executes one exchange: every worker routes its partition's rows
    /// through `router` and the runtime returns the repartitioned data
    /// plus the paper's per-producer/per-consumer tallies and real byte
    /// counts.
    ///
    /// `parts[i]` is worker `i`'s input partition; `parts.len()` must
    /// equal the worker count. Row order of the output partitions is
    /// deterministic and identical across all transports (sources are
    /// concatenated in ascending order).
    ///
    /// # Errors
    /// Transport failures (peer death, timeouts, wire corruption) and
    /// [`RuntimeError::Config`] on a partition-count mismatch.
    pub fn shuffle(
        &self,
        parts: Vec<Relation>,
        router: Router,
    ) -> Result<ShuffleOutcome, RuntimeError> {
        let p = self.config.workers;
        if parts.len() != p {
            return Err(RuntimeError::Config(format!(
                "shuffle got {} partitions for {p} workers",
                parts.len()
            )));
        }
        match self.config.transport {
            TransportKind::Local => Ok(local_shuffle(&parts, &router)),
            TransportKind::InProcess => {
                self.streaming_shuffle(parts, &router, &transport::InProcess)
            }
            #[cfg(feature = "transport-tcp")]
            TransportKind::Tcp => {
                let transport = tcp::Tcp::with_obs(self.config.obs.clone())
                    .with_frame_limit(self.config.max_frame_bytes)
                    .with_handshake(tcp::HandshakeConfig {
                        connect_attempts: self.config.connect_attempts,
                        backoff_cap: self.config.connect_backoff_cap,
                        handshake_timeout: self.config.handshake_timeout,
                        ..tcp::HandshakeConfig::default()
                    });
                self.streaming_shuffle(parts, &router, &transport)
            }
            #[cfg(not(feature = "transport-tcp"))]
            TransportKind::Tcp => Err(RuntimeError::Config(
                "TransportKind::Tcp requires the `transport-tcp` cargo feature".into(),
            )),
        }
    }

    fn streaming_shuffle(
        &self,
        parts: Vec<Relation>,
        router: &Router,
        transport: &dyn transport::Transport,
    ) -> Result<ShuffleOutcome, RuntimeError> {
        let p = self.config.workers;
        let opts = exchange::ExchangeOpts {
            batch_tuples: self.config.batch_tuples,
            format: self.config.wire_format,
            compression: self.config.wire_compression,
        };
        let endpoints = transport.mesh(
            p,
            self.config.channel_depth,
            self.config.io_timeout,
            &self.pool,
        )?;
        let parts = Arc::new(parts);
        let outcomes = {
            let mut endpoints = endpoints.into_iter();
            self.run_jobs(|id| {
                let endpoint = endpoints.next();
                let parts = Arc::clone(&parts);
                let router = Arc::clone(router);
                let obs = self.config.obs.clone();
                let pool = Arc::clone(&self.pool);
                Box::new(move |ctx: &mut WorkerCtx| {
                    let Some(endpoint) = endpoint else {
                        // A transport handing back fewer endpoints than
                        // workers is a contract violation, not a panic.
                        return Err(RuntimeError::Config(format!(
                            "transport returned no endpoint for worker {id}"
                        )));
                    };
                    exchange::run_worker(
                        ctx.id,
                        &parts[id],
                        parts.len(),
                        opts,
                        endpoint,
                        &router,
                        &obs,
                        &pool,
                    )
                })
            })?
        };

        let mut out = ShuffleOutcome {
            parts: Vec::with_capacity(p),
            per_producer: Vec::with_capacity(p),
            per_consumer: Vec::with_capacity(p),
            bytes_sent: 0,
            bytes_sent_raw: 0,
            bytes_received: 0,
        };
        for worker in outcomes {
            let worker = worker?;
            out.per_producer.push(worker.sent_tuples);
            out.per_consumer.push(worker.received.len() as u64);
            out.bytes_sent += worker.bytes_sent;
            out.bytes_sent_raw += worker.bytes_sent_raw;
            out.bytes_received += worker.bytes_received;
            out.parts.push(worker.received);
        }
        Ok(out)
    }

    /// Dispatches one job per worker (built by `make`, which receives the
    /// worker id) and collects their results in worker order.
    fn run_jobs<T, M>(&self, mut make: M) -> Result<Vec<T>, RuntimeError>
    where
        T: Send + 'static,
        M: FnMut(usize) -> Box<dyn FnOnce(&mut WorkerCtx) -> T + Send>,
    {
        let (res_tx, res_rx) = channel::<(usize, T)>();
        for (id, worker) in self.workers.iter().enumerate() {
            let job = make(id);
            let res_tx = res_tx.clone();
            worker
                .tx
                .send(Box::new(move |ctx| {
                    let out = job(ctx);
                    // The runtime may have given up (timeout) and dropped
                    // the receiver; nothing useful to do with `out` then.
                    let _ = res_tx.send((ctx.id, out));
                }))
                .map_err(|_| RuntimeError::Disconnected(format!("worker {id} thread is gone")))?;
        }
        drop(res_tx);
        let mut slots: Vec<Option<T>> = (0..self.workers.len()).map(|_| None).collect();
        for _ in 0..self.workers.len() {
            let (id, value) = res_rx
                .recv_timeout(self.config.io_timeout)
                .map_err(|e| match e {
                    std::sync::mpsc::RecvTimeoutError::Timeout => RuntimeError::Timeout(format!(
                        "worker result missing after {:?}",
                        self.config.io_timeout
                    )),
                    std::sync::mpsc::RecvTimeoutError::Disconnected => {
                        RuntimeError::Disconnected("a worker died mid-job".into())
                    }
                })?;
            slots[id] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(id, slot)| {
                slot.ok_or_else(|| {
                    RuntimeError::Disconnected(format!("worker {id} returned no result"))
                })
            })
            .collect()
    }

    /// Closes every control channel and joins the worker threads.
    ///
    /// # Errors
    /// [`RuntimeError::Io`] if a worker thread panicked.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        self.join_all()
    }

    fn join_all(&mut self) -> Result<(), RuntimeError> {
        // Dropping the senders ends each actor loop.
        for worker in &mut self.workers {
            let (dead_tx, _) = channel::<Job>();
            worker.tx = dead_tx;
        }
        let mut first_panic = None;
        for (id, worker) in self.workers.iter_mut().enumerate() {
            if let Some(handle) = worker.handle.take() {
                if handle.join().is_err() && first_panic.is_none() {
                    first_panic = Some(id);
                }
            }
        }
        match first_panic {
            Some(id) => Err(RuntimeError::Io(format!("worker {id} panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Best-effort join so threads never outlive the runtime; errors
        // were either already reported by shutdown() or unobservable here.
        let _ = self.join_all();
    }
}

/// The sequential in-memory shuffle ([`TransportKind::Local`]): iterate
/// producers in ascending order, append each row to its destinations.
/// This is byte-for-byte the original simulator loop, kept as the
/// degenerate case of the runtime so existing tests and the memory-budget
/// failure injection are unaffected.
pub fn local_shuffle(parts: &[Relation], router: &Router) -> ShuffleOutcome {
    let p = parts.len();
    let arity = parts.first().map_or(0, Relation::arity);
    let mut out: Vec<Relation> = (0..p).map(|_| Relation::new(arity)).collect();
    let mut per_producer = vec![0u64; p];
    let mut per_consumer = vec![0u64; p];
    let mut dests: Vec<usize> = Vec::with_capacity(p);
    for (w, part) in parts.iter().enumerate() {
        for row in part.rows() {
            dests.clear();
            router(w, row, &mut dests);
            per_producer[w] += dests.len() as u64;
            for &d in &dests {
                out[d].push_row(row);
                per_consumer[d] += 1;
            }
        }
    }
    ShuffleOutcome {
        parts: out,
        per_producer,
        per_consumer,
        bytes_sent: 0,
        bytes_sent_raw: 0,
        bytes_received: 0,
    }
}
