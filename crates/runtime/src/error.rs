//! Runtime error type.

use std::fmt;
use std::time::Duration;

/// Failures raised by the worker runtime and its transports.
///
/// `Clone` is required so the engine can embed runtime failures inside
/// its own cloneable error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Invalid [`RuntimeConfig`](crate::RuntimeConfig) (zero workers,
    /// zero batch size, a transport compiled out, …).
    Config(String),
    /// A socket or wire-format failure in a transport.
    Io(String),
    /// A peer worker disappeared before signalling end-of-stream.
    Disconnected(String),
    /// A blocking receive exceeded the configured I/O timeout — the
    /// runtime's guard against a hung peer deadlocking the whole mesh.
    Timeout(String),
    /// Mesh formation did not complete within the handshake deadline:
    /// either a peer connected but never sent its 4-byte hello, or not
    /// enough peers connected at all. Distinct from [`Timeout`](Self::Timeout)
    /// (which guards an *established* stream) so callers can tell a
    /// cluster that never formed from one that died mid-query.
    HandshakeTimeout {
        /// The peer (socket address) or listener the handshake was
        /// waiting on, with enough context to name what never arrived.
        peer: String,
        /// How long the handshake waited before giving up.
        waited: Duration,
    },
    /// Two connections announced the same worker id during mesh
    /// formation. Accepting the second would silently replace the first
    /// peer's stream, so the mesh refuses to form instead.
    DuplicateHello {
        /// The worker id both connections claimed.
        worker: usize,
        /// Socket address of the first connection that claimed the id.
        first: String,
        /// Socket address of the second (rejected) connection.
        second: String,
    },
    /// An encoded batch exceeded the transport's frame limit. The frame
    /// was *not* sent: a length prefix above the limit is indistinguishable
    /// from corruption on the receiving side, so the sender refuses it
    /// up front instead of poisoning the stream.
    FrameTooLarge {
        /// The encoded batch size that was rejected.
        bytes: u64,
        /// The per-frame ceiling in force when the frame was rejected —
        /// the runtime's configured `max_frame_bytes`, not a compile-time
        /// constant, so the message names the limit the user can raise.
        limit: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Config(m) => write!(f, "runtime config error: {m}"),
            RuntimeError::Io(m) => write!(f, "runtime I/O error: {m}"),
            RuntimeError::Disconnected(m) => write!(f, "runtime peer disconnected: {m}"),
            RuntimeError::Timeout(m) => write!(f, "runtime timeout: {m}"),
            RuntimeError::HandshakeTimeout { peer, waited } => write!(
                f,
                "mesh handshake timed out after {waited:?} waiting on {peer}"
            ),
            RuntimeError::DuplicateHello {
                worker,
                first,
                second,
            } => write!(
                f,
                "duplicate hello for worker {worker}: already registered from {first}, \
                 rejected second connection from {second}"
            ),
            RuntimeError::FrameTooLarge { bytes, limit } => write!(
                f,
                "frame of {bytes} bytes exceeds the configured {limit}-byte frame limit; \
                 lower batch_tuples (or raise max_frame_bytes) so encoded batches fit one frame"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_timeout_names_peer_and_wait() {
        let msg = RuntimeError::HandshakeTimeout {
            peer: "127.0.0.1:4242".to_string(),
            waited: Duration::from_millis(1500),
        }
        .to_string();
        assert!(msg.contains("127.0.0.1:4242"), "names the peer: {msg}");
        assert!(msg.contains("1.5s"), "names the wait: {msg}");
    }

    #[test]
    fn duplicate_hello_names_both_sockets() {
        let msg = RuntimeError::DuplicateHello {
            worker: 3,
            first: "127.0.0.1:1000".to_string(),
            second: "127.0.0.1:2000".to_string(),
        }
        .to_string();
        assert!(msg.contains("worker 3"), "names the worker id: {msg}");
        assert!(msg.contains("127.0.0.1:1000"), "names first socket: {msg}");
        assert!(msg.contains("127.0.0.1:2000"), "names second socket: {msg}");
    }

    #[test]
    fn frame_too_large_names_rejected_size_and_configured_limit() {
        let msg = RuntimeError::FrameTooLarge {
            bytes: 4096,
            limit: 1024,
        }
        .to_string();
        assert!(msg.contains("4096 bytes"), "names the rejected size: {msg}");
        assert!(
            msg.contains("configured 1024-byte frame limit"),
            "names the limit actually in force: {msg}"
        );
        assert!(msg.contains("max_frame_bytes"), "names the knob: {msg}");
    }
}
