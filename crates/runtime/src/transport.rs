//! The transport abstraction and the in-process implementation.
//!
//! A [`Transport`] builds a full point-to-point *mesh* over `p` workers:
//! one [`Endpoint`] per worker, each able to send opaque frames to every
//! peer (itself included — self-traffic flows through the same path so
//! accounting is uniform) and to receive `(source, frame)` pairs until
//! every peer has signalled end-of-stream.
//!
//! Endpoints split into independent sender and receiver halves so a
//! worker can drain its inbox from a second thread while its main loop
//! routes and sends. That split is what makes the bounded buffers safe:
//! a worker never blocks on a full outgoing channel while also refusing
//! to empty its own inbox, so the classic all-send-no-receive exchange
//! deadlock cannot form.

use crate::error::RuntimeError;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::time::Duration;

/// Which transport a runtime (or engine cluster) should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Degenerate in-memory path: the shuffle runs as a sequential loop
    /// on the caller thread, moving no bytes. This reproduces the
    /// original simulator semantics exactly (same tallies, same row
    /// order) and is the default.
    #[default]
    Local,
    /// Bounded `mpsc` channels between worker threads; frames are moved,
    /// never copied. Backpressure comes from the channel bound.
    InProcess,
    /// Length-prefixed framed batches over loopback TCP sockets.
    /// Requires the `transport-tcp` cargo feature; selecting it in a
    /// build without the feature yields a [`RuntimeError::Config`].
    Tcp,
}

impl TransportKind {
    /// True for transports that stream encoded batches (and therefore
    /// report non-zero byte tallies).
    pub fn is_streaming(self) -> bool {
        !matches!(self, TransportKind::Local)
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Local => write!(f, "local"),
            TransportKind::InProcess => write!(f, "in-process"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

/// A mesh factory: builds `workers` connected endpoints.
pub trait Transport {
    /// Creates the full mesh. Endpoint `i` is handed to worker `i`.
    ///
    /// `depth` bounds the per-worker inbox (in frames); `timeout` caps
    /// every blocking receive.
    ///
    /// # Errors
    /// Transport-specific setup failures (e.g. a TCP bind or connect
    /// that keeps failing after retries).
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError>;
}

/// One worker's attachment to the mesh.
pub trait Endpoint: Send {
    /// Splits into independently-threaded sender and receiver halves.
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>);
}

/// The sending half of an endpoint.
///
/// Dropping the sender (after [`finish`](Self::finish)) releases its
/// side of every peer connection, which is what lets receivers detect a
/// crashed peer instead of waiting forever.
pub trait BatchSender: Send {
    /// Sends one encoded batch to worker `dest`. Blocks when the
    /// destination's buffer is full (backpressure).
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if the destination is gone.
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError>;

    /// Signals end-of-stream to every peer and flushes buffered writes.
    ///
    /// Delivery is best-effort: a peer that already terminated cannot be
    /// waiting for our marker, so failures to reach individual peers are
    /// ignored (the receive side reports the disconnect instead).
    ///
    /// # Errors
    /// Reserved for non-peer failures; the built-in transports currently
    /// always return `Ok`.
    fn finish(&mut self) -> Result<(), RuntimeError>;
}

/// The receiving half of an endpoint.
pub trait BatchReceiver: Send {
    /// Receives the next `(source, frame)` pair, or `Ok(None)` once all
    /// peers have signalled end-of-stream.
    ///
    /// # Errors
    /// [`RuntimeError::Timeout`] when nothing arrives within the mesh
    /// timeout; [`RuntimeError::Disconnected`] when peers vanish before
    /// their end-of-stream marker.
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError>;
}

/// `(source worker, frame)`; `None` frame is the end-of-stream marker.
type Msg = (usize, Option<Vec<u8>>);

/// Bounded-channel transport between threads of this process.
pub struct InProcess;

impl Transport for InProcess {
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError> {
        let mut txs: Vec<SyncSender<Msg>> = Vec::with_capacity(workers);
        let mut rxs: Vec<Receiver<Msg>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = sync_channel(depth.max(1));
            txs.push(tx);
            rxs.push(rx);
        }
        Ok(rxs
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                Box::new(InProcessEndpoint {
                    id,
                    peers: txs.clone(),
                    rx,
                    eos_left: workers,
                    timeout,
                }) as Box<dyn Endpoint>
            })
            .collect())
    }
}

struct InProcessEndpoint {
    id: usize,
    peers: Vec<SyncSender<Msg>>,
    rx: Receiver<Msg>,
    eos_left: usize,
    timeout: Duration,
}

impl Endpoint for InProcessEndpoint {
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>) {
        (
            Box::new(InProcessSender {
                id: self.id,
                peers: self.peers,
            }),
            Box::new(InProcessReceiver {
                rx: self.rx,
                eos_left: self.eos_left,
                timeout: self.timeout,
            }),
        )
    }
}

struct InProcessSender {
    id: usize,
    peers: Vec<SyncSender<Msg>>,
}

impl BatchSender for InProcessSender {
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError> {
        self.peers[dest]
            .send((self.id, Some(frame)))
            .map_err(|_| RuntimeError::Disconnected(format!("worker {dest} inbox closed")))
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        for tx in &self.peers {
            // A closed inbox means that peer is already gone; it cannot
            // be waiting for our end-of-stream marker.
            let _ = tx.send((self.id, None));
        }
        Ok(())
    }
}

struct InProcessReceiver {
    rx: Receiver<Msg>,
    eos_left: usize,
    timeout: Duration,
}

impl BatchReceiver for InProcessReceiver {
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError> {
        while self.eos_left > 0 {
            match self.rx.recv_timeout(self.timeout) {
                Ok((src, Some(frame))) => return Ok(Some((src, frame))),
                Ok((_, None)) => self.eos_left -= 1,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(RuntimeError::Timeout(format!(
                        "no batch within {:?}; {} peer(s) never finished",
                        self.timeout, self.eos_left
                    )));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected(format!(
                        "{} peer(s) dropped before end-of-stream",
                        self.eos_left
                    )));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn in_process_mesh_round_trips_frames() {
        let eps = InProcess.mesh(2, 4, Duration::from_secs(5)).expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let ta = thread::spawn(move || {
            let (mut tx, mut rx) = a.split();
            tx.send(1, vec![1, 2, 3]).expect("send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        let tb = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.send(0, vec![9]).expect("send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        let got_a = ta.join().expect("worker 0");
        let got_b = tb.join().expect("worker 1");
        assert_eq!(got_a, vec![(1, vec![9])]);
        assert_eq!(got_b, vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    fn receiver_errors_when_peer_drops_without_eos() {
        let eps = InProcess.mesh(2, 4, Duration::from_secs(5)).expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");
        drop(b); // peer dies before sending anything
        let (mut tx, mut rx) = a.split();
        tx.finish().expect("own eos still works");
        drop(tx);
        assert!(matches!(rx.recv(), Err(RuntimeError::Disconnected(_))));
    }
}
