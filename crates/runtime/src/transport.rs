//! The transport abstraction and the in-process implementation.
//!
//! A [`Transport`] builds a full point-to-point *mesh* over `p` workers:
//! one [`Endpoint`] per worker, each able to send opaque frames to every
//! peer (itself included — self-traffic flows through the same path so
//! accounting is uniform) and to receive `(source, frame)` pairs until
//! every peer has signalled end-of-stream.
//!
//! Endpoints split into independent sender and receiver halves so a
//! worker can drain its inbox from a second thread while its main loop
//! routes and sends. That split is what makes the bounded buffers safe:
//! a worker never blocks on a full outgoing channel while also refusing
//! to empty its own inbox, so the classic all-send-no-receive exchange
//! deadlock cannot form.
//!
//! Receivers are *demultiplexers*: one receive loop per worker polls all
//! `p` incoming streams (a select-style loop over per-pair channels
//! here, readiness-polled nonblocking sockets for TCP), so the whole
//! mesh costs one receive thread per worker — not one per peer.
//!
//! The send side has two shapes. [`BatchSender::send`] ships an owned,
//! fully encoded frame (the legacy varint path). For the vectored wire
//! format, [`BatchSender::send_vectored`] takes a small borrowed header
//! plus a [`Payload`] borrowing the flat row slice straight from the
//! relation arena — the scatter/gather form that lets streaming
//! transports write rows without materializing an owned encode buffer
//! per batch.

use crate::error::RuntimeError;
use crate::pool::BufPool;
use parjoin_common::Value;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sanity cap on a single frame (64 MiB): a larger length prefix means a
/// corrupt or hostile stream, not a real batch. This is the *default*
/// limit; [`RuntimeConfig::max_frame_bytes`](crate::RuntimeConfig)
/// overrides it per runtime.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Consecutive empty polls a demux receive loop spins (yielding) before
/// it starts sleeping between polls.
const IDLE_SPINS: u32 = 64;

/// Sleep between polls once a receive loop has gone idle. Short enough
/// to stay invisible next to batch decode times, long enough to keep an
/// idle mesh off the scheduler.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Which transport a runtime (or engine cluster) should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Degenerate in-memory path: the shuffle runs as a sequential loop
    /// on the caller thread, moving no bytes. This reproduces the
    /// original simulator semantics exactly (same tallies, same row
    /// order) and is the default.
    #[default]
    Local,
    /// Bounded `mpsc` channels between worker threads; frames are moved,
    /// never copied. Backpressure comes from the channel bound.
    InProcess,
    /// Length-prefixed framed batches over loopback TCP sockets.
    /// Requires the `transport-tcp` cargo feature; selecting it in a
    /// build without the feature yields a [`RuntimeError::Config`].
    Tcp,
}

impl TransportKind {
    /// True for transports that stream encoded batches (and therefore
    /// report non-zero byte tallies).
    pub fn is_streaming(self) -> bool {
        !matches!(self, TransportKind::Local)
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Local => write!(f, "local"),
            TransportKind::InProcess => write!(f, "in-process"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

/// A mesh factory: builds `workers` connected endpoints.
pub trait Transport {
    /// Creates the full mesh. Endpoint `i` is handed to worker `i`.
    ///
    /// `depth` bounds each directed pair's in-flight frames (the
    /// backpressure window); `timeout` caps how long a receiver waits
    /// without progress; `pool` recycles frame buffers across the mesh
    /// so steady-state shuffles stop allocating per frame.
    ///
    /// # Errors
    /// Transport-specific setup failures (e.g. a TCP bind or connect
    /// that keeps failing after retries).
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
        pool: &Arc<BufPool>,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError>;
}

/// One worker's attachment to the mesh.
pub trait Endpoint: Send {
    /// Splits into independently-threaded sender and receiver halves.
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>);
}

/// The payload of a vectored send: what follows the frame header on the
/// wire.
pub enum Payload<'a> {
    /// The flat row-major value slice, borrowed straight from the
    /// relation arena; transports write it as little-endian words.
    Values(&'a [Value]),
    /// Already-encoded payload bytes (the compressed form), borrowed
    /// from the sender's reusable scratch buffer.
    Bytes(&'a [u8]),
}

impl Payload<'_> {
    /// On-wire byte length of this payload.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Values(v) => v.len() * 8,
            Payload::Bytes(b) => b.len(),
        }
    }
}

/// The sending half of an endpoint.
///
/// Dropping the sender (after [`finish`](Self::finish)) releases its
/// side of every peer connection, which is what lets receivers detect a
/// crashed peer instead of waiting forever.
pub trait BatchSender: Send {
    /// Sends one encoded batch to worker `dest`. Blocks when the
    /// destination's buffer is full (backpressure).
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if the destination is gone.
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError>;

    /// Sends one batch as `header ++ payload` without the caller
    /// materializing an owned frame, returning the on-wire frame length
    /// in bytes. Stream transports write both slices directly; channel
    /// transports assemble the frame in a pooled buffer.
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] if the destination is gone;
    /// [`RuntimeError::FrameTooLarge`] when the frame exceeds the
    /// transport's configured limit.
    fn send_vectored(
        &mut self,
        dest: usize,
        header: &[u8],
        payload: Payload<'_>,
    ) -> Result<u64, RuntimeError>;

    /// Signals end-of-stream to every peer and flushes buffered writes.
    ///
    /// Delivery is best-effort: a peer that already terminated cannot be
    /// waiting for our marker, so failures to reach individual peers are
    /// ignored (the receive side reports the disconnect instead).
    ///
    /// # Errors
    /// Reserved for non-peer failures; the built-in transports currently
    /// always return `Ok`.
    fn finish(&mut self) -> Result<(), RuntimeError>;
}

/// The receiving half of an endpoint.
pub trait BatchReceiver: Send {
    /// Receives the next `(source, frame)` pair, or `Ok(None)` once all
    /// peers have signalled end-of-stream.
    ///
    /// # Errors
    /// [`RuntimeError::Timeout`] when nothing arrives within the mesh
    /// timeout; [`RuntimeError::Disconnected`] when peers vanish before
    /// their end-of-stream marker.
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError>;
}

/// Backoff ladder for a demux receive loop: spin (yield) while the mesh
/// is hot, sleep once it has gone idle.
pub(crate) fn idle_backoff(idle_rounds: u32) {
    if idle_rounds < IDLE_SPINS {
        std::thread::yield_now();
    } else {
        std::thread::sleep(IDLE_SLEEP);
    }
}

/// Appends `header ++ payload` to a frame buffer (the owned-frame
/// assembly channel transports and tests share).
pub(crate) fn assemble_frame(buf: &mut Vec<u8>, header: &[u8], payload: &Payload<'_>) {
    buf.extend_from_slice(header);
    match payload {
        Payload::Values(values) => {
            buf.reserve(values.len() * 8);
            for &v in *values {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Payload::Bytes(bytes) => buf.extend_from_slice(bytes),
    }
}

/// `None` frame is the end-of-stream marker; the source is implied by
/// which per-pair channel carried the message.
type PairMsg = Option<Vec<u8>>;

/// Bounded-channel transport between threads of this process: one
/// `sync_channel` per *directed pair*, demultiplexed by a select-style
/// poll loop on the receive side.
pub struct InProcess;

impl Transport for InProcess {
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
        pool: &Arc<BufPool>,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError> {
        // chans[src][dst]: the directed channel from src to dst. Built
        // column-wise so endpoint `i` can collect its receive column
        // (from every src) and its send row (to every dst).
        let mut txs: Vec<Vec<SyncSender<PairMsg>>> = (0..workers).map(|_| Vec::new()).collect();
        let mut rx_cols: Vec<Vec<Receiver<PairMsg>>> = (0..workers).map(|_| Vec::new()).collect();
        for src_txs in txs.iter_mut() {
            for rx_col in rx_cols.iter_mut() {
                let (tx, rx) = sync_channel(depth.max(1));
                src_txs.push(tx);
                rx_col.push(rx);
            }
        }
        Ok(txs
            .into_iter()
            .zip(rx_cols)
            .map(|(peers, rxs)| {
                Box::new(InProcessEndpoint {
                    peers,
                    rxs,
                    timeout,
                    pool: Arc::clone(pool),
                }) as Box<dyn Endpoint>
            })
            .collect())
    }
}

struct InProcessEndpoint {
    peers: Vec<SyncSender<PairMsg>>,
    rxs: Vec<Receiver<PairMsg>>,
    timeout: Duration,
    pool: Arc<BufPool>,
}

impl Endpoint for InProcessEndpoint {
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>) {
        (
            Box::new(InProcessSender {
                peers: self.peers,
                pool: self.pool,
            }),
            Box::new(InProcessReceiver {
                peers: self
                    .rxs
                    .into_iter()
                    .map(|rx| Peer {
                        rx,
                        state: PeerState::Live,
                    })
                    .collect(),
                timeout: self.timeout,
                cursor: 0,
            }),
        )
    }
}

struct InProcessSender {
    peers: Vec<SyncSender<PairMsg>>,
    pool: Arc<BufPool>,
}

impl BatchSender for InProcessSender {
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError> {
        self.peers[dest]
            .send(Some(frame))
            .map_err(|_| RuntimeError::Disconnected(format!("worker {dest} inbox closed")))
    }

    fn send_vectored(
        &mut self,
        dest: usize,
        header: &[u8],
        payload: Payload<'_>,
    ) -> Result<u64, RuntimeError> {
        // Channels ship owned messages, so the frame is assembled — but
        // in a pooled buffer that the receive side recycles, so steady
        // state allocates nothing.
        let mut frame = self.pool.acquire();
        assemble_frame(&mut frame, header, &payload);
        let len = frame.len() as u64;
        self.send(dest, frame)?;
        Ok(len)
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        for tx in &self.peers {
            // A closed inbox means that peer is already gone; it cannot
            // be waiting for our end-of-stream marker.
            let _ = tx.send(None);
        }
        Ok(())
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum PeerState {
    /// Still expected to produce frames or an end-of-stream marker.
    Live,
    /// Signalled end-of-stream; its channel is done.
    Eos,
    /// Hung up without end-of-stream (the peer died mid-shuffle).
    Dead,
}

struct Peer {
    rx: Receiver<PairMsg>,
    state: PeerState,
}

/// Select-style demux over the per-pair channels: one loop round-robins
/// `try_recv` across all live peers, so the whole inbox costs a single
/// receive thread regardless of mesh width.
struct InProcessReceiver {
    peers: Vec<Peer>,
    timeout: Duration,
    cursor: usize,
}

impl BatchReceiver for InProcessReceiver {
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError> {
        let p = self.peers.len();
        let deadline = Instant::now() + self.timeout;
        let mut idle_rounds = 0u32;
        loop {
            let mut live = 0usize;
            let mut dead = 0usize;
            let mut progressed = false;
            for step in 0..p {
                let src = (self.cursor + step) % p;
                let peer = &mut self.peers[src];
                match peer.state {
                    PeerState::Eos => continue,
                    PeerState::Dead => {
                        dead += 1;
                        continue;
                    }
                    PeerState::Live => {}
                }
                match peer.rx.try_recv() {
                    Ok(Some(frame)) => {
                        // Resume the scan *after* this peer next time so
                        // one chatty peer cannot starve the others.
                        self.cursor = (src + 1) % p;
                        return Ok(Some((src, frame)));
                    }
                    Ok(None) => {
                        peer.state = PeerState::Eos;
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => live += 1,
                    Err(TryRecvError::Disconnected) => {
                        peer.state = PeerState::Dead;
                        dead += 1;
                        progressed = true;
                    }
                }
            }
            if live == 0 {
                if dead == 0 {
                    return Ok(None); // every peer reached end-of-stream
                }
                return Err(RuntimeError::Disconnected(format!(
                    "{dead} peer(s) dropped before end-of-stream"
                )));
            }
            if progressed {
                idle_rounds = 0;
                continue;
            }
            if Instant::now() >= deadline {
                let outstanding = self
                    .peers
                    .iter()
                    .filter(|peer| peer.state != PeerState::Eos)
                    .count();
                return Err(RuntimeError::Timeout(format!(
                    "no batch within {:?}; {outstanding} peer(s) never finished",
                    self.timeout
                )));
            }
            idle_rounds += 1;
            idle_backoff(idle_rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn test_pool() -> Arc<BufPool> {
        Arc::new(BufPool::detached())
    }

    #[test]
    fn in_process_mesh_round_trips_frames() {
        let eps = InProcess
            .mesh(2, 4, Duration::from_secs(5), &test_pool())
            .expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let ta = thread::spawn(move || {
            let (mut tx, mut rx) = a.split();
            tx.send(1, vec![1, 2, 3]).expect("send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        let tb = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.send(0, vec![9]).expect("send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        let got_a = ta.join().expect("worker 0");
        let got_b = tb.join().expect("worker 1");
        assert_eq!(got_a, vec![(1, vec![9])]);
        assert_eq!(got_b, vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    fn receiver_errors_when_peer_drops_without_eos() {
        let eps = InProcess
            .mesh(2, 4, Duration::from_secs(5), &test_pool())
            .expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");
        drop(b); // peer dies before sending anything
        let (mut tx, mut rx) = a.split();
        tx.finish().expect("own eos still works");
        drop(tx);
        assert!(matches!(rx.recv(), Err(RuntimeError::Disconnected(_))));
    }

    #[test]
    fn vectored_send_assembles_header_and_payload() {
        let pool = test_pool();
        let eps = InProcess
            .mesh(1, 4, Duration::from_secs(5), &pool)
            .expect("mesh");
        let (mut tx, mut rx) = eps.into_iter().next().expect("endpoint").split();
        let values = [1u64, u64::MAX];
        let len = tx
            .send_vectored(0, &[0xAA, 0xBB], Payload::Values(&values))
            .expect("send");
        assert_eq!(len, 2 + 16);
        tx.finish().expect("finish");
        drop(tx);
        let (src, frame) = rx.recv().expect("recv").expect("frame");
        assert_eq!(src, 0);
        let mut expect = vec![0xAA, 0xBB];
        expect.extend_from_slice(&1u64.to_le_bytes());
        expect.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(frame, expect);
        assert!(rx.recv().expect("eos").is_none());
    }

    #[test]
    fn vectored_send_reuses_pooled_buffers() {
        let pool = test_pool();
        let eps = InProcess
            .mesh(1, 4, Duration::from_secs(5), &pool)
            .expect("mesh");
        let (mut tx, mut rx) = eps.into_iter().next().expect("endpoint").split();
        for _ in 0..3 {
            tx.send_vectored(0, &[1], Payload::Bytes(&[2, 3]))
                .expect("send");
            let (_, frame) = rx.recv().expect("recv").expect("frame");
            pool.release(frame); // what the exchange drain does post-decode
        }
        assert!(
            pool.idle() >= 1,
            "frames must cycle back onto the free list"
        );
    }
}
