//! Loopback TCP transport (`transport-tcp` feature).
//!
//! Wire protocol per connection, after a 4-byte little-endian *hello*
//! carrying the sender's worker id:
//!
//! ```text
//! frame := 0x00  u32-LE payload length  payload   (one encoded batch)
//!        | 0x01                                   (end-of-stream)
//! ```
//!
//! The mesh is `p × p` directed connections over `127.0.0.1` (self-loops
//! included, so byte accounting matches the in-process transport
//! exactly). Each accepted connection gets a reader thread that decodes
//! frames into the owning worker's bounded inbox; TCP flow control plus
//! that bound give end-to-end backpressure. Connect races are absorbed
//! by retry with exponential backoff; graceful shutdown is the
//! end-of-stream frame followed by closing the write side, which lets
//! reader threads exit on EOF.
//!
//! Decode failures (a corrupt tag, a length prefix above
//! [`MAX_FRAME_BYTES`], a stream truncated mid-frame) are forwarded to
//! the owning worker as in-band poison messages, so the receiver's error
//! names the cause instead of timing out in silence; each one also
//! bumps the [`RuntimeObs::rx_decode_errors`] counter.

use crate::error::RuntimeError;
use crate::metrics::RuntimeObs;
use crate::transport::{BatchReceiver, BatchSender, Endpoint, Transport};
use parjoin_obs::Counter;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::time::Duration;

const TAG_BATCH: u8 = 0x00;
const TAG_EOS: u8 = 0x01;

/// Sanity cap on a single frame (64 MiB): a larger length prefix means a
/// corrupt or hostile stream, not a real batch.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Connects to `addr`, retrying with exponential backoff (1 ms doubling
/// to 128 ms) for up to `attempts` tries. Loopback listeners bound a few
/// microseconds ago can still refuse the very first SYN; everything
/// beyond a handful of retries is a real failure.
///
/// # Errors
/// [`RuntimeError::Io`] with the last OS error once retries are spent.
pub fn connect_with_retry(addr: SocketAddr, attempts: u32) -> Result<TcpStream, RuntimeError> {
    let mut delay = Duration::from_millis(1);
    let mut last = String::new();
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(128));
        }
    }
    Err(RuntimeError::Io(format!(
        "connect to {addr} failed after {attempts} attempts: {last}"
    )))
}

/// The wire protocol announces each sender with a `u32` hello, so a mesh
/// wider than `u32::MAX` workers cannot be represented on the wire.
///
/// # Errors
/// [`RuntimeError::Config`] when `workers` does not fit.
fn check_mesh_width(workers: usize) -> Result<u32, RuntimeError> {
    u32::try_from(workers).map_err(|_| {
        RuntimeError::Config(format!(
            "a TCP mesh of {workers} workers exceeds the wire protocol's u32 hello"
        ))
    })
}

/// Loopback-socket transport. Carries the observability bundle whose
/// counters the senders (flushes) and reader threads (decode errors)
/// report into; the default bundle is detached.
#[derive(Default)]
pub struct Tcp {
    /// Counter handles for transport-level tallies.
    pub obs: RuntimeObs,
}

impl Tcp {
    /// A transport reporting into `obs`.
    pub fn with_obs(obs: RuntimeObs) -> Tcp {
        Tcp { obs }
    }
}

/// What a reader thread forwards to the owning worker's inbox.
enum Frame {
    /// One decoded batch payload.
    Batch(Vec<u8>),
    /// The peer's end-of-stream marker.
    Eos,
    /// The stream broke mid-protocol; the payload names the cause.
    Corrupt(String),
}

type Msg = (usize, Frame);

impl Transport for Tcp {
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError> {
        let io = |e: std::io::Error| RuntimeError::Io(e.to_string());
        check_mesh_width(workers)?;

        // One listener per worker on an ephemeral loopback port.
        let mut listeners = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(io)?;
            addrs.push(listener.local_addr().map_err(io)?);
            listeners.push(listener);
        }

        // Outgoing side: worker i dials every destination and announces
        // itself with the hello frame. The kernel backlog holds these
        // until the accept loop below runs. The `as u32` cast is exact:
        // `check_mesh_width` proved every id fits.
        let mut outgoing: Vec<Vec<BufWriter<TcpStream>>> = Vec::with_capacity(workers);
        for src in 0..workers {
            let mut conns = Vec::with_capacity(workers);
            for &addr in &addrs {
                let stream = connect_with_retry(addr, 10)?;
                stream.set_nodelay(true).map_err(io)?;
                let mut writer = BufWriter::new(stream);
                writer.write_all(&(src as u32).to_le_bytes()).map_err(io)?;
                writer.flush().map_err(io)?;
                conns.push(writer);
            }
            outgoing.push(conns);
        }

        // Incoming side: accept the p connections aimed at each worker,
        // learn who is on the other end from the hello, and hand the
        // stream to a reader thread feeding that worker's bounded inbox.
        let mut endpoints: Vec<Box<dyn Endpoint>> = Vec::with_capacity(workers);
        for (listener, senders) in listeners.into_iter().zip(outgoing) {
            let (tx, rx): (SyncSender<Msg>, Receiver<Msg>) = sync_channel(depth.max(1));
            for _ in 0..workers {
                let (stream, _) = listener.accept().map_err(io)?;
                let mut hello = [0u8; 4];
                let mut s = stream;
                s.read_exact(&mut hello).map_err(io)?;
                let src = u32::from_le_bytes(hello) as usize;
                if src >= workers {
                    return Err(RuntimeError::Io(format!(
                        "hello names worker {src}, but the mesh has {workers}"
                    )));
                }
                let inbox = tx.clone();
                let decode_errors = self.obs.rx_decode_errors.clone();
                // Intentionally detached: the reader exits on its own
                // when the peer closes the socket (EOF) or the inbox
                // receiver is dropped at shutdown.
                std::thread::Builder::new()
                    .name(format!("parjoin-tcp-read-{src}"))
                    // xtask: allow(spawn)
                    .spawn(move || read_frames(s, src, &inbox, &decode_errors))
                    .map_err(io)?;
            }
            drop(tx); // readers hold the only inbox senders now
            endpoints.push(Box::new(TcpEndpoint {
                senders,
                rx,
                eos_left: workers,
                timeout,
                obs: self.obs.clone(),
            }));
        }
        Ok(endpoints)
    }
}

/// Reads frames until end-of-stream, EOF, or a closed inbox, forwarding
/// each batch as `Frame::Batch` and end-of-stream as `Frame::Eos`. A
/// protocol violation (bad tag, oversized length, truncation inside a
/// frame) is counted on `decode_errors` and forwarded as
/// `Frame::Corrupt` so the receiver can report the cause; a clean EOF
/// before end-of-stream simply drops this thread's inbox sender, which
/// is how the receiver learns the peer died between frames.
fn read_frames(
    mut stream: TcpStream,
    src: usize,
    inbox: &SyncSender<Msg>,
    decode_errors: &Counter,
) {
    let corrupt = |cause: String| {
        decode_errors.inc();
        Frame::Corrupt(cause)
    };
    loop {
        let mut tag = [0u8; 1];
        if stream.read_exact(&mut tag).is_err() {
            return; // EOF or reset before end-of-stream
        }
        match tag[0] {
            TAG_EOS => {
                let _ = inbox.send((src, Frame::Eos));
                return;
            }
            TAG_BATCH => {
                let mut len = [0u8; 4];
                if stream.read_exact(&mut len).is_err() {
                    let _ = inbox.send((
                        src,
                        corrupt(format!(
                            "stream from worker {src} truncated in a length prefix"
                        )),
                    ));
                    return;
                }
                let len = u32::from_le_bytes(len);
                if len > MAX_FRAME_BYTES {
                    let _ = inbox.send((
                        src,
                        corrupt(format!(
                            "frame from worker {src} declares {len} bytes, above the \
                             {MAX_FRAME_BYTES}-byte limit"
                        )),
                    ));
                    return;
                }
                let mut payload = vec![0u8; len as usize];
                if stream.read_exact(&mut payload).is_err() {
                    let _ = inbox.send((
                        src,
                        corrupt(format!(
                            "stream from worker {src} truncated mid-frame ({len}-byte \
                             payload never completed)"
                        )),
                    ));
                    return;
                }
                if inbox.send((src, Frame::Batch(payload))).is_err() {
                    return; // receiver gone (worker errored out)
                }
            }
            other => {
                let _ = inbox.send((
                    src,
                    corrupt(format!(
                        "corrupt frame tag {other:#04x} from worker {src} (expected batch or \
                         end-of-stream)"
                    )),
                ));
                return;
            }
        }
    }
}

struct TcpEndpoint {
    senders: Vec<BufWriter<TcpStream>>,
    rx: Receiver<Msg>,
    eos_left: usize,
    timeout: Duration,
    obs: RuntimeObs,
}

impl Endpoint for TcpEndpoint {
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>) {
        (
            Box::new(TcpSender {
                senders: self.senders,
                flushes: self.obs.tx_flushes,
            }),
            Box::new(TcpReceiver {
                rx: self.rx,
                eos_left: self.eos_left,
                timeout: self.timeout,
            }),
        )
    }
}

struct TcpSender {
    senders: Vec<BufWriter<TcpStream>>,
    flushes: Counter,
}

impl BatchSender for TcpSender {
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError> {
        // Refuse a frame the peer would reject as corrupt. The length
        // check also guarantees the u32 cast below is exact.
        if frame.len() as u64 > u64::from(MAX_FRAME_BYTES) {
            return Err(RuntimeError::FrameTooLarge {
                bytes: frame.len() as u64,
                limit: u64::from(MAX_FRAME_BYTES),
            });
        }
        let w = &mut self.senders[dest];
        let write = (|| {
            w.write_all(&[TAG_BATCH])?;
            w.write_all(&(frame.len() as u32).to_le_bytes())?;
            w.write_all(&frame)?;
            // Flush per frame: batches are already sized for throughput,
            // and prompt delivery keeps peer drain threads busy instead
            // of stalling on buffered bytes.
            w.flush()
        })();
        self.flushes.inc();
        write.map_err(|e| RuntimeError::Disconnected(format!("write to worker {dest}: {e}")))
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        for w in &mut self.senders {
            // Best-effort: a dead peer cannot be waiting for our marker.
            let _ = w.write_all(&[TAG_EOS]).and_then(|()| w.flush());
            self.flushes.inc();
        }
        Ok(())
    }
}

struct TcpReceiver {
    rx: Receiver<Msg>,
    eos_left: usize,
    timeout: Duration,
}

impl BatchReceiver for TcpReceiver {
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError> {
        while self.eos_left > 0 {
            match self.rx.recv_timeout(self.timeout) {
                Ok((src, Frame::Batch(frame))) => return Ok(Some((src, frame))),
                Ok((_, Frame::Eos)) => self.eos_left -= 1,
                Ok((_, Frame::Corrupt(cause))) => {
                    return Err(RuntimeError::Disconnected(format!(
                        "corrupt stream: {cause}; {} peer(s) were still outstanding",
                        self.eos_left
                    )));
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(RuntimeError::Timeout(format!(
                        "no frame within {:?}; {} peer(s) never finished",
                        self.timeout, self.eos_left
                    )));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected(format!(
                        "{} peer(s) closed before end-of-stream",
                        self.eos_left
                    )));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn connect_with_retry_gives_up() {
        // Port 1 on loopback is essentially never listening; two quick
        // attempts must fail fast with an I/O error.
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let start = std::time::Instant::now();
        let err = connect_with_retry(addr, 2);
        assert!(matches!(err, Err(RuntimeError::Io(_))));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn tcp_mesh_round_trips_frames() {
        let eps = Tcp::default()
            .mesh(2, 4, Duration::from_secs(10))
            .expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let ta = thread::spawn(move || {
            let (mut tx, mut rx) = a.split();
            tx.send(1, vec![1, 2, 3]).expect("send");
            tx.send(0, vec![7]).expect("self send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got.sort();
            got
        });
        let tb = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        assert_eq!(ta.join().expect("worker 0"), vec![(0, vec![7])]);
        assert_eq!(tb.join().expect("worker 1"), vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    fn mesh_counts_flushes() {
        let obs = RuntimeObs::detached();
        let eps = Tcp::with_obs(obs.clone())
            .mesh(1, 4, Duration::from_secs(10))
            .expect("mesh");
        let (mut tx, mut rx) = eps.into_iter().next().expect("endpoint").split();
        tx.send(0, vec![1, 2]).expect("send");
        tx.finish().expect("finish");
        drop(tx);
        while rx.recv().expect("recv").is_some() {}
        // One per frame plus one per end-of-stream marker.
        assert_eq!(obs.tx_flushes.get(), 2);
    }

    #[test]
    fn mesh_width_is_validated_not_asserted() {
        assert!(check_mesh_width(4).is_ok());
        let err = check_mesh_width(usize::MAX);
        assert!(
            matches!(err, Err(RuntimeError::Config(ref m)) if m.contains("u32")),
            "oversized mesh must be a typed config error: {err:?}"
        );
    }

    /// A connected (writer, reader) TCP pair on loopback.
    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let w = TcpStream::connect(addr).expect("connect");
        let (r, _) = listener.accept().expect("accept");
        (w, r)
    }

    /// Runs `read_frames` over bytes written by `write`, returning what
    /// reached the inbox and the decode-error count.
    fn read_poisoned(write: impl FnOnce(&mut TcpStream)) -> (Vec<Frame>, u64) {
        let (mut w, r) = pipe();
        let errors = Counter::new();
        let (tx, rx) = sync_channel::<Msg>(8);
        write(&mut w);
        drop(w);
        read_frames(r, 1, &tx, &errors);
        drop(tx);
        (rx.into_iter().map(|(_, f)| f).collect(), errors.get())
    }

    #[test]
    fn corrupt_tag_is_reported_with_cause() {
        let (frames, errors) = read_poisoned(|w| {
            w.write_all(&[0x7f]).expect("write");
        });
        assert_eq!(errors, 1);
        match frames.as_slice() {
            [Frame::Corrupt(cause)] => {
                assert!(cause.contains("0x7f"), "cause names the tag: {cause}");
                assert!(cause.contains("worker 1"), "cause names the peer: {cause}");
            }
            other => panic!("expected one corrupt frame, got {} frames", other.len()),
        }
    }

    #[test]
    fn oversized_length_prefix_is_reported() {
        let (frames, errors) = read_poisoned(|w| {
            w.write_all(&[TAG_BATCH]).expect("tag");
            w.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
                .expect("len");
        });
        assert_eq!(errors, 1);
        match frames.as_slice() {
            [Frame::Corrupt(cause)] => {
                assert!(cause.contains("limit"), "cause names the limit: {cause}");
            }
            other => panic!("expected one corrupt frame, got {} frames", other.len()),
        }
    }

    #[test]
    fn truncated_frame_is_reported() {
        let (frames, errors) = read_poisoned(|w| {
            w.write_all(&[TAG_BATCH]).expect("tag");
            w.write_all(&100u32.to_le_bytes()).expect("len");
            w.write_all(&[0u8; 10]).expect("partial payload");
        });
        assert_eq!(errors, 1);
        match frames.as_slice() {
            [Frame::Corrupt(cause)] => {
                assert!(
                    cause.contains("truncated mid-frame"),
                    "cause names truncation: {cause}"
                );
            }
            other => panic!("expected one corrupt frame, got {} frames", other.len()),
        }
    }

    #[test]
    fn clean_eof_before_eos_stays_silent() {
        // Peer death *between* frames is not a decode error: the dropped
        // inbox sender is the signal (receiver reports Disconnected).
        let (frames, errors) = read_poisoned(|_| {});
        assert!(frames.is_empty());
        assert_eq!(errors, 0);
    }

    #[test]
    fn receiver_surfaces_decode_failure_in_error_text() {
        let (tx, rx) = sync_channel::<Msg>(8);
        tx.send((
            0,
            Frame::Corrupt("corrupt frame tag 0x7f from worker 0".into()),
        ))
        .expect("send");
        let mut receiver = TcpReceiver {
            rx,
            eos_left: 2,
            timeout: Duration::from_secs(5),
        };
        let err = receiver.recv();
        match err {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(msg.contains("0x7f"), "error names the cause: {msg}");
                assert!(msg.contains("2 peer(s)"), "error counts peers: {msg}");
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn oversized_send_is_a_typed_error_not_a_panic() {
        let (w, _r) = pipe();
        let mut sender = TcpSender {
            senders: vec![BufWriter::new(w)],
            flushes: Counter::new(),
        };
        let frame = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let err = sender.send(0, frame);
        assert!(
            matches!(
                err,
                Err(RuntimeError::FrameTooLarge { bytes, limit })
                    if bytes == u64::from(MAX_FRAME_BYTES) + 1 && limit == u64::from(MAX_FRAME_BYTES)
            ),
            "oversized frame must be rejected up front: {err:?}"
        );
        // A frame at the limit boundary is still representable.
        assert!(u32::try_from(MAX_FRAME_BYTES as usize).is_ok());
    }

    #[test]
    fn peer_death_mid_stream_is_a_prompt_disconnect_not_a_hang() {
        // End-to-end: on a live 2-worker mesh, worker 0's sender drops
        // without ever writing end-of-stream (the "peer died" shape).
        // Worker 0's receiver must fail with Disconnected well before
        // the 30-second mesh timeout — never hang waiting it out.
        let eps = Tcp::default()
            .mesh(2, 4, Duration::from_secs(30))
            .expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let peer = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.finish().expect("finish");
            drop(tx);
            // Drain until our own stream ends or errors; outcome unused.
            while let Ok(Some(_)) = rx.recv() {}
        });

        let start = std::time::Instant::now();
        let (tx_a, mut rx_a) = a.split();
        drop(tx_a); // dies without end-of-stream
        let err = rx_a.recv();
        assert!(
            matches!(err, Err(RuntimeError::Disconnected(_))),
            "peer death mid-stream must be a descriptive error: {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "must not wait out the 30s mesh timeout"
        );
        peer.join().expect("worker 1");
    }
}
