//! Loopback TCP transport (`transport-tcp` feature).
//!
//! Wire protocol per connection, after a 4-byte little-endian *hello*
//! carrying the sender's worker id:
//!
//! ```text
//! frame := 0x00  u32-LE payload length  payload   (one encoded batch)
//!        | 0x01                                   (end-of-stream)
//! ```
//!
//! The mesh is `p × p` directed connections over `127.0.0.1` (self-loops
//! included, so byte accounting matches the in-process transport
//! exactly). Each accepted connection gets a reader thread that decodes
//! frames into the owning worker's bounded inbox; TCP flow control plus
//! that bound give end-to-end backpressure. Connect races are absorbed
//! by retry with exponential backoff; graceful shutdown is the
//! end-of-stream frame followed by closing the write side, which lets
//! reader threads exit on EOF.

use crate::error::RuntimeError;
use crate::transport::{BatchReceiver, BatchSender, Endpoint, Transport};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::time::Duration;

const TAG_BATCH: u8 = 0x00;
const TAG_EOS: u8 = 0x01;

/// Sanity cap on a single frame (64 MiB): a larger length prefix means a
/// corrupt or hostile stream, not a real batch.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Connects to `addr`, retrying with exponential backoff (1 ms doubling
/// to 128 ms) for up to `attempts` tries. Loopback listeners bound a few
/// microseconds ago can still refuse the very first SYN; everything
/// beyond a handful of retries is a real failure.
///
/// # Errors
/// [`RuntimeError::Io`] with the last OS error once retries are spent.
pub fn connect_with_retry(addr: SocketAddr, attempts: u32) -> Result<TcpStream, RuntimeError> {
    let mut delay = Duration::from_millis(1);
    let mut last = String::new();
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(128));
        }
    }
    Err(RuntimeError::Io(format!(
        "connect to {addr} failed after {attempts} attempts: {last}"
    )))
}

/// Loopback-socket transport.
pub struct Tcp;

type Msg = (usize, Option<Vec<u8>>);

impl Transport for Tcp {
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError> {
        let io = |e: std::io::Error| RuntimeError::Io(e.to_string());

        // One listener per worker on an ephemeral loopback port.
        let mut listeners = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(io)?;
            addrs.push(listener.local_addr().map_err(io)?);
            listeners.push(listener);
        }

        // Outgoing side: worker i dials every destination and announces
        // itself with the hello frame. The kernel backlog holds these
        // until the accept loop below runs.
        let mut outgoing: Vec<Vec<BufWriter<TcpStream>>> = Vec::with_capacity(workers);
        for src in 0..workers {
            let mut conns = Vec::with_capacity(workers);
            for &addr in &addrs {
                let stream = connect_with_retry(addr, 10)?;
                stream.set_nodelay(true).map_err(io)?;
                let mut writer = BufWriter::new(stream);
                writer
                    .write_all(
                        &u32::try_from(src)
                            .expect("worker count fits u32")
                            .to_le_bytes(),
                    )
                    .map_err(io)?;
                writer.flush().map_err(io)?;
                conns.push(writer);
            }
            outgoing.push(conns);
        }

        // Incoming side: accept the p connections aimed at each worker,
        // learn who is on the other end from the hello, and hand the
        // stream to a reader thread feeding that worker's bounded inbox.
        let mut endpoints: Vec<Box<dyn Endpoint>> = Vec::with_capacity(workers);
        for (listener, senders) in listeners.into_iter().zip(outgoing) {
            let (tx, rx): (SyncSender<Msg>, Receiver<Msg>) = sync_channel(depth.max(1));
            for _ in 0..workers {
                let (stream, _) = listener.accept().map_err(io)?;
                let mut hello = [0u8; 4];
                let mut s = stream;
                s.read_exact(&mut hello).map_err(io)?;
                let src = u32::from_le_bytes(hello) as usize;
                if src >= workers {
                    return Err(RuntimeError::Io(format!(
                        "hello names worker {src}, but the mesh has {workers}"
                    )));
                }
                let inbox = tx.clone();
                std::thread::Builder::new()
                    .name(format!("parjoin-tcp-read-{src}"))
                    .spawn(move || read_frames(s, src, &inbox))
                    .map_err(io)?;
            }
            drop(tx); // readers hold the only inbox senders now
            endpoints.push(Box::new(TcpEndpoint {
                senders,
                rx,
                eos_left: workers,
                timeout,
            }));
        }
        Ok(endpoints)
    }
}

/// Reads frames until end-of-stream, EOF, or a closed inbox, forwarding
/// each batch as `(src, Some(payload))` and end-of-stream as
/// `(src, None)`. Exiting without sending the end-of-stream marker drops
/// this thread's inbox sender, which is how the receiver learns the peer
/// died mid-stream.
fn read_frames(mut stream: TcpStream, src: usize, inbox: &SyncSender<Msg>) {
    loop {
        let mut tag = [0u8; 1];
        if stream.read_exact(&mut tag).is_err() {
            return; // EOF or reset before end-of-stream
        }
        match tag[0] {
            TAG_EOS => {
                let _ = inbox.send((src, None));
                return;
            }
            TAG_BATCH => {
                let mut len = [0u8; 4];
                if stream.read_exact(&mut len).is_err() {
                    return;
                }
                let len = u32::from_le_bytes(len);
                if len > MAX_FRAME_BYTES {
                    return;
                }
                let mut payload = vec![0u8; len as usize];
                if stream.read_exact(&mut payload).is_err() {
                    return;
                }
                if inbox.send((src, Some(payload))).is_err() {
                    return; // receiver gone (worker errored out)
                }
            }
            _ => return, // corrupt stream
        }
    }
}

struct TcpEndpoint {
    senders: Vec<BufWriter<TcpStream>>,
    rx: Receiver<Msg>,
    eos_left: usize,
    timeout: Duration,
}

impl Endpoint for TcpEndpoint {
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>) {
        (
            Box::new(TcpSender {
                senders: self.senders,
            }),
            Box::new(TcpReceiver {
                rx: self.rx,
                eos_left: self.eos_left,
                timeout: self.timeout,
            }),
        )
    }
}

struct TcpSender {
    senders: Vec<BufWriter<TcpStream>>,
}

impl BatchSender for TcpSender {
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError> {
        let w = &mut self.senders[dest];
        let write = (|| {
            w.write_all(&[TAG_BATCH])?;
            w.write_all(
                &u32::try_from(frame.len())
                    .expect("frame under 4 GiB")
                    .to_le_bytes(),
            )?;
            w.write_all(&frame)?;
            // Flush per frame: batches are already sized for throughput,
            // and prompt delivery keeps peer drain threads busy instead
            // of stalling on buffered bytes.
            w.flush()
        })();
        write.map_err(|e| RuntimeError::Disconnected(format!("write to worker {dest}: {e}")))
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        for w in &mut self.senders {
            // Best-effort: a dead peer cannot be waiting for our marker.
            let _ = w.write_all(&[TAG_EOS]).and_then(|()| w.flush());
        }
        Ok(())
    }
}

struct TcpReceiver {
    rx: Receiver<Msg>,
    eos_left: usize,
    timeout: Duration,
}

impl BatchReceiver for TcpReceiver {
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError> {
        while self.eos_left > 0 {
            match self.rx.recv_timeout(self.timeout) {
                Ok((src, Some(frame))) => return Ok(Some((src, frame))),
                Ok((_, None)) => self.eos_left -= 1,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(RuntimeError::Timeout(format!(
                        "no frame within {:?}; {} peer(s) never finished",
                        self.timeout, self.eos_left
                    )));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected(format!(
                        "{} peer(s) closed before end-of-stream",
                        self.eos_left
                    )));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn connect_with_retry_gives_up() {
        // Port 1 on loopback is essentially never listening; two quick
        // attempts must fail fast with an I/O error.
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let start = std::time::Instant::now();
        let err = connect_with_retry(addr, 2);
        assert!(matches!(err, Err(RuntimeError::Io(_))));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn tcp_mesh_round_trips_frames() {
        let eps = Tcp.mesh(2, 4, Duration::from_secs(10)).expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let ta = thread::spawn(move || {
            let (mut tx, mut rx) = a.split();
            tx.send(1, vec![1, 2, 3]).expect("send");
            tx.send(0, vec![7]).expect("self send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got.sort();
            got
        });
        let tb = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        assert_eq!(ta.join().expect("worker 0"), vec![(0, vec![7])]);
        assert_eq!(tb.join().expect("worker 1"), vec![(0, vec![1, 2, 3])]);
    }
}
