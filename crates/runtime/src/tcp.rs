//! Loopback TCP transport (`transport-tcp` feature).
//!
//! Wire protocol per connection, after a 4-byte little-endian *hello*
//! carrying the sender's worker id:
//!
//! ```text
//! frame := 0x00  u32-LE payload length  payload   (one encoded batch)
//!        | 0x01                                   (end-of-stream)
//! ```
//!
//! The mesh is `p × p` directed connections over `127.0.0.1` (self-loops
//! included, so byte accounting matches the in-process transport
//! exactly). The receive side is an **event loop**: each worker's
//! receiver owns all `p` incoming sockets in nonblocking mode and
//! round-robin polls them through a per-connection framing state machine
//! ([`Stage`]), so an N-node mesh costs one receive thread per worker —
//! not the one-reader-thread-per-peer design this replaced.
//! Backpressure is TCP flow control: a receiver that stops polling lets
//! socket buffers fill until the sender's blocking `write` stalls.
//! Payload buffers come from the runtime's [`BufPool`], so steady-state
//! shuffles recycle instead of allocating per frame.
//!
//! Senders write frames as scatter/gather: a small stack prefix
//! (tag + length + batch header) followed by the borrowed payload slice,
//! chunked through a stack buffer into the socket's `BufWriter` — no
//! owned per-frame encode buffer. Connect races are absorbed by retry
//! with exponential backoff; graceful shutdown is the end-of-stream
//! frame followed by closing the write side, which the receiver's state
//! machine observes as EOF.
//!
//! Decode failures (a corrupt tag, a length prefix above the configured
//! frame limit, a stream truncated mid-frame) surface as
//! [`RuntimeError::Disconnected`] naming the cause, and each one bumps
//! the [`RuntimeObs::rx_decode_errors`] counter.

use crate::error::RuntimeError;
use crate::metrics::RuntimeObs;
use crate::pool::BufPool;
pub use crate::transport::MAX_FRAME_BYTES;
use crate::transport::{BatchReceiver, BatchSender, Endpoint, Payload, Transport};
use parjoin_obs::Counter;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TAG_BATCH: u8 = 0x00;
const TAG_EOS: u8 = 0x01;

/// Values converted to little-endian bytes per stack-buffer refill on
/// the vectored send path (8 KiB, matching `BufWriter`'s buffer).
const SEND_CHUNK_VALUES: usize = 1024;

/// Retry and deadline policy for mesh formation: how hard each worker
/// dials its peers and how long the accept side waits for hellos.
///
/// Threaded down from [`RuntimeConfig`](crate::RuntimeConfig) so a
/// deployment can tune formation patience without recompiling; the
/// defaults suit loopback meshes where listeners are bound microseconds
/// before the first dial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeConfig {
    /// Dial attempts per peer before the connect is declared dead.
    pub connect_attempts: u32,
    /// First backoff delay between dial attempts.
    pub backoff_start: Duration,
    /// Ceiling the exponential backoff doubles up to — without it a
    /// long retry budget degenerates into multi-second sleeps.
    pub backoff_cap: Duration,
    /// Deadline for the accept-plus-hello phase of mesh formation: a
    /// peer that connects but never announces itself (or never connects
    /// at all) surfaces as [`RuntimeError::HandshakeTimeout`] once this
    /// expires instead of wedging the mesh forever.
    pub handshake_timeout: Duration,
}

impl Default for HandshakeConfig {
    fn default() -> HandshakeConfig {
        HandshakeConfig {
            connect_attempts: 10,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(128),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Connects to `addr` under `policy`: up to `connect_attempts` tries
/// with exponential backoff from `backoff_start` capped at
/// `backoff_cap`. Loopback listeners bound a few microseconds ago can
/// still refuse the very first SYN; everything beyond a handful of
/// retries is a real failure.
///
/// # Errors
/// [`RuntimeError::Disconnected`] carrying the full attempt/backoff
/// history once retries are spent, so the terminal error shows what was
/// tried and how long each wait was — not just the last OS error.
pub fn connect_with_retry(
    addr: SocketAddr,
    policy: &HandshakeConfig,
) -> Result<TcpStream, RuntimeError> {
    use std::fmt::Write as _;
    let attempts = policy.connect_attempts.max(1);
    let mut delay = policy.backoff_start.max(Duration::from_micros(1));
    let mut history = String::new();
    for attempt in 1..=attempts {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if !history.is_empty() {
                    history.push_str("; ");
                }
                let _ = write!(history, "attempt {attempt}: {e}");
            }
        }
        if attempt < attempts {
            let _ = write!(history, " (backed off {delay:?})");
            std::thread::sleep(delay);
            delay = (delay * 2).min(policy.backoff_cap.max(Duration::from_micros(1)));
        }
    }
    Err(RuntimeError::Disconnected(format!(
        "connect to {addr} failed after {attempts} attempt(s) [{history}]"
    )))
}

/// Reads the 4-byte hello from a freshly accepted (blocking) stream
/// without ever outliving `deadline`: the socket read timeout is
/// re-armed with the remaining budget before every read, so a peer that
/// connects and then stalls — or trickles the hello one byte at a time —
/// cannot hold mesh formation past the deadline.
///
/// # Errors
/// [`RuntimeError::HandshakeTimeout`] when the deadline expires,
/// [`RuntimeError::Disconnected`] when the peer closes mid-hello.
fn read_hello(stream: &mut TcpStream, deadline: Instant) -> Result<u32, RuntimeError> {
    let io = |e: std::io::Error| RuntimeError::Io(e.to_string());
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown peer>".to_string());
    let start = Instant::now();
    let mut hello = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(RuntimeError::HandshakeTimeout {
                peer,
                waited: start.elapsed(),
            });
        }
        stream.set_read_timeout(Some(remaining)).map_err(io)?;
        match stream.read(&mut hello[got..]) {
            Ok(0) => {
                return Err(RuntimeError::Disconnected(format!(
                    "peer {peer} closed during the mesh handshake \
                     ({got} of 4 hello bytes arrived)"
                )));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(RuntimeError::HandshakeTimeout {
                    peer,
                    waited: start.elapsed(),
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {} // EINTR: retry
            Err(e) => {
                return Err(RuntimeError::Disconnected(format!(
                    "peer {peer} failed during the mesh handshake: {e}"
                )));
            }
        }
    }
    stream.set_read_timeout(None).map_err(io)?;
    Ok(u32::from_le_bytes(hello))
}

/// Accepts exactly `expect` connections on `listener` and reads each
/// one's hello, all under a single `timeout` deadline. Hellos must name
/// a worker below `workers`, and no two connections may announce the
/// same worker id — the second claimant is rejected with a typed error
/// naming both sockets rather than silently replacing the first.
/// Returns the connections sorted by announcing worker (accept order is
/// a race).
fn accept_hellos(
    listener: &TcpListener,
    expect: usize,
    workers: usize,
    timeout: Duration,
) -> Result<Vec<Conn>, RuntimeError> {
    let io = |e: std::io::Error| RuntimeError::Io(e.to_string());
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<listener>".to_string());
    // Nonblocking accept lets the loop enforce the deadline itself;
    // `TcpListener` has no native accept timeout.
    listener.set_nonblocking(true).map_err(io)?;
    let start = Instant::now();
    let deadline = start + timeout;
    let mut seen: Vec<Option<String>> = vec![None; workers];
    let mut conns: Vec<Conn> = Vec::with_capacity(expect);
    let mut idle_rounds = 0u32;
    while conns.len() < expect {
        match listener.accept() {
            Ok((mut stream, remote)) => {
                idle_rounds = 0;
                // The hello read below bounds itself with a socket read
                // timeout, which needs the stream in blocking mode.
                stream.set_nonblocking(false).map_err(io)?;
                let src = read_hello(&mut stream, deadline)? as usize;
                if src >= workers {
                    return Err(RuntimeError::Io(format!(
                        "hello names worker {src}, but the mesh has {workers}"
                    )));
                }
                if let Some(first) = &seen[src] {
                    return Err(RuntimeError::DuplicateHello {
                        worker: src,
                        first: first.clone(),
                        second: remote.to_string(),
                    });
                }
                seen[src] = Some(remote.to_string());
                stream.set_nonblocking(true).map_err(io)?;
                conns.push(Conn::new(stream, src));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing = expect - conns.len();
                    return Err(RuntimeError::HandshakeTimeout {
                        peer: format!("{missing} peer(s) that never connected to {local}"),
                        waited: start.elapsed(),
                    });
                }
                idle_rounds += 1;
                crate::transport::idle_backoff(idle_rounds);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {} // EINTR: retry
            Err(e) => return Err(io(e)),
        }
    }
    // Leave a persistent listener in its default blocking state for the
    // next formation round.
    listener.set_nonblocking(false).map_err(io)?;
    conns.sort_by_key(|c| c.src);
    Ok(conns)
}

/// The wire protocol announces each sender with a `u32` hello, so a mesh
/// wider than `u32::MAX` workers cannot be represented on the wire.
///
/// # Errors
/// [`RuntimeError::Config`] when `workers` does not fit.
fn check_mesh_width(workers: usize) -> Result<u32, RuntimeError> {
    u32::try_from(workers).map_err(|_| {
        RuntimeError::Config(format!(
            "a TCP mesh of {workers} workers exceeds the wire protocol's u32 hello"
        ))
    })
}

/// Loopback-socket transport. Carries the observability bundle whose
/// counters the senders (flushes) and receive loops (decode errors)
/// report into; the default bundle is detached.
pub struct Tcp {
    /// Counter handles for transport-level tallies.
    pub obs: RuntimeObs,
    /// Per-frame size limit senders enforce and receivers reject above.
    pub max_frame: u32,
    /// Dial-retry and hello-deadline policy for mesh formation.
    pub handshake: HandshakeConfig,
}

impl Default for Tcp {
    fn default() -> Tcp {
        Tcp {
            obs: RuntimeObs::default(),
            max_frame: MAX_FRAME_BYTES,
            handshake: HandshakeConfig::default(),
        }
    }
}

impl Tcp {
    /// A transport reporting into `obs`, with the default frame limit.
    pub fn with_obs(obs: RuntimeObs) -> Tcp {
        Tcp {
            obs,
            max_frame: MAX_FRAME_BYTES,
            handshake: HandshakeConfig::default(),
        }
    }

    /// Overrides the per-frame size limit.
    pub fn with_frame_limit(mut self, max_frame: u32) -> Tcp {
        self.max_frame = max_frame;
        self
    }

    /// Overrides the mesh-formation handshake policy.
    pub fn with_handshake(mut self, handshake: HandshakeConfig) -> Tcp {
        self.handshake = handshake;
        self
    }
}

impl Transport for Tcp {
    fn mesh(
        &self,
        workers: usize,
        depth: usize,
        timeout: Duration,
        pool: &Arc<BufPool>,
    ) -> Result<Vec<Box<dyn Endpoint>>, RuntimeError> {
        let io = |e: std::io::Error| RuntimeError::Io(e.to_string());
        check_mesh_width(workers)?;
        // The event-loop receiver needs no bounded inbox; `depth` only
        // shapes the channel transports. TCP's window is the socket
        // buffer itself.
        let _ = depth;

        // One listener per worker on an ephemeral loopback port.
        let mut listeners = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(io)?;
            addrs.push(listener.local_addr().map_err(io)?);
            listeners.push(listener);
        }

        // Outgoing side: worker i dials every destination and announces
        // itself with the hello frame. The kernel backlog holds these
        // until the accept loop below runs. The `as u32` cast is exact:
        // `check_mesh_width` proved every id fits.
        let mut outgoing: Vec<Vec<BufWriter<TcpStream>>> = Vec::with_capacity(workers);
        for src in 0..workers {
            let mut conns = Vec::with_capacity(workers);
            for &addr in &addrs {
                let stream = connect_with_retry(addr, &self.handshake)?;
                stream.set_nodelay(true).map_err(io)?;
                let mut writer = BufWriter::new(stream);
                writer.write_all(&(src as u32).to_le_bytes()).map_err(io)?;
                writer.flush().map_err(io)?;
                conns.push(writer);
            }
            outgoing.push(conns);
        }

        // Incoming side: accept the p connections aimed at each worker,
        // learn who is on the other end from its hello (read under the
        // handshake deadline, with duplicate-id rejection), then hand
        // the nonblocking socket to the worker's demux receive loop.
        let mut endpoints: Vec<Box<dyn Endpoint>> = Vec::with_capacity(workers);
        for (listener, senders) in listeners.into_iter().zip(outgoing) {
            let conns = accept_hellos(
                &listener,
                workers,
                workers,
                self.handshake.handshake_timeout,
            )?;
            endpoints.push(Box::new(TcpEndpoint {
                senders,
                conns,
                timeout,
                obs: self.obs.clone(),
                pool: Arc::clone(pool),
                max_frame: self.max_frame,
            }));
        }
        Ok(endpoints)
    }
}

/// One process's standing membership in a multi-host data mesh: a
/// persistent listener for this rank plus the address book of every
/// rank's listener, forming one fresh `p × p` endpoint per shuffle
/// round.
///
/// This is the loopback mesh generalized to arbitrary host lists: where
/// [`Tcp::mesh`] builds all `p` endpoints inside one process, a
/// `HostMesh` lives inside a single worker process and produces only
/// that rank's endpoint, dialing real peers from the configured list.
/// Round synchronization needs no extra protocol: a rank dials round
/// `k + 1` only after draining every round-`k` end-of-stream marker,
/// which its peers send only after completing their own round-`k`
/// formation — so a listener's backlog never mixes rounds.
pub struct HostMesh {
    listener: TcpListener,
    rank: usize,
    peers: Vec<SocketAddr>,
    /// Counter bundle the per-round endpoints report into.
    pub obs: RuntimeObs,
    /// Per-frame size limit senders enforce and receivers reject above.
    pub max_frame: u32,
    /// Dial-retry and hello-deadline policy for each round's formation.
    pub handshake: HandshakeConfig,
    /// Receive deadline once a round's mesh is formed.
    pub recv_timeout: Duration,
}

impl HostMesh {
    /// Binds this process's data listener on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral loopback port, or a concrete
    /// `host:port` from a deployment's host list). Rank and peer list
    /// arrive later via [`join`](Self::join), once the control plane
    /// has distributed every member's address.
    ///
    /// # Errors
    /// [`RuntimeError::Io`] when the bind fails.
    pub fn bind(addr: &str) -> Result<HostMesh, RuntimeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| RuntimeError::Io(format!("bind {addr}: {e}")))?;
        Ok(HostMesh {
            listener,
            rank: 0,
            peers: Vec::new(),
            obs: RuntimeObs::default(),
            max_frame: MAX_FRAME_BYTES,
            handshake: HandshakeConfig::default(),
            recv_timeout: Duration::from_secs(30),
        })
    }

    /// The address this mesh member's listener actually bound — what a
    /// worker reports to the coordinator so the full address book can
    /// be assembled and shipped inside each plan fragment.
    ///
    /// # Errors
    /// [`RuntimeError::Io`] when the local address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr, RuntimeError> {
        self.listener
            .local_addr()
            .map_err(|e| RuntimeError::Io(e.to_string()))
    }

    /// Adopts this member's rank and the full peer address book
    /// (`peers[r]` is rank `r`'s data listener; `peers[rank]` is this
    /// process).
    ///
    /// # Errors
    /// [`RuntimeError::Config`] when `rank` is out of range or the mesh
    /// is wider than the wire protocol's `u32` hello.
    pub fn join(&mut self, rank: usize, peers: Vec<SocketAddr>) -> Result<(), RuntimeError> {
        if rank >= peers.len() {
            return Err(RuntimeError::Config(format!(
                "rank {rank} out of range for a {}-host mesh",
                peers.len()
            )));
        }
        check_mesh_width(peers.len())?;
        self.rank = rank;
        self.peers = peers;
        Ok(())
    }

    /// This member's rank in the mesh.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Mesh width (the number of ranks in the address book).
    pub fn workers(&self) -> usize {
        self.peers.len()
    }

    /// Forms this rank's endpoint for one shuffle round: dial every
    /// peer (self-loop included, so byte accounting matches the
    /// in-process transports), announce this rank with the 4-byte
    /// hello, then accept the `p` inbound connections under the
    /// handshake deadline. Every rank must call this concurrently — the
    /// dial side completes against peers' listener backlogs, so
    /// dial-all-then-accept-all cannot deadlock.
    ///
    /// # Errors
    /// [`RuntimeError::Disconnected`] when a peer cannot be dialed
    /// (with the full retry history), [`RuntimeError::HandshakeTimeout`]
    /// / [`RuntimeError::DuplicateHello`] from the accept side, and
    /// [`RuntimeError::Config`] when called before [`join`](Self::join).
    pub fn endpoint(&self, pool: &Arc<BufPool>) -> Result<Box<dyn Endpoint>, RuntimeError> {
        let io = |e: std::io::Error| RuntimeError::Io(e.to_string());
        let p = self.peers.len();
        if p == 0 {
            return Err(RuntimeError::Config(
                "HostMesh::endpoint() before join(): the peer address book is empty".to_string(),
            ));
        }
        check_mesh_width(p)?;
        let mut senders = Vec::with_capacity(p);
        for &addr in &self.peers {
            let stream = connect_with_retry(addr, &self.handshake)?;
            stream.set_nodelay(true).map_err(io)?;
            let mut writer = BufWriter::new(stream);
            // Exact cast: check_mesh_width proved the rank fits.
            writer
                .write_all(&(self.rank as u32).to_le_bytes())
                .map_err(io)?;
            writer.flush().map_err(io)?;
            senders.push(writer);
        }
        let conns = accept_hellos(&self.listener, p, p, self.handshake.handshake_timeout)?;
        Ok(Box::new(TcpEndpoint {
            senders,
            conns,
            timeout: self.recv_timeout,
            obs: self.obs.clone(),
            pool: Arc::clone(pool),
            max_frame: self.max_frame,
        }))
    }
}

struct TcpEndpoint {
    senders: Vec<BufWriter<TcpStream>>,
    conns: Vec<Conn>,
    timeout: Duration,
    obs: RuntimeObs,
    pool: Arc<BufPool>,
    max_frame: u32,
}

impl Endpoint for TcpEndpoint {
    fn split(self: Box<Self>) -> (Box<dyn BatchSender>, Box<dyn BatchReceiver>) {
        (
            Box::new(TcpSender {
                senders: self.senders,
                flushes: self.obs.tx_flushes,
                max_frame: self.max_frame,
            }),
            Box::new(TcpReceiver {
                conns: self.conns,
                pool: self.pool,
                decode_errors: self.obs.rx_decode_errors,
                timeout: self.timeout,
                max_frame: self.max_frame,
                cursor: 0,
            }),
        )
    }
}

struct TcpSender {
    senders: Vec<BufWriter<TcpStream>>,
    flushes: Counter,
    max_frame: u32,
}

impl TcpSender {
    fn check_frame(&self, bytes: u64) -> Result<(), RuntimeError> {
        if bytes > u64::from(self.max_frame) {
            return Err(RuntimeError::FrameTooLarge {
                bytes,
                limit: u64::from(self.max_frame),
            });
        }
        Ok(())
    }
}

impl BatchSender for TcpSender {
    fn send(&mut self, dest: usize, frame: Vec<u8>) -> Result<(), RuntimeError> {
        // Refuse a frame the peer would reject as corrupt. The length
        // check also guarantees the u32 cast below is exact.
        self.check_frame(frame.len() as u64)?;
        let w = &mut self.senders[dest];
        let write = (|| {
            w.write_all(&[TAG_BATCH])?;
            w.write_all(&(frame.len() as u32).to_le_bytes())?;
            w.write_all(&frame)?;
            // Flush per frame: batches are already sized for throughput,
            // and prompt delivery keeps peer receive loops busy instead
            // of stalling on buffered bytes.
            w.flush()
        })();
        self.flushes.inc();
        write.map_err(|e| RuntimeError::Disconnected(format!("write to worker {dest}: {e}")))
    }

    fn send_vectored(
        &mut self,
        dest: usize,
        header: &[u8],
        payload: Payload<'_>,
    ) -> Result<u64, RuntimeError> {
        let frame_len = header.len() + payload.wire_len();
        self.check_frame(frame_len as u64)?;
        let w = &mut self.senders[dest];
        let write = (|| {
            let mut prefix = [0u8; 5];
            prefix[0] = TAG_BATCH;
            // Exact: check_frame proved frame_len fits the u32 limit.
            prefix[1..5].copy_from_slice(&(frame_len as u32).to_le_bytes());
            w.write_all(&prefix)?;
            w.write_all(header)?;
            match payload {
                Payload::Bytes(bytes) => w.write_all(bytes)?,
                Payload::Values(values) => {
                    // The workspace forbids unsafe, so the arena slice
                    // cannot be reinterpreted as bytes in place; stream
                    // it through a stack chunk instead — constant
                    // memory, no per-frame allocation.
                    let mut chunk = [0u8; SEND_CHUNK_VALUES * 8];
                    for run in values.chunks(SEND_CHUNK_VALUES) {
                        for (i, &v) in run.iter().enumerate() {
                            chunk[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
                        }
                        w.write_all(&chunk[..run.len() * 8])?;
                    }
                }
            }
            w.flush()
        })();
        self.flushes.inc();
        write.map_err(|e| RuntimeError::Disconnected(format!("write to worker {dest}: {e}")))?;
        Ok(frame_len as u64)
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        for w in &mut self.senders {
            // Best-effort: a dead peer cannot be waiting for our marker.
            let _ = w.write_all(&[TAG_EOS]).and_then(|()| w.flush());
            self.flushes.inc();
        }
        Ok(())
    }
}

/// Where one incoming connection stands in the framing protocol.
enum Stage {
    /// Waiting for the next frame tag.
    Tag,
    /// Collecting the 4-byte length prefix.
    Len { buf: [u8; 4], got: usize },
    /// Collecting a payload into a pooled buffer.
    Payload { buf: Vec<u8>, got: usize },
    /// The peer signalled end-of-stream.
    Eos,
    /// The peer hung up (EOF between frames) or the stream was poisoned.
    Dead,
}

struct Conn {
    stream: TcpStream,
    src: usize,
    stage: Stage,
}

/// One nonblocking read step.
enum ReadStep {
    Data(usize),
    WouldBlock,
    /// EOF or a hard socket error (peer reset) — the stream is over
    /// either way; which protocol stage it struck decides whether that
    /// is a clean hang-up or corruption.
    Eof,
}

fn read_nb(stream: &mut TcpStream, buf: &mut [u8]) -> ReadStep {
    loop {
        match stream.read(buf) {
            Ok(0) => return ReadStep::Eof,
            Ok(n) => return ReadStep::Data(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadStep::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {} // EINTR: retry
            Err(_) => return ReadStep::Eof,
        }
    }
}

/// What polling one connection produced.
enum Polled {
    /// A complete frame.
    Frame(Vec<u8>),
    /// State advanced (bytes consumed, EOS seen, clean EOF) but no
    /// complete frame yet.
    Progress,
    /// Nothing available without blocking.
    Idle,
    /// Protocol violation; the payload names the cause.
    Corrupt(String),
}

impl Conn {
    fn new(stream: TcpStream, src: usize) -> Conn {
        Conn {
            stream,
            src,
            stage: Stage::Tag,
        }
    }

    fn terminal(&self) -> bool {
        matches!(self.stage, Stage::Eos | Stage::Dead)
    }

    /// Advances this connection's state machine as far as the socket
    /// allows without blocking.
    fn poll(&mut self, pool: &BufPool, max_frame: u32) -> Polled {
        let src = self.src;
        let mut advanced = false;
        loop {
            match &mut self.stage {
                Stage::Eos | Stage::Dead => return Polled::Idle,
                Stage::Tag => {
                    let mut tag = [0u8; 1];
                    match read_nb(&mut self.stream, &mut tag) {
                        ReadStep::WouldBlock => {
                            return if advanced {
                                Polled::Progress
                            } else {
                                Polled::Idle
                            };
                        }
                        ReadStep::Eof => {
                            // Clean EOF between frames: the peer died (or
                            // closed after EOS) — not a decode error.
                            self.stage = Stage::Dead;
                            return Polled::Progress;
                        }
                        ReadStep::Data(_) => match tag[0] {
                            TAG_EOS => {
                                self.stage = Stage::Eos;
                                return Polled::Progress;
                            }
                            TAG_BATCH => {
                                advanced = true;
                                self.stage = Stage::Len {
                                    buf: [0u8; 4],
                                    got: 0,
                                };
                            }
                            other => {
                                return Polled::Corrupt(format!(
                                    "corrupt frame tag {other:#04x} from worker {src} (expected \
                                     batch or end-of-stream)"
                                ));
                            }
                        },
                    }
                }
                Stage::Len { buf, got } => match read_nb(&mut self.stream, &mut buf[*got..]) {
                    ReadStep::WouldBlock => {
                        return if advanced {
                            Polled::Progress
                        } else {
                            Polled::Idle
                        };
                    }
                    ReadStep::Eof => {
                        return Polled::Corrupt(format!(
                            "stream from worker {src} truncated in a length prefix"
                        ));
                    }
                    ReadStep::Data(n) => {
                        advanced = true;
                        *got += n;
                        if *got == 4 {
                            let len = u32::from_le_bytes(*buf);
                            if len > max_frame {
                                return Polled::Corrupt(format!(
                                    "frame from worker {src} declares {len} bytes, above the \
                                     {max_frame}-byte limit"
                                ));
                            }
                            if len == 0 {
                                // Degenerate empty frame: complete as-is
                                // (an empty read would misreport EOF).
                                self.stage = Stage::Tag;
                                return Polled::Frame(pool.acquire());
                            }
                            let mut payload = pool.acquire();
                            payload.resize(len as usize, 0);
                            self.stage = Stage::Payload {
                                buf: payload,
                                got: 0,
                            };
                        }
                    }
                },
                Stage::Payload { buf, got } => {
                    let len = buf.len();
                    match read_nb(&mut self.stream, &mut buf[*got..]) {
                        ReadStep::WouldBlock => {
                            return if advanced {
                                Polled::Progress
                            } else {
                                Polled::Idle
                            };
                        }
                        ReadStep::Eof => {
                            return Polled::Corrupt(format!(
                                "stream from worker {src} truncated mid-frame ({len}-byte \
                                 payload never completed)"
                            ));
                        }
                        ReadStep::Data(n) => {
                            advanced = true;
                            *got += n;
                            if *got == len {
                                let frame = std::mem::take(buf);
                                self.stage = Stage::Tag;
                                return Polled::Frame(frame);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The demultiplexing receive loop over all incoming connections: the
/// single receive thread a worker costs, however wide the mesh.
struct TcpReceiver {
    conns: Vec<Conn>,
    pool: Arc<BufPool>,
    decode_errors: Counter,
    timeout: Duration,
    max_frame: u32,
    cursor: usize,
}

impl TcpReceiver {
    /// Peers that have not reached end-of-stream (the legacy receiver's
    /// `eos_left`, used by every error message).
    fn outstanding(&self) -> usize {
        self.conns
            .iter()
            .filter(|c| !matches!(c.stage, Stage::Eos))
            .count()
    }
}

impl BatchReceiver for TcpReceiver {
    fn recv(&mut self) -> Result<Option<(usize, Vec<u8>)>, RuntimeError> {
        let n = self.conns.len();
        let deadline = Instant::now() + self.timeout;
        let mut idle_rounds = 0u32;
        loop {
            let mut progressed = false;
            for step in 0..n {
                let i = (self.cursor + step) % n;
                match self.conns[i].poll(&self.pool, self.max_frame) {
                    Polled::Frame(frame) => {
                        // Resume *after* this connection next time so one
                        // chatty peer cannot starve the others.
                        self.cursor = (i + 1) % n;
                        return Ok(Some((self.conns[i].src, frame)));
                    }
                    Polled::Progress => progressed = true,
                    Polled::Idle => {}
                    Polled::Corrupt(cause) => {
                        self.decode_errors.inc();
                        self.conns[i].stage = Stage::Dead;
                        return Err(RuntimeError::Disconnected(format!(
                            "corrupt stream: {cause}; {} peer(s) were still outstanding",
                            self.outstanding()
                        )));
                    }
                }
            }
            let dead = self
                .conns
                .iter()
                .filter(|c| matches!(c.stage, Stage::Dead))
                .count();
            if self.conns.iter().all(Conn::terminal) {
                if dead == 0 {
                    return Ok(None); // every peer reached end-of-stream
                }
                return Err(RuntimeError::Disconnected(format!(
                    "{dead} peer(s) closed before end-of-stream"
                )));
            }
            if progressed {
                idle_rounds = 0;
                continue;
            }
            if Instant::now() >= deadline {
                return Err(RuntimeError::Timeout(format!(
                    "no frame within {:?}; {} peer(s) never finished",
                    self.timeout,
                    self.outstanding()
                )));
            }
            idle_rounds += 1;
            crate::transport::idle_backoff(idle_rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn test_pool() -> Arc<BufPool> {
        Arc::new(BufPool::detached())
    }

    /// A handshake policy with short waits for fault-injection tests.
    fn fast_handshake(attempts: u32, timeout: Duration) -> HandshakeConfig {
        HandshakeConfig {
            connect_attempts: attempts,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            handshake_timeout: timeout,
        }
    }

    #[test]
    fn connect_with_retry_gives_up_with_full_history() {
        // Port 1 on loopback is essentially never listening; three quick
        // attempts must fail fast, and the terminal Disconnected error
        // must carry every attempt and every backoff wait.
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let start = std::time::Instant::now();
        let err = connect_with_retry(addr, &fast_handshake(3, Duration::from_secs(1)));
        match err {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(msg.contains("after 3 attempt(s)"), "counts attempts: {msg}");
                assert!(msg.contains("attempt 1:"), "history has attempt 1: {msg}");
                assert!(msg.contains("attempt 2:"), "history has attempt 2: {msg}");
                assert!(msg.contains("attempt 3:"), "history has attempt 3: {msg}");
                assert!(msg.contains("backed off"), "history has backoffs: {msg}");
            }
            other => panic!("expected Disconnected with history, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn connect_backoff_is_capped() {
        // 6 failed attempts with an uncapped doubling from 1ms would
        // sleep 1+2+4+8+16 = 31ms; the 2ms cap keeps it under ~10ms of
        // configured sleep. Assert the cap via the recorded history.
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let policy = HandshakeConfig {
            connect_attempts: 6,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            handshake_timeout: Duration::from_secs(1),
        };
        let err = connect_with_retry(addr, &policy);
        match err {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(
                    !msg.contains("backed off 4ms"),
                    "doubling must stop at the 2ms cap: {msg}"
                );
                assert!(msg.contains("backed off 2ms"), "cap is reached: {msg}");
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn silent_peer_hello_is_a_handshake_timeout_not_a_hang() {
        // Regression for the unbounded accept-side read_exact: a peer
        // that connects but never sends its hello must surface as
        // HandshakeTimeout within the deadline.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _silent = TcpStream::connect(addr).expect("connect");
        let start = std::time::Instant::now();
        let err = accept_hellos(&listener, 1, 2, Duration::from_millis(200));
        match err {
            Err(RuntimeError::HandshakeTimeout { peer, waited }) => {
                assert!(peer.contains("127.0.0.1"), "names the peer: {peer}");
                assert!(
                    waited >= Duration::from_millis(150),
                    "waited out: {waited:?}"
                );
            }
            Err(other) => panic!("expected HandshakeTimeout, got {other:?}"),
            Ok(_) => panic!("expected HandshakeTimeout, got a formed mesh"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "must not hang past the deadline"
        );
    }

    #[test]
    fn peer_death_mid_hello_is_a_typed_disconnect() {
        // A peer that sends half its hello and dies must surface as a
        // prompt Disconnected naming the handshake, never a hang.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut dying = TcpStream::connect(addr).expect("connect");
        dying.write_all(&[0x01, 0x00]).expect("half a hello");
        drop(dying);
        let start = std::time::Instant::now();
        let err = accept_hellos(&listener, 1, 2, Duration::from_secs(5));
        match err {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(msg.contains("handshake"), "names the phase: {msg}");
                assert!(msg.contains("2 of 4"), "counts the partial hello: {msg}");
            }
            Err(other) => panic!("expected Disconnected, got {other:?}"),
            Ok(_) => panic!("expected Disconnected, got a formed mesh"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "prompt, not a timeout"
        );
    }

    #[test]
    fn duplicate_hello_is_rejected_naming_both_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut first = TcpStream::connect(addr).expect("connect first");
        first.write_all(&1u32.to_le_bytes()).expect("hello 1");
        let mut second = TcpStream::connect(addr).expect("connect second");
        second
            .write_all(&1u32.to_le_bytes())
            .expect("hello 1 again");
        let first_addr = first.local_addr().expect("addr").to_string();
        let second_addr = second.local_addr().expect("addr").to_string();
        let err = accept_hellos(&listener, 2, 2, Duration::from_secs(5));
        match err {
            Err(RuntimeError::DuplicateHello {
                worker,
                first: f,
                second: s,
            }) => {
                assert_eq!(worker, 1);
                // Accept order between the two dials is a race; the
                // error must name both sockets, in either order.
                let mut got = [f, s];
                let mut want = [first_addr, second_addr];
                got.sort();
                want.sort();
                assert_eq!(got, want, "error names both claimant sockets");
            }
            Err(other) => panic!("expected DuplicateHello, got {other:?}"),
            Ok(_) => panic!("expected DuplicateHello, got a formed mesh"),
        }
    }

    #[test]
    fn absent_peer_is_a_handshake_timeout_within_deadline() {
        // A worker that never connects at all: the accept deadline must
        // expire with a typed error that counts the missing peers.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let start = std::time::Instant::now();
        let err = accept_hellos(&listener, 3, 3, Duration::from_millis(150));
        match err {
            Err(RuntimeError::HandshakeTimeout { peer, .. }) => {
                assert!(peer.contains("3 peer(s)"), "counts the missing: {peer}");
                assert!(peer.contains("never connected"), "names the fault: {peer}");
            }
            Err(other) => panic!("expected HandshakeTimeout, got {other:?}"),
            Ok(_) => panic!("expected HandshakeTimeout, got a formed mesh"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn host_mesh_round_trips_frames_between_ranks() {
        // Two HostMesh members on loopback, each in its own thread
        // (formation requires all ranks dialing concurrently), exchange
        // one frame each way per round, across two rounds on the same
        // persistent listeners.
        let mut m0 = HostMesh::bind("127.0.0.1:0").expect("bind 0");
        let mut m1 = HostMesh::bind("127.0.0.1:0").expect("bind 1");
        let peers = vec![
            m0.local_addr().expect("addr 0"),
            m1.local_addr().expect("addr 1"),
        ];
        m0.join(0, peers.clone()).expect("join 0");
        m1.join(1, peers).expect("join 1");

        let run = |mesh: HostMesh, rank: usize| {
            thread::spawn(move || {
                let pool = test_pool();
                let mut seen = Vec::new();
                for round in 0..2u8 {
                    let (mut tx, mut rx) = mesh.endpoint(&pool).expect("endpoint").split();
                    tx.send(1 - rank, vec![round, rank as u8]).expect("send");
                    tx.finish().expect("finish");
                    drop(tx);
                    while let Some(msg) = rx.recv().expect("recv") {
                        seen.push(msg);
                    }
                }
                seen
            })
        };
        let t0 = run(m0, 0);
        let t1 = run(m1, 1);
        assert_eq!(
            t0.join().expect("rank 0"),
            vec![(1, vec![0, 1]), (1, vec![1, 1])]
        );
        assert_eq!(
            t1.join().expect("rank 1"),
            vec![(0, vec![0, 0]), (0, vec![1, 0])]
        );
    }

    #[test]
    fn host_mesh_endpoint_before_join_is_a_config_error() {
        let mesh = HostMesh::bind("127.0.0.1:0").expect("bind");
        match mesh.endpoint(&test_pool()) {
            Err(RuntimeError::Config(m)) => {
                assert!(m.contains("join"), "error names the missing step: {m}");
            }
            Err(other) => panic!("expected Config error, got {other:?}"),
            Ok(_) => panic!("an unjoined mesh must refuse to form an endpoint"),
        }
    }

    #[test]
    fn tcp_mesh_round_trips_frames() {
        let eps = Tcp::default()
            .mesh(2, 4, Duration::from_secs(10), &test_pool())
            .expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let ta = thread::spawn(move || {
            let (mut tx, mut rx) = a.split();
            tx.send(1, vec![1, 2, 3]).expect("send");
            tx.send(0, vec![7]).expect("self send");
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got.sort();
            got
        });
        let tb = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.finish().expect("finish");
            drop(tx);
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().expect("recv") {
                got.push(msg);
            }
            got
        });
        assert_eq!(ta.join().expect("worker 0"), vec![(0, vec![7])]);
        assert_eq!(tb.join().expect("worker 1"), vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    fn vectored_send_round_trips() {
        let eps = Tcp::default()
            .mesh(1, 4, Duration::from_secs(10), &test_pool())
            .expect("mesh");
        let (mut tx, mut rx) = eps.into_iter().next().expect("endpoint").split();
        let values = [5u64, u64::MAX, 0];
        let len = tx
            .send_vectored(0, &[0xAB, 0xCD], Payload::Values(&values))
            .expect("send");
        assert_eq!(len, 2 + 24);
        tx.finish().expect("finish");
        drop(tx);
        let (src, frame) = rx.recv().expect("recv").expect("frame");
        assert_eq!(src, 0);
        let mut expect = vec![0xAB, 0xCD];
        for v in values {
            expect.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(frame, expect);
        assert!(rx.recv().expect("eos").is_none());
    }

    #[test]
    fn mesh_counts_flushes() {
        let obs = RuntimeObs::detached();
        let eps = Tcp::with_obs(obs.clone())
            .mesh(1, 4, Duration::from_secs(10), &test_pool())
            .expect("mesh");
        let (mut tx, mut rx) = eps.into_iter().next().expect("endpoint").split();
        tx.send(0, vec![1, 2]).expect("send");
        tx.finish().expect("finish");
        drop(tx);
        while rx.recv().expect("recv").is_some() {}
        // One per frame plus one per end-of-stream marker.
        assert_eq!(obs.tx_flushes.get(), 2);
    }

    #[test]
    fn mesh_width_is_validated_not_asserted() {
        assert!(check_mesh_width(4).is_ok());
        let err = check_mesh_width(usize::MAX);
        assert!(
            matches!(err, Err(RuntimeError::Config(ref m)) if m.contains("u32")),
            "oversized mesh must be a typed config error: {err:?}"
        );
    }

    /// A connected (writer, reader) TCP pair on loopback.
    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let w = TcpStream::connect(addr).expect("connect");
        let (r, _) = listener.accept().expect("accept");
        (w, r)
    }

    /// Drives the event-loop receiver over bytes written by `write`,
    /// returning complete frames, the terminal result, and the
    /// decode-error count. The lone connection claims to be worker 1.
    #[allow(clippy::type_complexity)]
    fn recv_poisoned(
        write: impl FnOnce(&mut TcpStream),
    ) -> (
        Vec<(usize, Vec<u8>)>,
        Result<Option<(usize, Vec<u8>)>, RuntimeError>,
        u64,
    ) {
        let (mut w, r) = pipe();
        r.set_nonblocking(true).expect("nonblocking");
        let errors = Counter::new();
        let mut receiver = TcpReceiver {
            conns: vec![Conn::new(r, 1)],
            pool: test_pool(),
            decode_errors: errors.clone(),
            timeout: Duration::from_secs(5),
            max_frame: MAX_FRAME_BYTES,
            cursor: 0,
        };
        write(&mut w);
        drop(w);
        let mut frames = Vec::new();
        let last = loop {
            match receiver.recv() {
                Ok(Some(frame)) => frames.push(frame),
                other => break other,
            }
        };
        (frames, last, errors.get())
    }

    #[test]
    fn corrupt_tag_is_reported_with_cause() {
        let (frames, last, errors) = recv_poisoned(|w| {
            w.write_all(&[0x7f]).expect("write");
        });
        assert!(frames.is_empty());
        assert_eq!(errors, 1);
        match last {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(msg.contains("corrupt stream"), "prefixed cause: {msg}");
                assert!(msg.contains("0x7f"), "cause names the tag: {msg}");
                assert!(msg.contains("worker 1"), "cause names the peer: {msg}");
                assert!(msg.contains("1 peer(s)"), "error counts peers: {msg}");
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_reported() {
        let (frames, last, errors) = recv_poisoned(|w| {
            w.write_all(&[TAG_BATCH]).expect("tag");
            w.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
                .expect("len");
        });
        assert!(frames.is_empty());
        assert_eq!(errors, 1);
        match last {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(msg.contains("limit"), "cause names the limit: {msg}");
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_reported() {
        let (frames, last, errors) = recv_poisoned(|w| {
            w.write_all(&[TAG_BATCH]).expect("tag");
            w.write_all(&100u32.to_le_bytes()).expect("len");
            w.write_all(&[0u8; 10]).expect("partial payload");
        });
        assert!(frames.is_empty());
        assert_eq!(errors, 1);
        match last {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(
                    msg.contains("truncated mid-frame"),
                    "cause names truncation: {msg}"
                );
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_before_eos_is_a_disconnect_not_a_decode_error() {
        // Peer death *between* frames is not stream corruption: no
        // decode error is counted, and the receiver reports a plain
        // disconnect once no live peer remains.
        let (frames, last, errors) = recv_poisoned(|_| {});
        assert!(frames.is_empty());
        assert_eq!(errors, 0);
        match last {
            Err(RuntimeError::Disconnected(msg)) => {
                assert!(
                    msg.contains("closed before end-of-stream"),
                    "plain disconnect expected: {msg}"
                );
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn frames_before_poison_still_arrive() {
        // The state machine must hand over complete frames already
        // received before reporting the poisoned tail.
        let (frames, last, errors) = recv_poisoned(|w| {
            w.write_all(&[TAG_BATCH]).expect("tag");
            w.write_all(&3u32.to_le_bytes()).expect("len");
            w.write_all(&[9, 8, 7]).expect("payload");
            w.write_all(&[0x5a]).expect("poison tag");
        });
        assert_eq!(frames, vec![(1, vec![9, 8, 7])]);
        assert_eq!(errors, 1);
        assert!(matches!(last, Err(RuntimeError::Disconnected(_))));
    }

    #[test]
    fn oversized_send_is_a_typed_error_not_a_panic() {
        let (w, _r) = pipe();
        let mut sender = TcpSender {
            senders: vec![BufWriter::new(w)],
            flushes: Counter::new(),
            max_frame: MAX_FRAME_BYTES,
        };
        let frame = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let err = sender.send(0, frame);
        assert!(
            matches!(
                err,
                Err(RuntimeError::FrameTooLarge { bytes, limit })
                    if bytes == u64::from(MAX_FRAME_BYTES) + 1 && limit == u64::from(MAX_FRAME_BYTES)
            ),
            "oversized frame must be rejected up front: {err:?}"
        );
        // A frame at the limit boundary is still representable.
        assert!(u32::try_from(MAX_FRAME_BYTES as usize).is_ok());
    }

    #[test]
    fn configured_frame_limit_applies_to_vectored_sends() {
        let (w, _r) = pipe();
        let mut sender = TcpSender {
            senders: vec![BufWriter::new(w)],
            flushes: Counter::new(),
            max_frame: 16,
        };
        let values = [0u64; 4]; // 32 payload bytes + header > 16
        let err = sender.send_vectored(0, &[0, 1, 2], Payload::Values(&values));
        assert!(
            matches!(
                err,
                Err(RuntimeError::FrameTooLarge {
                    bytes: 35,
                    limit: 16
                })
            ),
            "configured limit must apply: {err:?}"
        );
    }

    #[test]
    fn peer_death_mid_stream_is_a_prompt_disconnect_not_a_hang() {
        // End-to-end: on a live 2-worker mesh, worker 0's sender drops
        // without ever writing end-of-stream (the "peer died" shape).
        // Worker 0's receiver must fail with Disconnected well before
        // the 30-second mesh timeout — never hang waiting it out.
        let eps = Tcp::default()
            .mesh(2, 4, Duration::from_secs(30), &test_pool())
            .expect("mesh");
        let mut eps = eps.into_iter();
        let a = eps.next().expect("endpoint 0");
        let b = eps.next().expect("endpoint 1");

        let peer = thread::spawn(move || {
            let (mut tx, mut rx) = b.split();
            tx.finish().expect("finish");
            drop(tx);
            // Drain until our own stream ends or errors; outcome unused.
            while let Ok(Some(_)) = rx.recv() {}
        });

        let start = std::time::Instant::now();
        let (tx_a, mut rx_a) = a.split();
        drop(tx_a); // dies without end-of-stream
        let err = rx_a.recv();
        assert!(
            matches!(err, Err(RuntimeError::Disconnected(_))),
            "peer death mid-stream must be a descriptive error: {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "must not wait out the 30s mesh timeout"
        );
        peer.join().expect("worker 1");
    }
}
