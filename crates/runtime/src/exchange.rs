//! The streaming exchange: one worker's side of a batched shuffle.
//!
//! Each worker splits its endpoint, drains its inbox from a dedicated
//! thread (so it can never deadlock against a full outgoing buffer), and
//! walks its partition once: the router names each row's destinations,
//! rows accumulate in per-destination buffers, and a buffer reaching
//! `batch_tuples` rows is encoded ([`parjoin_common::wire`]) and sent.
//! After the final partial batches the worker signals end-of-stream and
//! *drops its sender*, releasing its side of every connection, then joins
//! the drain thread.
//!
//! The drain thread accumulates arriving batches **per source** and the
//! final partition concatenates sources in ascending order. Because each
//! source's batches arrive in order (FIFO channels / one TCP connection
//! per directed pair), the resulting row order is *identical* to the
//! sequential `Local` loop — streaming transports are deterministic, not
//! merely equivalent up to reordering.

use crate::error::RuntimeError;
use crate::metrics::RuntimeObs;
use crate::transport::Endpoint;
use crate::Router;
use parjoin_common::{wire, Relation, Value};
use std::time::Instant;

/// One worker's tallies from a streaming shuffle.
pub struct WorkerOutcome {
    /// The rows routed to this worker, in deterministic source order.
    pub received: Relation,
    /// Tuples this worker sent (counting one per destination copy).
    pub sent_tuples: u64,
    /// Encoded batch bytes this worker sent.
    pub bytes_sent: u64,
    /// Encoded batch bytes this worker received.
    pub bytes_received: u64,
}

/// Runs one worker's side of the exchange to completion.
///
/// # Errors
/// Propagates transport failures (peer death, timeout) and wire-format
/// corruption from either direction of the stream.
pub fn run_worker(
    id: usize,
    part: &Relation,
    workers: usize,
    batch_tuples: usize,
    endpoint: Box<dyn Endpoint>,
    router: &Router,
    obs: &RuntimeObs,
) -> Result<WorkerOutcome, RuntimeError> {
    let arity = part.arity();
    // The worker's whole side of the exchange is one `shuffle` span on
    // its own trace lane. The drain thread records counters only: its
    // work overlaps this span on the same lane, and overlapping slices
    // on one chrome-trace tid render as garbage.
    let lane = obs.trace.lane(id as u32);
    let _span = lane.span("shuffle", "runtime");
    let (mut sender, mut receiver) = endpoint.split();

    let drain_obs = obs.clone();
    // `drain` is joined below once this thread finishes sending.
    let drain = std::thread::Builder::new()
        .name(format!("parjoin-drain-{id}"))
        // xtask: allow(spawn)
        .spawn(move || -> Result<(Vec<Relation>, u64), RuntimeError> {
            let mut per_src: Vec<Relation> = (0..workers).map(|_| Relation::new(arity)).collect();
            let mut bytes = 0u64;
            loop {
                let wait = Instant::now();
                let msg = receiver.recv();
                drain_obs
                    .rx_wait_ns
                    .add(wait.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                let Some((src, frame)) = msg? else { break };
                bytes += frame.len() as u64;
                drain_obs.rx_bytes.add(frame.len() as u64);
                drain_obs.rx_batches.inc();
                wire::decode_batch_into(&frame, &mut per_src[src])
                    .map_err(|e| RuntimeError::Io(e.to_string()))?;
            }
            Ok((per_src, bytes))
        })
        .map_err(|e| RuntimeError::Io(e.to_string()))?;

    // Send side: route, batch, stream.
    let mut pending: Vec<(Vec<Value>, usize)> = (0..workers).map(|_| (Vec::new(), 0)).collect();
    let mut dests: Vec<usize> = Vec::with_capacity(workers);
    let mut sent_tuples = 0u64;
    let mut bytes_sent = 0u64;
    let send_result = (|| -> Result<(), RuntimeError> {
        for row in part.rows() {
            dests.clear();
            router(id, row, &mut dests);
            sent_tuples += dests.len() as u64;
            for &d in &dests {
                let (flat, rows) = &mut pending[d];
                flat.extend_from_slice(row);
                *rows += 1;
                if *rows >= batch_tuples {
                    let mut buf = Vec::new();
                    wire::encode_batch(arity, *rows, flat, &mut buf);
                    bytes_sent += buf.len() as u64;
                    obs.tx_bytes.add(buf.len() as u64);
                    obs.tx_batches.inc();
                    sender.send(d, buf)?;
                    flat.clear();
                    *rows = 0;
                }
            }
        }
        for (d, (flat, rows)) in pending.iter_mut().enumerate() {
            if *rows > 0 {
                let mut buf = Vec::new();
                wire::encode_batch(arity, *rows, flat, &mut buf);
                bytes_sent += buf.len() as u64;
                obs.tx_bytes.add(buf.len() as u64);
                obs.tx_batches.inc();
                sender.send(d, buf)?;
                flat.clear();
                *rows = 0;
            }
        }
        sender.finish()
    })();
    // Always release our side of every connection *before* joining the
    // drain thread: on the error path this is what unblocks peers (and
    // our own drain) instead of letting them wait out the full timeout.
    drop(sender);
    let drain_result = drain
        .join()
        .map_err(|_| RuntimeError::Io(format!("drain thread of worker {id} panicked")));
    send_result?;
    let (per_src, bytes_received) = drain_result??;

    let total: usize = per_src.iter().map(Relation::len).sum();
    let mut received = Relation::with_capacity(arity, total);
    for src in &per_src {
        received.extend_from(src);
    }
    Ok(WorkerOutcome {
        received,
        sent_tuples,
        bytes_sent,
        bytes_received,
    })
}
