//! The streaming exchange: one worker's side of a batched shuffle.
//!
//! Each worker splits its endpoint, drains its inbox from a dedicated
//! thread (so it can never deadlock against a full outgoing buffer), and
//! walks its partition once: the router names each row's destinations,
//! rows accumulate in per-destination buffers, and a buffer reaching
//! `batch_tuples` rows is framed ([`parjoin_common::wire`]) and sent.
//! After the final partial batches the worker signals end-of-stream and
//! *drops its sender*, releasing its side of every connection, then joins
//! the drain thread.
//!
//! The drain thread is the worker's **single receive loop**: underneath
//! it, the transport demultiplexes every peer connection without
//! spawning per-peer readers, so an exchange costs exactly one receive
//! thread per worker (`runtime.rx.threads` counts them). Decoded frames
//! go back to the runtime's [`BufPool`] for the next batch.
//!
//! The send path depends on the [`WireFormat`]:
//!
//! * [`WireFormat::Vectored`] (the default) writes the stack header and
//!   the borrowed row slice straight into the transport — zero owned
//!   encode buffers, zero send-path copies counted on
//!   `runtime.tx.copied_bytes`. With `compression` on, sorted shuffle
//!   columns shrink via column-major delta+varint into a reused scratch
//!   buffer, and `runtime.tx.bytes_raw` keeps the uncompressed-equivalent
//!   tally for the A/B ratio.
//! * [`WireFormat::Varint`] is the legacy owned-buffer encoding, kept
//!   for cross-version round-trips; every frame it sends is counted on
//!   `runtime.tx.copied_bytes`.
//!
//! The drain thread accumulates arriving batches **per source** and the
//! final partition concatenates sources in ascending order. Because each
//! source's batches arrive in order (FIFO channels / one TCP connection
//! per directed pair), the resulting row order is *identical* to the
//! sequential `Local` loop — streaming transports are deterministic, not
//! merely equivalent up to reordering.

use crate::error::RuntimeError;
use crate::metrics::RuntimeObs;
use crate::pool::BufPool;
use crate::transport::{BatchSender, Endpoint, Payload};
use crate::Router;
use parjoin_common::{wire, Relation, Value, WireFormat};
use std::sync::Arc;
use std::time::Instant;

/// Exchange knobs beyond the mesh itself.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeOpts {
    /// Rows per streamed batch.
    pub batch_tuples: usize,
    /// Frame encoding on the wire.
    pub format: WireFormat,
    /// Delta+varint column compression (vectored format only).
    pub compression: bool,
}

/// One worker's tallies from a streaming shuffle.
pub struct WorkerOutcome {
    /// The rows routed to this worker, in deterministic source order.
    pub received: Relation,
    /// Tuples this worker sent (counting one per destination copy).
    pub sent_tuples: u64,
    /// Encoded batch bytes this worker sent.
    pub bytes_sent: u64,
    /// Uncompressed-equivalent bytes of those batches (equals
    /// `bytes_sent` unless compression shrank the frames).
    pub bytes_sent_raw: u64,
    /// Encoded batch bytes this worker received.
    pub bytes_received: u64,
}

/// Frames one pending batch and hands it to the transport, tallying
/// `tx.{bytes,bytes_raw,copied_bytes,batches}`. Returns
/// `(sent_bytes, raw_bytes)`. `scratch` is the worker's reused
/// compression buffer.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    sender: &mut dyn BatchSender,
    dest: usize,
    arity: usize,
    rows: usize,
    flat: &[Value],
    opts: ExchangeOpts,
    obs: &RuntimeObs,
    scratch: &mut Vec<u8>,
) -> Result<(u64, u64), RuntimeError> {
    let raw = wire::frame_bytes(opts.format, arity, rows);
    let sent = match opts.format {
        WireFormat::Varint => {
            // Legacy path: materialize an owned encode buffer per frame.
            // That allocation-and-copy is exactly what `tx.copied_bytes`
            // measures (and what the vectored path avoids).
            let mut buf = Vec::new();
            wire::encode_batch(arity, rows, flat, &mut buf);
            let len = buf.len() as u64;
            obs.tx_copied_bytes.add(len);
            sender.send(dest, buf)?;
            len
        }
        WireFormat::Vectored => {
            if opts.compression && arity > 0 {
                scratch.clear();
                wire::compress_columns(arity, rows, flat, scratch);
                let header = wire::vectored_header(arity, rows, true);
                sender.send_vectored(dest, header.as_bytes(), Payload::Bytes(scratch))?
            } else {
                let header = wire::vectored_header(arity, rows, false);
                sender.send_vectored(dest, header.as_bytes(), Payload::Values(flat))?
            }
        }
    };
    obs.tx_bytes.add(sent);
    obs.tx_bytes_raw.add(raw);
    obs.tx_batches.inc();
    Ok((sent, raw))
}

/// Runs one worker's side of the exchange to completion.
///
/// # Errors
/// Propagates transport failures (peer death, timeout) and wire-format
/// corruption from either direction of the stream.
#[allow(clippy::too_many_arguments)]
pub fn run_worker(
    id: usize,
    part: &Relation,
    workers: usize,
    opts: ExchangeOpts,
    endpoint: Box<dyn Endpoint>,
    router: &Router,
    obs: &RuntimeObs,
    pool: &Arc<BufPool>,
) -> Result<WorkerOutcome, RuntimeError> {
    let arity = part.arity();
    // The worker's whole side of the exchange is one `shuffle` span on
    // its own trace lane. The drain thread records counters only: its
    // work overlaps this span on the same lane, and overlapping slices
    // on one chrome-trace tid render as garbage.
    let lane = obs.trace.lane(id as u32);
    let _span = lane.span("shuffle", "runtime");
    let (mut sender, mut receiver) = endpoint.split();

    let drain_obs = obs.clone();
    let drain_pool = Arc::clone(pool);
    let format = opts.format;
    // `drain` is joined below once this thread finishes sending.
    let drain = std::thread::Builder::new()
        .name(format!("parjoin-drain-{id}"))
        // xtask: allow(spawn)
        .spawn(move || -> Result<(Vec<Relation>, u64), RuntimeError> {
            // This worker's one receive loop, however many peers feed it.
            drain_obs.rx_threads.inc();
            let mut per_src: Vec<Relation> = (0..workers).map(|_| Relation::new(arity)).collect();
            let mut bytes = 0u64;
            loop {
                let wait = Instant::now();
                let msg = receiver.recv();
                drain_obs
                    .rx_wait_ns
                    .add(wait.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                let Some((src, frame)) = msg? else { break };
                bytes += frame.len() as u64;
                drain_obs.rx_bytes.add(frame.len() as u64);
                drain_obs.rx_batches.inc();
                wire::decode_frame_into(format, &frame, &mut per_src[src])
                    .map_err(|e| RuntimeError::Io(e.to_string()))?;
                // Decoded: recycle the buffer for the next frame.
                drain_pool.release(frame);
            }
            Ok((per_src, bytes))
        })
        .map_err(|e| RuntimeError::Io(e.to_string()))?;

    // Send side: route, batch, stream.
    let mut pending: Vec<(Vec<Value>, usize)> = (0..workers).map(|_| (Vec::new(), 0)).collect();
    let mut dests: Vec<usize> = Vec::with_capacity(workers);
    let mut scratch: Vec<u8> = Vec::new();
    let mut sent_tuples = 0u64;
    let mut bytes_sent = 0u64;
    let mut bytes_sent_raw = 0u64;
    let send_result = (|| -> Result<(), RuntimeError> {
        for row in part.rows() {
            dests.clear();
            router(id, row, &mut dests);
            sent_tuples += dests.len() as u64;
            for &d in &dests {
                let (flat, rows) = &mut pending[d];
                flat.extend_from_slice(row);
                *rows += 1;
                if *rows >= opts.batch_tuples {
                    let (sent, raw) =
                        flush_batch(&mut *sender, d, arity, *rows, flat, opts, obs, &mut scratch)?;
                    bytes_sent += sent;
                    bytes_sent_raw += raw;
                    flat.clear();
                    *rows = 0;
                }
            }
        }
        for (d, (flat, rows)) in pending.iter_mut().enumerate() {
            if *rows > 0 {
                let (sent, raw) =
                    flush_batch(&mut *sender, d, arity, *rows, flat, opts, obs, &mut scratch)?;
                bytes_sent += sent;
                bytes_sent_raw += raw;
                flat.clear();
                *rows = 0;
            }
        }
        sender.finish()
    })();
    // Always release our side of every connection *before* joining the
    // drain thread: on the error path this is what unblocks peers (and
    // our own drain) instead of letting them wait out the full timeout.
    drop(sender);
    let drain_result = drain
        .join()
        .map_err(|_| RuntimeError::Io(format!("drain thread of worker {id} panicked")));
    send_result?;
    let (per_src, bytes_received) = drain_result??;

    let total: usize = per_src.iter().map(Relation::len).sum();
    let mut received = Relation::with_capacity(arity, total);
    for src in &per_src {
        received.extend_from(src);
    }
    Ok(WorkerOutcome {
        received,
        sent_tuples,
        bytes_sent,
        bytes_sent_raw,
        bytes_received,
    })
}
