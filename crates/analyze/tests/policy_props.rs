//! Property tests for the parallel-correctness certifier: the symbolic
//! verdicts of [`parjoin_analyze::policy::certify`] and
//! [`parjoin_analyze::transfer::transfers`] are checked against a
//! brute-force oracle that enumerates *every* valuation over a tiny
//! value domain and routes each fact through the engine's actual hash
//! functions (`parjoin_common::hash`).
//!
//! The oracle is deliberately re-derived from first principles rather
//! than shared with the analyzer: a policy is parallel-correct iff for
//! each valuation some grid cell receives every atom's fact, where a
//! pinned coordinate is whatever `hash::bucket` / `hash::bucket_row`
//! actually computes, a free coordinate reaches everything, and a
//! stationary fragment sits on one adversarially chosen cell.

use parjoin_analyze::policy::{certify, AtomRoute, Family, Pin, Policy, Verdict};
use parjoin_analyze::transfer::{induce_policy, transfers, TransferVerdict};
use parjoin_common::hash;
use parjoin_query::{ConjunctiveQuery, QueryBuilder, VarId};
use proptest::prelude::*;

/// Deterministic cursor over a vector of random words; all structure
/// (query shape, grid, pins) is derived from it so a failing case is
/// fully reproducible from the printed words.
struct Draw<'a> {
    words: &'a [u64],
    i: usize,
}

impl<'a> Draw<'a> {
    fn new(words: &'a [u64]) -> Self {
        Draw { words, i: 0 }
    }

    fn next(&mut self) -> u64 {
        let w = self.words[self.i % self.words.len()];
        self.i += 1;
        // Decorrelate wrap-around reuse of the same word.
        w.rotate_left((self.i % 63) as u32)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Hash channels drawn by generated pins. Only three, so that distinct
/// atoms frequently share a channel (the certifiable case) *and*
/// frequently disagree (the refutable case).
const CHANNELS: [u64; 3] = [0x1111, 0x2222, 0x3333];

/// A generated conjunctive-query body: per-atom distinct variable lists
/// over a pool of at most four variables.
fn gen_atom_vars(d: &mut Draw) -> Vec<Vec<VarId>> {
    let n_atoms = 1 + d.below(3) as usize;
    (0..n_atoms)
        .map(|_| {
            let arity = 1 + d.below(3);
            let mut vars: Vec<VarId> = Vec::new();
            for _ in 0..arity {
                let v = VarId(d.below(4) as u32);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars
        })
        .collect()
}

/// A structurally valid (but often parallel-incorrect) policy for the
/// given query body: a 1–2 dimensional grid with extents 1–3 and a
/// random mix of free, hashed, constant, and stationary routes.
fn gen_policy(atom_vars: &[Vec<VarId>], d: &mut Draw) -> Policy {
    let n_dims = 1 + d.below(2) as usize;
    let dims: Vec<usize> = (0..n_dims).map(|_| 1 + d.below(3) as usize).collect();
    let routes = atom_vars
        .iter()
        .map(|vars| {
            if d.below(8) == 0 {
                return AtomRoute::Stationary;
            }
            AtomRoute::Routed(
                dims.iter()
                    .map(|_| match d.below(4) {
                        0 => Pin::Free,
                        1 => Pin::Const {
                            channel: CHANNELS[d.below(3) as usize],
                        },
                        _ => Pin::Hash {
                            var: vars[d.below(vars.len() as u64) as usize],
                            channel: CHANNELS[d.below(3) as usize],
                            family: if d.below(2) == 0 {
                                Family::Dimension
                            } else {
                                Family::KeyRow
                            },
                        },
                    })
                    .collect(),
            )
        })
        .collect();
    Policy {
        dims,
        routes,
        label: "generated".to_string(),
    }
}

/// The concrete grid coordinate a pin routes to, through the engine's
/// actual hash functions — `None` for a replicated (free) coordinate.
fn concrete_coord(pin: &Pin, extent: usize, value_of: &dyn Fn(VarId) -> u64) -> Option<usize> {
    match pin {
        Pin::Free => None,
        Pin::Hash {
            var,
            channel,
            family,
        } => Some(match family {
            Family::Dimension => hash::bucket(value_of(*var), *channel, extent),
            Family::KeyRow => hash::bucket_row(&[value_of(*var)], *channel, extent),
        }),
        Pin::Const { channel } => Some(hash::bucket_row(&[], *channel, extent)),
    }
}

/// Brute-force ground truth for one valuation: does some cell receive
/// every atom's fact? Routed atoms reach the product of their per-dim
/// coordinate sets; a stationary atom's fact sits on one adversarially
/// chosen cell, so it only ever co-locates when the other atoms' common
/// reach covers the whole grid (and two stationary atoms never do on a
/// multi-cell grid).
fn oracle_colocated(policy: &Policy, value_of: &dyn Fn(VarId) -> u64) -> bool {
    let stationary = policy
        .routes
        .iter()
        .filter(|r| matches!(r, AtomRoute::Stationary))
        .count();
    if policy.num_cells() <= 1 {
        return true;
    }
    if stationary >= 2 {
        return false;
    }
    // Per-dimension intersection of the routed atoms' coordinate sets.
    let mut full_cover = true;
    let mut nonempty = true;
    for (dim, &extent) in policy.dims.iter().enumerate() {
        let mut inter: Vec<usize> = (0..extent).collect();
        for route in &policy.routes {
            let AtomRoute::Routed(pins) = route else {
                continue;
            };
            if let Some(c) = concrete_coord(&pins[dim], extent, value_of) {
                inter.retain(|&x| x == c);
            }
        }
        if inter.len() < extent {
            full_cover = false;
        }
        if inter.is_empty() {
            nonempty = false;
        }
    }
    if stationary == 1 {
        // The adversary picks the stationary fact's cell; the routed
        // atoms must reach every cell to be safe.
        full_cover
    } else {
        nonempty
    }
}

/// All query variables, in first-occurrence order.
fn all_vars(atom_vars: &[Vec<VarId>]) -> Vec<VarId> {
    let mut out: Vec<VarId> = Vec::new();
    for vars in atom_vars {
        for &v in vars {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// Runs `f` over every valuation of `vars` into `{0, .., domain-1}`.
fn for_each_valuation(vars: &[VarId], domain: u64, mut f: impl FnMut(&dyn Fn(VarId) -> u64)) {
    let n = vars.len();
    let mut vals = vec![0u64; n];
    loop {
        {
            let vals = &vals;
            let value_of = move |v: VarId| vars.iter().position(|&x| x == v).map_or(0, |i| vals[i]);
            f(&value_of);
        }
        let mut k = n;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            vals[k] += 1;
            if vals[k] < domain {
                break;
            }
            vals[k] = 0;
        }
    }
}

/// Checks one (query, policy) pair against the brute-force oracle.
fn check_verdict_against_oracle(atom_vars: &[Vec<VarId>], policy: &Policy) {
    match certify(atom_vars, policy, None) {
        Verdict::Certified(cert) => {
            // Soundness: a certificate claims *every* valuation
            // co-locates; the oracle enumerates all of them over a
            // domain big enough to exercise each bucket.
            for_each_valuation(&all_vars(atom_vars), 3, |value_of| {
                assert!(
                    oracle_colocated(policy, value_of),
                    "certified policy fails concretely: {policy:?} cert={cert:?}"
                );
            });
        }
        Verdict::Refuted(cex) => {
            // A counterexample must *actually* fail under the engine's
            // hash functions — not merely fail the symbolic check.
            let value_of = |v: VarId| {
                cex.valuation
                    .iter()
                    .find(|(x, _)| *x == v)
                    .map_or(0, |(_, val)| *val)
            };
            assert!(
                !oracle_colocated(policy, &value_of),
                "counterexample does not refute: {policy:?} cex={cex:?}"
            );
        }
        Verdict::Unproven { .. } => {} // explicitly makes no claim
        Verdict::Malformed(diags) => {
            panic!("generator produced a malformed policy: {diags:?}")
        }
    }
}

/// Builds a [`ConjunctiveQuery`] from relation indices + variable lists
/// (relation `k` is named `R<k>`), for the transfer property.
fn build_query(name: &str, shape: &[(u64, Vec<VarId>)]) -> ConjunctiveQuery {
    let mut b = QueryBuilder::new(name);
    // Declare only the variables the shape actually uses (the builder
    // rejects declared-but-unused variables); `var` dedupes by name, so
    // equal ids map to one variable.
    for (rel, vs) in shape {
        let vars: Vec<VarId> = vs.iter().map(|v| b.var(&format!("x{}", v.0))).collect();
        b.atom(&format!("R{rel}"), vars);
    }
    b.build()
}

/// A generated query shape for the transfer property: atoms over two
/// relation names so prev and next usually share (and often re-share)
/// relations.
fn gen_shape(d: &mut Draw) -> Vec<(u64, Vec<VarId>)> {
    gen_atom_vars(d)
        .into_iter()
        .map(|vars| (d.below(2), vars))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn certifier_matches_brute_force(words in proptest::collection::vec(any::<u64>(), 24)) {
        let mut d = Draw::new(&words);
        let atom_vars = gen_atom_vars(&mut d);
        let policy = gen_policy(&atom_vars, &mut d);
        check_verdict_against_oracle(&atom_vars, &policy);
    }

    #[test]
    fn transfer_verdicts_match_brute_force(words in proptest::collection::vec(any::<u64>(), 32)) {
        let mut d = Draw::new(&words);
        let prev_shape = gen_shape(&mut d);
        let next_shape = gen_shape(&mut d);
        let prev = build_query("Prev", &prev_shape);
        let next = build_query("Next", &next_shape);
        let prev_atom_vars: Vec<Vec<VarId>> =
            prev.atoms.iter().map(|a| a.vars()).collect();
        let policy = gen_policy(&prev_atom_vars, &mut d);

        let next_atom_vars: Vec<Vec<VarId>> =
            next.atoms.iter().map(|a| a.vars()).collect();
        match transfers(&prev, &policy, &next) {
            TransferVerdict::Transfers(cert) => {
                // The induced placement must exist and concretely
                // co-locate every valuation of the next query.
                let induced = induce_policy(&prev, &policy, &next)
                    .unwrap_or_else(|e| panic!("transfers but not derivable: {e}"));
                for_each_valuation(&all_vars(&next_atom_vars), 3, |value_of| {
                    prop_assert!(
                        oracle_colocated(&induced, value_of),
                        "transferred policy fails concretely: {induced:?} cert={cert:?}"
                    );
                });
            }
            TransferVerdict::Refuted(cex) => {
                let induced = induce_policy(&prev, &policy, &next)
                    .unwrap_or_else(|e| panic!("refuted but not derivable: {e}"));
                let value_of = |v: VarId| {
                    cex.valuation
                        .iter()
                        .find(|(x, _)| *x == v)
                        .map_or(0, |(_, val)| *val)
                };
                prop_assert!(
                    !oracle_colocated(&induced, &value_of),
                    "transfer counterexample does not refute: {induced:?} cex={cex:?}"
                );
            }
            TransferVerdict::Unproven(_) | TransferVerdict::NotDerivable(_) => {}
        }
    }
}
