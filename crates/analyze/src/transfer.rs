//! Policy transfer: certifying that one query's shuffled placement is
//! parallel-correct for *another* query.
//!
//! Ameloot et al. study when parallel-correctness *transfers* from a
//! query `Q` to a query `Q'`: whenever a policy is parallel-correct for
//! `Q`, it is for `Q'` too, so data already distributed for `Q` can be
//! reused to answer `Q'` with **zero additional communication**. This
//! module implements the practical instance the engine needs: given the
//! *concrete* policy `P` a plan used for `Q`, decide whether the
//! placement `P` left behind is parallel-correct for `Q'`.
//!
//! The check has two stages:
//!
//! 1. **Induce** `Q'`-routes from `P` ([`induce_policy`]): `P` routes
//!    the *facts of relations*, not atoms, so each atom of `Q'` over a
//!    relation `R` inherits `R`'s placement from `Q`'s atom over `R`,
//!    with hashed columns re-expressed through `Q'`'s variables. A
//!    relation `Q` never shuffled, or one it shuffled two conflicting
//!    ways, leaves no well-defined placement — the transfer is
//!    [`TransferVerdict::NotDerivable`] and `Q'` must re-shuffle.
//! 2. **Certify** the induced policy for `Q'` with the standard
//!    [`certify`] decision, yielding a proof certificate or a concrete
//!    counterexample valuation.
//!
//! The engine's advisor uses this to keep a follow-up query on the
//! previous query's distribution, and the sort cache uses the same
//! route-signature machinery to certify cross-query view reuse.

use crate::diagnostic::{DiagCode, Diagnostic};
use crate::policy::{certify, AtomRoute, Certificate, Counterexample, Pin, Policy, Verdict};
use parjoin_query::{ConjunctiveQuery, VarId};

/// Outcome of a transfer check from `Q` (whose policy is known) to `Q'`.
#[derive(Debug, Clone)]
pub enum TransferVerdict {
    /// The placement transfers: the induced policy is parallel-correct
    /// for `Q'`. The certificate's obligations prove it.
    Transfers(Certificate),
    /// The placement is provably *not* parallel-correct for `Q'`; the
    /// counterexample valuation concretely fails under it.
    Refuted(Counterexample),
    /// The symbolic criterion failed for the induced policy but no
    /// concrete counterexample surfaced within the search budget.
    Unproven(String),
    /// `Q`'s policy does not determine a placement for `Q'` at all
    /// (unshuffled relation, conflicting routes, or incompatible atom
    /// shapes), so there is nothing to certify.
    NotDerivable(String),
}

impl TransferVerdict {
    /// True for [`TransferVerdict::Transfers`].
    pub fn is_transferable(&self) -> bool {
        matches!(self, TransferVerdict::Transfers(_))
    }
}

/// Re-expresses `policy` (routes parallel to `prev`'s atoms) as a policy
/// over `next`'s atoms, matching atoms by relation name and carrying
/// hashed pins across by column position in the atoms' distinct-variable
/// schemas. Errors describe why no placement is determined.
pub fn induce_policy(
    prev: &ConjunctiveQuery,
    policy: &Policy,
    next: &ConjunctiveQuery,
) -> Result<Policy, String> {
    let prev_vars: Vec<Vec<VarId>> = prev.atoms.iter().map(|a| a.vars()).collect();
    if policy.routes.len() != prev_vars.len() {
        return Err(format!(
            "policy covers {} atoms but the source query has {}",
            policy.routes.len(),
            prev_vars.len()
        ));
    }
    let mut routes = Vec::with_capacity(next.atoms.len());
    for atom in &next.atoms {
        let nv = atom.vars();
        let mut induced: Option<AtomRoute> = None;
        let mut any = false;
        for (i, patom) in prev.atoms.iter().enumerate() {
            if patom.relation != atom.relation {
                continue;
            }
            any = true;
            let candidate = match &policy.routes[i] {
                AtomRoute::Stationary => AtomRoute::Stationary,
                AtomRoute::Routed(pins) => {
                    let mut out = Vec::with_capacity(pins.len());
                    for pin in pins {
                        out.push(match pin {
                            Pin::Free => Pin::Free,
                            Pin::Const { channel } => Pin::Const { channel: *channel },
                            Pin::Hash {
                                var,
                                channel,
                                family,
                            } => {
                                let Some(col) = prev_vars[i].iter().position(|v| v == var) else {
                                    return Err(format!(
                                        "source atom {i} does not contain its own \
                                         pinned variable #{}",
                                        var.0
                                    ));
                                };
                                let Some(&nvar) = nv.get(col) else {
                                    return Err(format!(
                                        "relation {} has {} distinct variables in the \
                                         target query but its placement hashes \
                                         column {col}",
                                        atom.relation,
                                        nv.len()
                                    ));
                                };
                                Pin::Hash {
                                    var: nvar,
                                    channel: *channel,
                                    family: *family,
                                }
                            }
                        });
                    }
                    AtomRoute::Routed(out)
                }
            };
            match &induced {
                None => induced = Some(candidate),
                Some(prev_route) if *prev_route != candidate => {
                    return Err(format!(
                        "relation {} was shuffled two conflicting ways in the \
                         source query; its placement is ambiguous",
                        atom.relation
                    ));
                }
                Some(_) => {}
            }
        }
        if !any {
            return Err(format!(
                "relation {} was never shuffled by the source query; no \
                 placement to inherit",
                atom.relation
            ));
        }
        match induced {
            Some(route) => routes.push(route),
            // Unreachable: `any` is only set when `induced` is filled.
            None => return Err(format!("no route induced for {}", atom.relation)),
        }
    }
    Ok(Policy {
        dims: policy.dims.clone(),
        routes,
        label: format!("{} (transferred from {})", policy.label, prev.name),
    })
}

/// Decides whether the placement `policy` left behind after evaluating
/// `prev` is parallel-correct for `next`.
pub fn transfers(
    prev: &ConjunctiveQuery,
    policy: &Policy,
    next: &ConjunctiveQuery,
) -> TransferVerdict {
    let induced = match induce_policy(prev, policy, next) {
        Ok(p) => p,
        Err(why) => return TransferVerdict::NotDerivable(why),
    };
    let atom_vars: Vec<Vec<VarId>> = next.atoms.iter().map(|a| a.vars()).collect();
    let names: Vec<String> = next.var_names.clone();
    match certify(&atom_vars, &induced, Some(&names)) {
        Verdict::Certified(c) => TransferVerdict::Transfers(c),
        Verdict::Refuted(cex) => TransferVerdict::Refuted(cex),
        Verdict::Unproven { why } => TransferVerdict::Unproven(why),
        Verdict::Malformed(diags) => TransferVerdict::NotDerivable(format!(
            "induced policy is malformed: {}",
            diags.first().map_or_else(String::new, ToString::to_string)
        )),
    }
}

/// Runs the transfer check and renders the verdict as diagnostics:
/// [`DiagCode::PolicyTransferred`] (info) on success, otherwise
/// [`DiagCode::PolicyNotTransferable`] (warning) carrying the reason —
/// a failed transfer is not an error, it just means `next` must
/// re-shuffle. Returns whether the transfer certified.
pub fn transfer_diagnostics(
    prev: &ConjunctiveQuery,
    policy: &Policy,
    next: &ConjunctiveQuery,
    out: &mut Vec<Diagnostic>,
) -> bool {
    match transfers(prev, policy, next) {
        TransferVerdict::Transfers(cert) => {
            let mut d = Diagnostic::info(
                DiagCode::PolicyTransferred,
                format!(
                    "placement of {} ({}) is parallel-correct for {}: reuse \
                     without re-shuffling is certified",
                    prev.name, policy.label, next.name
                ),
            )
            .with("from", &prev.name)
            .with("to", &next.name)
            .with("policy", &cert.policy);
            for (k, ob) in cert.obligations.iter().enumerate() {
                d = d.with(format!("proof[{k}]"), ob);
            }
            out.push(d);
            true
        }
        TransferVerdict::Refuted(cex) => {
            out.push(
                Diagnostic::warning(
                    DiagCode::PolicyNotTransferable,
                    format!(
                        "placement of {} is not parallel-correct for {}: \
                         valuation [{}] places required facts on disjoint \
                         workers; {} must re-shuffle",
                        prev.name,
                        next.name,
                        cex.valuation_string(Some(&next.var_names)),
                        next.name
                    ),
                )
                .with("from", &prev.name)
                .with("to", &next.name)
                .with("why", &cex.why),
            );
            false
        }
        TransferVerdict::Unproven(why) => {
            out.push(
                Diagnostic::warning(
                    DiagCode::PolicyNotTransferable,
                    format!(
                        "transfer of {}'s placement to {} could not be \
                         certified; {} must re-shuffle",
                        prev.name, next.name, next.name
                    ),
                )
                .with("from", &prev.name)
                .with("to", &next.name)
                .with("why", why),
            );
            false
        }
        TransferVerdict::NotDerivable(why) => {
            out.push(
                Diagnostic::warning(
                    DiagCode::PolicyNotTransferable,
                    format!(
                        "{}'s policy determines no placement for {}; {} must \
                         re-shuffle",
                        prev.name, next.name, next.name
                    ),
                )
                .with("from", &prev.name)
                .with("to", &next.name)
                .with("why", why),
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{hypercube_policy, regular_step_policy, Family};
    use parjoin_core::hypercube::HcConfig;
    use parjoin_query::QueryBuilder;

    fn triangle() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("Triangle");
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.atom("R", [x, y]).atom("S", [y, z]).atom("T", [z, x]);
        b.build()
    }

    /// Same body as the triangle, different variable names and head.
    fn triangle_renamed() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("Triangle2");
        let (a, c, e) = (b.var("a"), b.var("c"), b.var("e"));
        b.atom("R", [a, c]).atom("S", [c, e]).atom("T", [e, a]);
        b.head([a]);
        b.build()
    }

    fn hc_policy_of(q: &ConjunctiveQuery, seed: u64) -> Policy {
        let av: Vec<Vec<VarId>> = q.atoms.iter().map(|a| a.vars()).collect();
        let config = HcConfig::new(q.all_vars(), vec![2, 2, 2]);
        hypercube_policy(&av, &config, seed)
    }

    #[test]
    fn hypercube_placement_transfers_to_isomorphic_query() {
        let q1 = triangle();
        let q2 = triangle_renamed();
        let policy = hc_policy_of(&q1, 42);
        let v = transfers(&q1, &policy, &q2);
        assert!(v.is_transferable(), "{v:?}");
    }

    #[test]
    fn transfer_refuted_when_next_query_joins_differently() {
        // Q1 partitions R(x,y) on x's dimension and S on y,z. Q2 joins
        // R's *second* column against S's second: R(u,w) ⋈ S(v,w). The
        // inherited placement hashes R on column 0 (now u) and S on
        // columns 0/1 — w never agrees.
        let q1 = {
            let mut b = QueryBuilder::new("Q1");
            let (x, y) = (b.var("x"), b.var("y"));
            b.atom("R", [x, y]).atom("S", [x, y]);
            b.build()
        };
        let av: Vec<Vec<VarId>> = q1.atoms.iter().map(|a| a.vars()).collect();
        // Partition both atoms on x only (dim over x).
        let config = HcConfig::new(vec![VarId(0)], vec![4]);
        let policy = hypercube_policy(&av, &config, 42);
        assert!(transfers(&q1, &policy, &q1).is_transferable());

        let q2 = {
            let mut b = QueryBuilder::new("Q2");
            let (u, v, w) = (b.var("u"), b.var("v"), b.var("w"));
            b.atom("R", [u, w]).atom("S", [v, w]);
            b.build()
        };
        // Inherited: R hashed on col 0 (= u), S hashed on col 0 (= v):
        // different variables pin the same dimension.
        match transfers(&q1, &policy, &q2) {
            TransferVerdict::Refuted(_) | TransferVerdict::Unproven(_) => {}
            v => panic!("must not transfer: {v:?}"),
        }
    }

    #[test]
    fn unshuffled_relation_is_not_derivable() {
        let q1 = triangle();
        let policy = hc_policy_of(&q1, 42);
        let q2 = {
            let mut b = QueryBuilder::new("Q2");
            let (x, y) = (b.var("x"), b.var("y"));
            b.atom("R", [x, y]).atom("U", [x, y]); // U never shuffled by Q1
            b.build()
        };
        assert!(matches!(
            transfers(&q1, &policy, &q2),
            TransferVerdict::NotDerivable(_)
        ));
    }

    #[test]
    fn conflicting_self_join_routes_are_not_derivable() {
        // Q1 = R(x,y) ⋈ R(y,z) under a regular step on y: the two R
        // occurrences are hashed on different columns, so "R's
        // placement" is ambiguous.
        let q1 = {
            let mut b = QueryBuilder::new("Path");
            let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
            b.atom("R", [x, y]).atom("R", [y, z]);
            b.build()
        };
        let policy = regular_step_policy(Some(VarId(1)), 4, 7);
        let q2 = {
            let mut b = QueryBuilder::new("Next");
            let (a, c) = (b.var("a"), b.var("c"));
            b.atom("R", [a, c]);
            b.build()
        };
        assert!(matches!(
            transfers(&q1, &policy, &q2),
            TransferVerdict::NotDerivable(_)
        ));
    }

    #[test]
    fn transfer_diagnostics_render_r424_and_r425() {
        let q1 = triangle();
        let q2 = triangle_renamed();
        let policy = hc_policy_of(&q1, 42);
        let mut out = Vec::new();
        assert!(transfer_diagnostics(&q1, &policy, &q2, &mut out));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code.code(), "R424");

        let q3 = {
            let mut b = QueryBuilder::new("Q3");
            let (x, y) = (b.var("x"), b.var("y"));
            b.atom("V", [x, y]);
            b.build()
        };
        let mut out = Vec::new();
        assert!(!transfer_diagnostics(&q1, &policy, &q3, &mut out));
        assert_eq!(out[0].code.code(), "R425");
    }

    #[test]
    fn induced_pins_are_reexpressed_through_columns() {
        let q1 = triangle();
        let q2 = triangle_renamed();
        let policy = hc_policy_of(&q1, 42);
        let induced = induce_policy(&q1, &policy, &q2).expect("derivable");
        // Q1's R(x,y) pins dim 0 on x (col 0); Q2's R(a,c) must pin it
        // on a — Q2's variable at col 0 — through the same channel.
        let AtomRoute::Routed(pins) = &induced.routes[0] else {
            panic!("routed");
        };
        assert!(matches!(
            pins[0],
            Pin::Hash {
                var: VarId(0),
                family: Family::Dimension,
                ..
            }
        ));
    }
}
