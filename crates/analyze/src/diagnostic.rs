//! Typed diagnostics emitted by the plan analyzer.
//!
//! Every check failure becomes a [`Diagnostic`] value instead of a
//! panic: a stable machine-readable [`DiagCode`], a [`Severity`], a
//! human-readable message, and key–value context (the offending
//! variable, the dimension product, the estimated workload, …) that
//! callers can log or surface verbatim.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Not a problem at all: a positive fact worth surfacing, such as a
    /// parallel-correctness proof certificate attached in `certify`
    /// mode.
    Info,
    /// The plan will run and produce correct results, but something is
    /// off — wasted workers, a cartesian blow-up, a predicted memory
    /// overrun.
    Warning,
    /// The plan is unexecutable or would produce wrong results; the
    /// engine refuses to run it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable diagnostic codes, grouped by check family:
///
/// * `Q…` — query shape (well-formedness of the query itself),
/// * `P…` — plan shape (join order, Tributary order),
/// * `C…` — parallel-correctness of the shuffle policy,
/// * `R…` — resource pre-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// The query fails its own structural validation (no atoms, var id
    /// out of range, …).
    QueryMalformed,
    /// A head variable occurs in no body atom, so it can never be bound.
    HeadVarUnbound,
    /// A filter mentions a variable occurring in no body atom, so the
    /// filter can never be applied.
    FilterVarUnbound,
    /// The query hypergraph is disconnected: every join order contains a
    /// cartesian step.
    QueryDisconnected,
    /// A served query references a relation the resident catalog does
    /// not hold. The context carries the full known-relation list, so
    /// the client learns what *is* loadable from the rejection itself.
    /// Emitted by the session layer's bind pass before any scheduling
    /// work.
    CatalogUnknownRelation,
    /// A served query uses a catalog relation at the wrong arity; every
    /// column would mis-bind. Emitted by the session layer's bind pass
    /// before any scheduling work.
    CatalogArityMismatch,

    /// `join_order` is not a permutation of the atom indices (wrong
    /// length, duplicate, or out-of-range index).
    JoinOrderNotPermutation,
    /// A step of the join order shares no variable with the atoms
    /// joined before it: the step degenerates to a cartesian product
    /// (and, under a regular shuffle, an empty shuffle key that routes
    /// every tuple to a single worker).
    JoinOrderCartesianStep,
    /// A plan filter would never become fully bound at any step of the
    /// join order and would be silently dropped.
    FilterNeverApplied,

    /// `tj_order` omits a variable of some atom; the Tributary join
    /// cannot sort that atom's columns into the global order.
    TjOrderIncomplete,
    /// `tj_order` lists the same variable twice.
    TjOrderDuplicate,
    /// `tj_order` lists a variable contained in no atom.
    TjOrderUnknownVar,
    /// A prefix of `tj_order` is disconnected from the next variable:
    /// the trie join expands a cross product at that depth.
    TjOrderDisconnectedPrefix,

    /// The HyperCube configuration has more cells than workers
    /// (`∏ dᵢ > p`): cells beyond the worker count cannot be placed.
    HcConfigOversized,
    /// The HyperCube configuration contains a zero dimension.
    HcConfigZeroDim,
    /// The HyperCube configuration assigns a dimension to a variable no
    /// atom contains. Every atom replicates across that dimension, so
    /// every join result materializes once *per coordinate* — duplicated
    /// output under the engine's bag semantics.
    HcConfigUnknownVar,
    /// A join variable received no HyperCube dimension; atoms
    /// containing it replicate instead of hash-partitioning.
    HcConfigMissingJoinVar,
    /// The configuration leaves most of the cluster idle
    /// (`∏ dᵢ` ≪ workers).
    HcConfigUnderutilized,
    /// The broadcast plan ships more tuples than it keeps partitioned;
    /// partitioned plans would move less data.
    BroadcastDominated,

    /// The predicted per-worker workload exceeds the cluster memory
    /// budget; the run is likely to abort with a mid-flight
    /// `MemoryBudget` failure.
    MemoryPreflight,

    /// The host refused to report its parallelism
    /// (`available_parallelism` errored), so the executor runs every
    /// worker on a single OS thread instead of silently pretending the
    /// cluster is parallel.
    HostParallelismUnknown,
    /// The streaming shuffle batch size is zero; a zero-row batch can
    /// never flush, so the exchange would make no progress.
    BatchSizeZero,
    /// One shuffle batch holds more tuples than the per-worker memory
    /// budget: a single arriving batch already overruns the budget the
    /// run is supposed to enforce.
    BatchOverBudget,
    /// A full batch of the widest atom encodes to more bytes than the
    /// transport's per-frame limit: the exchange would reject the very
    /// first full batch with `FrameTooLarge` instead of shuffling
    /// anything. Lower `batch_tuples` or raise `max_frame_bytes`.
    FrameOverLimit,
    /// The Tributary prepare phase's projected sorted working set
    /// (every atom's post-shuffle fragment, sorted-copy included)
    /// exceeds the per-worker memory budget, so no sorted view of this
    /// plan can be pinned by the sort cache and the prepare itself is
    /// likely to overrun the budget.
    SortCacheOverBudget,
    /// The cluster simulates at least as many workers as the host has
    /// cores, so the intra-worker parallel prepare (chunked sorts) and
    /// probe (morsels) silently degrade to one thread per worker —
    /// worker-level parallelism already saturates the machine. Speedup
    /// experiments that expect intra-worker parallelism need
    /// `workers < host_cores`.
    ProbeParallelismDegraded,

    /// The distribution policy is statically *proved* parallel-correct
    /// (in the sense of Ameloot et al.): for every valuation of the
    /// query's variables, some worker receives every fact the valuation
    /// needs. Emitted only in `certify` mode; carries the per-dimension
    /// proof obligations as context.
    PolicyCertified,
    /// The distribution policy is **not** parallel-correct: the attached
    /// context carries a concrete counterexample valuation whose
    /// required facts share no worker under the policy's actual hash
    /// routing.
    PolicyCounterexample,
    /// The policy failed the symbolic agreement criterion, but the
    /// bounded concrete search found no valuation that actually fails —
    /// hash collisions over small domains can mask one. The plan is not
    /// certified; treat it as suspect.
    PolicyUnproven,
    /// The policy is structurally malformed (a pin on a variable the
    /// atom does not contain, a pin vector of the wrong length, a
    /// zero-extent dimension): it describes no executable routing.
    PolicyMalformed,
    /// A previously certified policy *transfers*: the query inherits a
    /// prior query's shuffled placement (matched per relation), and
    /// that placement is parallel-correct for this query too. Cache or
    /// placement reuse across the two queries is certified.
    PolicyTransferred,
    /// The transfer check failed: the prior query's placement either
    /// does not determine a routing for this query (a relation it never
    /// shuffled, or conflicting routes) or is provably not
    /// parallel-correct for it. Cross-query reuse must re-shuffle.
    PolicyNotTransferable,
}

impl DiagCode {
    /// The stable short code (e.g. `C301`) used in reports.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::QueryMalformed => "Q100",
            DiagCode::HeadVarUnbound => "Q101",
            DiagCode::FilterVarUnbound => "Q102",
            DiagCode::QueryDisconnected => "Q103",
            DiagCode::CatalogUnknownRelation => "Q110",
            DiagCode::CatalogArityMismatch => "Q111",
            DiagCode::JoinOrderNotPermutation => "P200",
            DiagCode::JoinOrderCartesianStep => "P201",
            DiagCode::FilterNeverApplied => "P202",
            DiagCode::TjOrderIncomplete => "P210",
            DiagCode::TjOrderDuplicate => "P211",
            DiagCode::TjOrderUnknownVar => "P212",
            DiagCode::TjOrderDisconnectedPrefix => "P213",
            DiagCode::HcConfigOversized => "C300",
            DiagCode::HcConfigZeroDim => "C301",
            DiagCode::HcConfigUnknownVar => "C302",
            DiagCode::HcConfigMissingJoinVar => "C303",
            DiagCode::HcConfigUnderutilized => "C304",
            DiagCode::BroadcastDominated => "C305",
            DiagCode::MemoryPreflight => "R400",
            DiagCode::HostParallelismUnknown => "R401",
            DiagCode::BatchSizeZero => "R410",
            DiagCode::BatchOverBudget => "R411",
            DiagCode::SortCacheOverBudget => "R412",
            DiagCode::ProbeParallelismDegraded => "R413",
            DiagCode::FrameOverLimit => "R414",
            DiagCode::PolicyCertified => "R420",
            DiagCode::PolicyCounterexample => "R421",
            DiagCode::PolicyUnproven => "R422",
            DiagCode::PolicyMalformed => "R423",
            DiagCode::PolicyTransferred => "R424",
            DiagCode::PolicyNotTransferable => "R425",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Machine-readable code.
    pub code: DiagCode,
    /// Error (refuse to run) or warning (run, but surface it).
    pub severity: Severity,
    /// Human-readable one-line description.
    pub message: String,
    /// Key–value context: the offending variable, the computed bound,
    /// the budget, … Order is the order of insertion.
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// A new info diagnostic (positive findings, e.g. proof
    /// certificates).
    pub fn info(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Attaches one key–value context entry (builder style).
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.context.push((key.into(), value.to_string()));
        self
    }

    /// Looks up a context value by key.
    pub fn context_value(&self, key: &str) -> Option<&str> {
        self.context
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        for (k, v) in &self.context {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// True if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Sorts diagnostics into the canonical report order: by code, then by
/// the site they anchor to (message, then context). The sort is stable,
/// so findings the same pass emitted for the same site keep their
/// emission order. CI diffs and certificate snapshots depend on this
/// ordering being deterministic across runs and platforms.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.code.code(), &a.message, &a.context).cmp(&(b.code.code(), &b.message, &b.context))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_context() {
        let d = Diagnostic::error(DiagCode::HcConfigOversized, "too many cells")
            .with("cells", 128)
            .with("workers", 64);
        let s = format!("{d}");
        assert!(s.contains("C300"), "got {s}");
        assert!(s.contains("cells=128"), "got {s}");
        assert_eq!(d.context_value("workers"), Some("64"));
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn has_errors_detects() {
        let w = Diagnostic::warning(DiagCode::MemoryPreflight, "tight");
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error(DiagCode::QueryMalformed, "bad");
        assert!(has_errors(&[w, e]));
    }
}
